# Convenience targets for the BB reproduction.

.PHONY: install test test-fast coverage verify recover predict bench bench-smoke fleet-smoke fleet-crash-smoke generations-smoke experiments artifacts examples clean

PYTEST = PYTHONPATH=src python -m pytest

install:
	pip install -e . || python setup.py develop

# Tier-1: the whole suite, no coverage instrumentation (works without
# pytest-cov installed).
test:
	$(PYTEST) -x -q

# Skip subprocess/many-boot tests for a quick local loop.
test-fast:
	$(PYTEST) -x -q -m "not slow"

# Coverage run with the CI floor; requires pytest-cov.
coverage:
	$(PYTEST) -q --cov=repro --cov-branch --cov-report=term --cov-fail-under=75

# The simulation verification harness (invariant monitor, perturbation
# fuzzing, analytic oracles) at CI scale.
verify:
	PYTHONPATH=src python -m repro verify --smoke

# Boot-recovery escalation ladder over the CI preset subset; nonzero
# exit if any preset defeats the ladder.
recover:
	PYTHONPATH=src python -m repro recover --smoke

# Closed-form boot prediction (no event loop) for the stock TV boot,
# plus the smoke design-space sweep it pre-filters.
predict:
	PYTHONPATH=src python -m repro predict
	PYTHONPATH=src python -m repro experiment design-space --smoke

bench:
	pytest benchmarks/ --benchmark-only -s

# CI-scale perf gate: event-queue + cache microbenchmarks plus a 24-cell
# checkpoint/fork matrix and the 640-cell analytically pre-filtered
# design-space sweep.  Exits nonzero if branched outputs are not
# byte-identical to from-scratch runs, the checkpoint speedup drops
# below its committed floor (full 120-cell record measures >= 3x; the
# smoke floor leaves headroom for noisy CI runners), the design-space
# pre-filter lands below 5x over exhaustive DES, or the analytic
# frontier is not identical to the exhaustive one (full record measures
# >= 15x, so 5x leaves similar headroom).
bench-smoke:
	PYTHONPATH=src python -m repro bench --skip-sweep --events 50000 \
		--checkpoint-cells 24 --branch-floor 1.8 --predict-floor 5 \
		--out BENCH_smoke.json

# CI-scale fleet campaign: 500 jobs through the async boot service
# (TCP/JSON-lines, single-flight scheduler, auto-scaled worker shards),
# byte-compared against a serial replay and gated on sustained
# throughput.  The full campaign (make target-free: `repro fleet
# campaign`) streams 10k+ jobs and measures ~40-50k jobs/min; the
# 10k/min smoke floor leaves headroom for loaded CI runners.
fleet-smoke:
	PYTHONPATH=src python -m repro fleet campaign --smoke \
		--total-jobs 500 --throughput-floor 10000

# Crash-recovery gate: SIGKILL a real journaled `fleet serve` process
# mid-campaign at a seeded write-ahead-journal offset, restart it on
# the same journal/cache, and require the resumed campaign report to be
# byte-identical to an uninterrupted serial run (plus proof that the
# crash fired, the journal resumed work, and the client retried).
fleet-crash-smoke:
	PYTHONPATH=src python -m repro verify --smoke --only fleet-crash

# CI-scale OTA campaign: stage the demo regressed generation (preparser
# + deferred executor dropped, ~24% past the 1.10x gate) across the
# 12-device / 3-wave demo fleet.  The health gate must roll back exactly
# the first wave (4 devices) and halt the campaign — any other rollback
# count (missed regression, false positive, failed halt) exits nonzero.
generations-smoke:
	PYTHONPATH=src python -m repro generations rollout \
		--demo regressed --expect-rollbacks 4

experiments:
	python -m repro experiment all

artifacts:
	python scripts/generate_artifacts.py --out artifacts

examples:
	@for f in examples/*.py; do echo "== $$f =="; python $$f || exit 1; done

clean:
	rm -rf artifacts .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
