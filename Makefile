# Convenience targets for the BB reproduction.

.PHONY: install test bench experiments artifacts examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

experiments:
	python -m repro experiment all

artifacts:
	python scripts/generate_artifacts.py --out artifacts

examples:
	@for f in examples/*.py; do echo "== $$f =="; python $$f || exit 1; done

clean:
	rm -rf artifacts .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
