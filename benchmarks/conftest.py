"""Benchmark harness configuration.

Each benchmark runs its experiment once (``pedantic`` with one round —
the simulations are deterministic, so repetition only measures the host
machine) and prints the regenerated table/figure so that::

    pytest benchmarks/ --benchmark-only -s

reproduces every artifact of the paper's evaluation in one go.
"""

import pytest


@pytest.fixture
def regenerate(benchmark, capsys):
    """Run an experiment once under the benchmark clock and print its
    rendered artifact."""

    def _run(run_fn, render_fn, *args, **kwargs):
        result = benchmark.pedantic(run_fn, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(render_fn(result))
        return result

    return _run
