"""Bench ABL — regenerate the design-choice ablation tables."""

from repro.experiments import ablations


def test_ablations(regenerate):
    result = regenerate(ablations.run, ablations.render)
    # The two dominant mechanisms under leave-one-out, as under cumulative
    # attribution: the RCU Booster and the BB Manager's prioritization.
    ordered = sorted(result.leave_one_out_ms.items(), key=lambda kv: -kv[1])
    assert {name for name, _ in ordered[:2]} == {"rcu_booster",
                                                 "group_priority_boost"}
    # Sequential init is the slowest scheme; out-of-order misboots.
    assert result.scheme_ms["sequential rcS"] == max(result.scheme_ms.values())
    assert result.scheme_violations["out-of-order"] > 0
    # BB keeps the commercial fork's boot near the open-source one.
    open_none, open_bb = result.growth_ms["open-source (136 services)"]
    comm_none, comm_bb = result.growth_ms["commercial fork (>250 services)"]
    assert comm_none > 1.5 * open_none
    assert comm_bb < 1.15 * open_bb
