"""Bench T-SNAPSHOT / T-COMPRESS — regenerate the §2.1-2.3 background
model tables."""

import pytest

from repro.experiments import background


def test_background_models(regenerate):
    result = regenerate(background.run, background.render)
    # Paper: ~10 s to read a 3 GiB snapshot at ~300 MiB/s.
    assert result.snapshot_restore_s["Galaxy-S6-like (3 GiB, UFS)"] == \
        pytest.approx(10.5, abs=1.0)
    # Compression only helps below the decompressor's 35 MiB/s.
    helps = {name: flag for name, _, _, flag in result.compression_rows}
    assert helps == {"UFS-2.0": False, "SSD-850-Evo": False, "eMMC": False,
                     "HDD-Barracuda": False, "old-NAND": True}
    assert not result.silent_boot_meets_eu_rule
