"""Bench T-BOOTMODES — regenerate the §1/§2 decision matrix."""

from repro.experiments import boot_modes


def test_boot_modes(regenerate):
    result = regenerate(boot_modes.run, boot_modes.render)
    # The paper's argument in one assertion: BB's cold boot is the only
    # mechanism that satisfies every constraint at acceptable latency.
    assert result.winners == ["cold boot + BB"]
    assert not result.mode("suspend-to-RAM (Instant On)").survives_unplug
    assert not result.mode("silent boot then suspend").meets_eu_standby
    assert not result.mode("snapshot boot (factory image)").supports_third_party_apps
    assert result.mode("cold boot (conventional)").latency_s > 4.0
