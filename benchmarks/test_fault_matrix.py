"""Bench FAULT-MATRIX — regenerate the degraded-boot robustness study."""

from repro.experiments import fault_matrix


def test_fault_matrix(regenerate):
    result = regenerate(fault_matrix.run, fault_matrix.render)
    by_preset = {o.preset: o for o in result.bb}

    # Nuisance presets slow the boot but never keep it from completing.
    for name in ("storage-storm", "late-devices", "settle-jitter",
                 "module-roulette", "flaky-services"):
        assert by_preset[name].completion_rate == 1.0, name

    # Out-of-group crashes degrade the boot without blocking completion
    # (§2.5.2's isolation story), and the injector actually fired.
    assert by_preset["flaky-services"].degraded_completions > 0
    assert by_preset["flaky-services"].injected_events > 0

    # In-chain faults are fatal and the diagnosis names the real culprit.
    assert by_preset["broken-tuner"].completed == 0
    assert set(by_preset["broken-tuner"].culprits) == {"tuner.service"}
    assert by_preset["missing-device"].completed == 0
    assert set(by_preset["missing-device"].culprits) == {"fasttv.service"}

    # Same plan + seed on the no-BB side reaches the same verdicts.
    no_bb = {o.preset: o for o in result.no_bb}
    assert no_bb["broken-tuner"].completed == 0
    assert no_bb["missing-device"].completed == 0
