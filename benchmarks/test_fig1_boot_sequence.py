"""Bench FIG1 — regenerate the Fig. 1 conventional boot timeline."""

import pytest

from repro.experiments import fig1_boot_sequence
from repro.quantities import sec


def test_fig1_boot_sequence(regenerate):
    result = regenerate(fig1_boot_sequence.run, fig1_boot_sequence.render)
    # Paper: ~8.1 s conventional completion; kernel 698 ms; init 195 ms.
    assert result.report.boot_complete_ns == pytest.approx(sec(8.1), rel=0.05)
    assert result.segments_ms["kernel (memory init)"] == pytest.approx(370,
                                                                       rel=0.05)
    assert result.segments_ms["services & applications"] > 6000
