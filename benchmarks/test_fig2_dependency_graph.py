"""Bench FIG2 — regenerate the Fig. 2 dependency-graph statistics."""

import pytest

from repro.experiments import fig2_dependency_graph


def test_fig2_dependency_graph(regenerate):
    result = regenerate(fig2_dependency_graph.run, fig2_dependency_graph.render)
    # Paper: 136 services open source, almost doubling for commercialization.
    assert result.opensource.units == 137
    assert result.growth_factor == pytest.approx(2.0, abs=0.25)
    assert result.opensource.weak_edges > result.opensource.strong_edges
