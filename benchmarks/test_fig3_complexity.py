"""Bench FIG3 — regenerate the Fig. 3 fragmentation scenario."""

from repro.experiments import fig3_complexity


def test_fig3_complexity(regenerate):
    result = regenerate(fig3_complexity.run, fig3_complexity.render)
    # Paper: the new service partitions group b and can close a cycle.
    assert result.group_b_split
    assert result.cycle_report.findings
