"""Bench FIG5A — regenerate the Fig. 5(a) RCU Booster bootchart effect."""

from repro.experiments import fig5_rcu_bootchart


def test_fig5_rcu_bootchart(regenerate):
    result = regenerate(fig5_rcu_bootchart.run,
                        lambda r: fig5_rcu_bootchart.render(r, with_charts=True))
    # Paper: the boosted case launches more tasks earlier.
    assert result.boosted_ready_earlier
    rows = result.ready_at_checkpoints()
    assert any(boosted > conventional for _, conventional, boosted in rows)
