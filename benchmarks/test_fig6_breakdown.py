"""Bench FIG6 — regenerate the paper's main table: the full No-BB vs BB
breakdown with per-feature attribution."""

import pytest

from repro.experiments import fig6_breakdown
from repro.quantities import sec


def test_fig6_breakdown(regenerate):
    result = regenerate(fig6_breakdown.run, fig6_breakdown.render)
    # Headline: 8.1 s -> 3.5 s, ~57 % reduction.
    assert result.no_bb.boot_complete_ns == pytest.approx(sec(8.1), rel=0.05)
    assert result.bb.boot_complete_ns == pytest.approx(sec(3.5), rel=0.05)
    assert result.reduction == pytest.approx(0.57, abs=0.03)
    # The two dominant mechanisms, as in the paper.
    savings = result.cumulative_savings_ms
    assert savings["rcu_booster"] == pytest.approx(1828, rel=0.25)
    assert result.bb_group_saving_ms() == pytest.approx(1101, rel=0.35)
