"""Bench FIG7 — regenerate the var.mount isolation experiment."""

from repro.experiments import fig7_bbgroup_dbus


def test_fig7_bbgroup_dbus(regenerate):
    result = regenerate(fig7_bbgroup_dbus.run, fig7_bbgroup_dbus.render)
    # Paper: dbus.service launch advanced 450 -> 195 ms (~2.3x) by
    # isolating var.mount alone; shape check: >100 ms and 1.3-4x.
    assert result.dbus_advanced_by_ms > 100
    assert 1.3 <= result.advance_factor <= 4.0
    assert result.boosted_ms("var.mount")[0] < result.conventional_ms("var.mount")[0]
