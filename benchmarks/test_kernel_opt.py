"""Bench T-KERNELOPT — regenerate the §2.4 kernel optimization sweep."""

import pytest

from repro.experiments import kernel_opt
from repro.quantities import msec, sec


def test_kernel_opt(regenerate):
    result = regenerate(kernel_opt.run, kernel_opt.render)
    # Paper: 6.127 s unoptimized -> 0.698 s after conventional optimization.
    assert result.unoptimized_ns == pytest.approx(sec(6.127), rel=0.05)
    assert result.optimized_ns == pytest.approx(msec(698), rel=0.05)
