"""Bench T-PORTABILITY — regenerate the §4 cross-device claim."""

from repro.experiments import portability


def test_portability(regenerate):
    result = regenerate(portability.run, portability.render)
    # §4: BB applies seamlessly across consumer-electronics classes.
    assert result.helps_everywhere
    # On the TV it delivers the headline ~57 %.
    assert 0.50 <= result.reduction("smart TV (UE48H6200)") <= 0.62
    # And a substantial cut (>25 %) on every other device class.
    for device, _, _ in result.rows:
        assert result.reduction(device) > 0.25, device
