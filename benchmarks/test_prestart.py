"""Bench T-PRESTART — regenerate the §5 launch-acceleration comparison."""

from repro.experiments import prestart


def test_prestart(regenerate):
    result = regenerate(prestart.run, prestart.render)
    # §5: static building wins for the BB Group; pre-fork's overhead
    # exceeds its benefit; pre-link pays only off the critical path.
    assert result.static_wins_for_group
    assert result.prefork_group_net_ms < 0
    assert result.prelink_group_ms <= result.static_group_ms
    assert result.prelink_others_ms > result.prelink_group_ms
