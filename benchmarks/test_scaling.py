"""Bench T-SCALING — regenerate the platform-size scaling sweep."""

from repro.experiments import scaling


def test_scaling(regenerate):
    result = regenerate(scaling.run, scaling.render)
    # The conventional boot grows with the platform; BB stays nearly flat
    # because the BB Group does not grow.
    assert result.no_bb_growth > 2.0
    assert result.bb_growth < 1.4
    # BB wins at every scale, and its edge widens with growth.
    reductions = [(1 - bb / no_bb) for _, _, no_bb, bb in result.rows]
    assert all(r > 0.3 for r in reductions)
    assert reductions[-1] > reductions[0]
