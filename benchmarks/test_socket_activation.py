"""Bench T-SOCKETS — regenerate the socket-activation comparison."""

from repro.experiments import socket_activation


def test_socket_activation(regenerate):
    result = regenerate(socket_activation.run, socket_activation.render)
    # Activation overlaps client and daemon initialization.
    assert result.activated_all_up_ms < result.ordered_all_up_ms
    assert result.activated_first_client_ms <= result.ordered_first_client_ms
    assert result.all_up_speedup_ms > 20
