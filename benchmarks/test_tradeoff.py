"""Bench T-TRADEOFF — regenerate the §4.3 trade-off measurements."""

from repro.experiments import tradeoff


def test_tradeoff(regenerate):
    result = regenerate(tradeoff.run, tradeoff.render)
    # Paper: deferred-task overhead < 15 ms average, no second-launch cost,
    # boosted RCU costs more CPU when uncontended.
    assert result.mean_overhead_ms < 15.0
    assert abs(result.second_launch_overhead_ms) < 1.0
    assert result.rcu_uncontended_cpu_ratio > 1.0
