"""Bench T-VARIANCE — regenerate the §2.5.3/§3.3 consistency study."""

from repro.experiments import variance


def test_variance(regenerate):
    result = regenerate(lambda: variance.run(instances=10), variance.render)
    # §3.3: BB maintains a consistent boot time while other services churn.
    assert result.bb_stddev_ms < result.no_bb_stddev_ms
    assert result.spread_reduction > 2.0
    assert result.bb_cv <= result.no_bb_cv
