#!/usr/bin/env python3
"""Race the init schemes of §2.5 on the same TV service set.

Sequential rcS (one service at a time), out-of-order with and without the
retrofitted path-check, the parallel in-order executor (systemd-like), and
systemd+BB — same services, same hardware — plus the §2.1 alternatives
(snapshot boot, suspend-to-RAM) for context.

Usage::

    python examples/baseline_comparison.py
"""

from repro.analysis.report import format_table
from repro.experiments import ablations, background


def main() -> None:
    print("Racing init schemes on the 136-service TV set (user space only)...")
    result = ablations.run(include_schemes=True)

    rows = []
    for name, ms in sorted(result.scheme_ms.items(), key=lambda kv: -kv[1]):
        violations = result.scheme_violations.get(name, 0)
        note = f"{violations} dependency violations" if violations else "correct"
        rows.append((name, f"{ms:.0f} ms", note))
    full_bb = result.growth_ms["open-source (136 services)"][1]
    rows.append(("in-order parallel + BB (full boot incl. kernel)",
                 f"{full_bb:.0f} ms", "correct"))
    print(format_table(["scheme", "completion", "correctness"], rows))

    print("\nCore-count scaling (why init schemes went parallel):")
    scaling = [(cores, f"{none:.0f} ms", f"{bb:.0f} ms")
               for cores, (none, bb) in result.core_scaling_ms.items()]
    print(format_table(["cores", "No BB", "BB"], scaling))

    print("\nAnd the §2.1 alternatives BB exists to avoid:")
    bg = background.run()
    for name, restore in bg.snapshot_restore_s.items():
        print(f"  snapshot restore on {name}: {restore:.1f} s "
              f"(creation blocks shutdown for {bg.snapshot_create_s[name]:.1f} s)")
    print(f"  suspend-to-RAM resume: {bg.suspend_resume_s:.1f} s — "
          "but gone the moment the TV is unplugged")


if __name__ == "__main__":
    main()
