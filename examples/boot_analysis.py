#!/usr/bin/env python3
"""Post-mortem analysis of a boot: blame, critical chain, trace export.

The administrator's toolkit after a boot regresses: which units took
longest (`systemd-analyze blame` style), which chain actually gated boot
completion (`critical-chain` style, isolation-aware), and a Perfetto
trace of the whole run for timeline inspection.

Usage::

    python examples/boot_analysis.py
"""

from repro import BBConfig, BootSimulation, opensource_tv_workload
from repro.analysis.blame import render_blame, render_critical_chain
from repro.analysis.chrome_trace import tracer_to_chrome_json


def main() -> None:
    print("booting the TV with full BB...")
    simulation = BootSimulation(opensource_tv_workload(), BBConfig.full())
    report = simulation.run()
    print(f"boot completed at {report.boot_complete_ms:.0f} ms\n")

    print("slowest service starts (blame):")
    print(render_blame(report, top=10))

    print("\nthe chain that actually gated boot completion:")
    print(render_critical_chain(report, simulation.manager.registry,
                                "fasttv.service"))

    out = "tv_boot.trace.json"
    with open(out, "w") as handle:
        handle.write(tracer_to_chrome_json(simulation.sim.tracer))
    print(f"\nfull timeline written to {out} — open it at "
          "https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
