#!/usr/bin/env python3
"""Bring BB to your own device: build a set-top box from scratch.

Shows the full public API surface a downstream user touches: define a
hardware platform, write services as unit-file text (with the
``[X-Simulation]`` cost section), declare what "booted" means, and compare
the conventional boot against BB — exactly the porting exercise §4 claims
takes little effort ("BB can be seamlessly and easily applied to a wide
range of consumer electronics").

Usage::

    python examples/custom_device_boot.py
"""

from repro import BBConfig, BootSimulation
from repro.hw.memory import DRAMModel
from repro.hw.platform import HardwarePlatform
from repro.hw.storage import StorageDevice
from repro.initsys.registry import UnitRegistry
from repro.quantities import GiB, MiB
from repro.workloads.base import Workload

SETTOP_UNITS = {
    "multi-user.target": """\
[Unit]
Requires=streamer.service
Wants=epg-cache.service telemetry.service
""",
    "flash.mount": """\
[Unit]
Description=Mount the content cache partition

[Service]
Type=oneshot

[X-Simulation]
InitCpuNs=5000000
ExecBytes=16384
ProvidesPaths=/cache
""",
    "ipc.service": """\
[Unit]
Description=Message bus
Requires=flash.mount
After=flash.mount

[Service]
Type=notify

[X-Simulation]
InitCpuNs=90000000
ExecBytes=327680
RcuSyncs=2
Processes=3
""",
    "decoder.service": """\
[Unit]
Description=Hardware video decoder bring-up
Requires=ipc.service
After=ipc.service

[Service]
Type=notify

[X-Simulation]
InitCpuNs=120000000
HwSettleNs=200000000
RcuSyncs=2
ExecBytes=262144
""",
    "streamer.service": """\
[Unit]
Description=The streaming app; ready means video playing
Requires=ipc.service decoder.service
After=ipc.service decoder.service

[Service]
Type=notify

[X-Simulation]
InitCpuNs=600000000
ExecBytes=4194304
RcuSyncs=2
Processes=2
""",
    "epg-cache.service": """\
[Unit]
Description=Program-guide prefetcher (not boot critical)
Wants=ipc.service
After=ipc.service

[Service]
Type=simple

[X-Simulation]
InitCpuNs=250000000
ExecBytes=2097152
""",
    "telemetry.service": """\
[Unit]
Description=Phone-home daemon that thinks it is important
Before=flash.mount

[Service]
Type=oneshot

[X-Simulation]
InitCpuNs=180000000
ExecBytes=1048576
""",
}


def settop_platform() -> HardwarePlatform:
    return HardwarePlatform(
        name="settop-one",
        cpu_cores=2,
        dram=DRAMModel(size_bytes=GiB(2)),
        storage=StorageDevice("settop-emmc", seq_read_bps=MiB(140),
                              rand_read_bps=MiB(45), capacity_bytes=GiB(16)),
    )


def settop_registry() -> UnitRegistry:
    registry = UnitRegistry()
    for name, text in SETTOP_UNITS.items():
        registry.load_unit_text(text, name=name)
    return registry


def main() -> None:
    workload = Workload(
        name="settop-box",
        platform_factory=settop_platform,
        registry_factory=settop_registry,
        completion_units=("streamer.service",),
        preexisting_paths=frozenset({"/", "/run"}),
    )

    conventional = BootSimulation(workload, BBConfig.none()).run()
    boosted = BootSimulation(workload, BBConfig.full()).run()

    print(f"set-top box, conventional boot: {conventional.boot_complete_ms:7.1f} ms")
    print(f"set-top box, with BB:           {boosted.boot_complete_ms:7.1f} ms")
    print(f"\nBB Group found automatically: {sorted(boosted.bb_group)}")
    print("(telemetry.service's Before=flash.mount was ignored by the "
          "Isolator — that is the whole point)")
    print(f"ordering edges dropped: {boosted.ignored_edges}")
    for unit in ("ipc.service", "decoder.service", "streamer.service"):
        before = conventional.unit_ready_ns[unit] / 1e6
        after = boosted.unit_ready_ns[unit] / 1e6
        print(f"  {unit:20s} ready {before:7.1f} -> {after:7.1f} ms")


if __name__ == "__main__":
    main()
