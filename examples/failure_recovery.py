#!/usr/bin/env python3
"""Failure injection, recovery, timeouts, and shutdown on the mini stack.

Demonstrates the life-cycle half of the init scheme (§2.5): a flaky
service recovered by ``Restart=on-failure``, a hung service killed by its
start-timeout watchdog, failure propagation along ``Requires``, and a
clean reverse-order shutdown — the parts of an init scheme that never
show up in a happy-path boot demo.

Usage::

    python examples/failure_recovery.py
"""

from repro.hw.presets import ue48h6200
from repro.initsys.executor import JobExecutor, PathRegistry
from repro.initsys.registry import UnitRegistry
from repro.initsys.shutdown import ShutdownSequencer
from repro.initsys.transaction import JobState, Transaction
from repro.initsys.units import RestartPolicy, ServiceType, SimCost, Unit
from repro.kernel.rcu import RCUSubsystem
from repro.quantities import msec
from repro.sim import Simulator


def build_registry() -> UnitRegistry:
    return UnitRegistry([
        Unit(name="goal.target",
             requires=["app.service"],
             wants=["flaky.service", "hung.service", "victim.service"]),
        Unit(name="base.service", service_type=ServiceType.ONESHOT,
             cost=SimCost(init_cpu_ns=msec(5), exec_bytes=0)),
        Unit(name="app.service", requires=["base.service"],
             after=["base.service"], service_type=ServiceType.NOTIFY,
             cost=SimCost(init_cpu_ns=msec(20), exec_bytes=0)),
        # Crashes twice, then comes up on the third attempt.
        Unit(name="flaky.service", service_type=ServiceType.ONESHOT,
             failures_before_success=2,
             restart_policy=RestartPolicy.ON_FAILURE,
             restart_delay_ns=msec(40),
             cost=SimCost(init_cpu_ns=msec(10), exec_bytes=0)),
        # Hangs forever; the watchdog gives it 50 ms per attempt.
        Unit(name="hung.service", service_type=ServiceType.ONESHOT,
             start_timeout_ns=msec(50),
             restart_policy=RestartPolicy.ON_FAILURE, max_restarts=1,
             restart_delay_ns=msec(10),
             cost=SimCost(init_cpu_ns=msec(10_000), exec_bytes=0)),
        # Requires the hung service: fails by propagation.
        Unit(name="victim.service", requires=["hung.service"],
             service_type=ServiceType.ONESHOT,
             cost=SimCost(init_cpu_ns=msec(5), exec_bytes=0)),
    ])


def main() -> None:
    sim = Simulator(cores=2)
    storage = ue48h6200().storage.attach(sim)
    registry = build_registry()
    transaction = Transaction(registry, ["goal.target"])
    executor = JobExecutor(sim, transaction, storage, RCUSubsystem(sim),
                           PathRegistry(sim))
    executor.start_all()
    sim.run()

    print("job outcomes:")
    for name in sorted(transaction.jobs):
        job = transaction.job(name)
        detail = f" after {job.attempts} attempt(s)" if job.attempts > 1 else ""
        reason = f" — {job.failure_reason}" if job.failure_reason else ""
        print(f"  {name:18s} {job.state.value:8s}{detail}{reason}")

    assert transaction.job("flaky.service").state is JobState.DONE
    assert transaction.job("hung.service").state is JobState.FAILED
    assert transaction.job("victim.service").state is JobState.FAILED
    assert transaction.job("app.service").state is JobState.DONE

    print("\nshutting down the survivors in reverse dependency order:")
    survivors = [name for name, job in transaction.jobs.items()
                 if job.state is JobState.DONE
                 and job.unit.unit_type.value != "target"]
    sequencer = ShutdownSequencer(sim, registry, goal="goal.target")
    sequencer.spawn(survivors)
    sim.run()
    assert sequencer.report is not None
    for name in sequencer.report.stop_order:
        print(f"  stopped {name}")
    print(f"shutdown took {sequencer.report.duration_ns / 1e6:.1f} ms")


if __name__ == "__main__":
    main()
