#!/usr/bin/env python3
"""Quickstart: boot the paper's TV twice — without and with BB.

Runs the calibrated Tizen-TV workload on the UE48H6200 hardware preset,
first as the conventional commercially-optimized boot (the paper's
"No BB" column, ~8.1 s) and then with every Booting Booster mechanism
enabled (~3.5 s), and prints the Fig. 6-style comparison.

Usage::

    python examples/quickstart.py
"""

from repro import BBConfig, BootSimulation, opensource_tv_workload, speedup
from repro.analysis.report import ComparisonTable


def main() -> None:
    print("Booting the UE48H6200 without BB (this is a simulation — "
          "it takes well under a second of real time)...")
    no_bb = BootSimulation(opensource_tv_workload(), BBConfig.none()).run()

    print("Booting again with the full Booting Booster...")
    bb = BootSimulation(opensource_tv_workload(), BBConfig.full()).run()

    table = ComparisonTable(title="\nCold boot, power-on to broadcast playing")
    table.add("(a) kernel initialization", no_bb.stages.kernel_ns,
              bb.stages.kernel_ns)
    table.add("(b) init initialization", no_bb.stages.init_init_ns,
              bb.stages.init_init_ns)
    table.add("(c)+(d) services & applications", no_bb.stages.services_ns,
              bb.stages.services_ns)
    table.add("TOTAL", no_bb.boot_complete_ns, bb.boot_complete_ns)
    print(table.render())

    gain = speedup(no_bb.boot_complete_ns, bb.boot_complete_ns)
    print(f"\nreduction: {gain:.1%}  (paper: ~57%, 8.1 s -> 3.5 s)")
    print(f"BB Group identified by the Isolator: {sorted(bb.bb_group)}")


if __name__ == "__main__":
    main()
