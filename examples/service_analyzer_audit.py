#!/usr/bin/env python3
"""Audit a service set with the Service Analyzer (§3.3).

Plays the system administrator of §2.5.3: fellow developers keep adding
services with excessive, contradictory, or circular declarations.  The
analyzer reads the unit files, reports every incorrect relation, and we
also export the dependency graph as Graphviz DOT with the BB Group
highlighted (render it with ``dot -Tsvg``).

Usage::

    python examples/service_analyzer_audit.py
"""

from repro.core.isolator import BBGroupIsolator
from repro.graph.analyzer import ServiceAnalyzer
from repro.graph.visualize import figure2_stats, to_dot
from repro.initsys.registry import UnitRegistry
from repro.workloads.tizen_tv import TV_COMPLETION_UNITS, build_tv_registry

#: What careless developers merged this week (as unit-file text: the
#: analyzer consumes exactly what systemd would).
QUESTIONABLE_UNITS = {
    "chat-widget.service": """\
[Unit]
Description=Vendor chat widget, wants to look fast
Before=var.mount
Requires=dbus.service
Requires=var.mount

[Service]
Type=simple
""",
    "ad-daemon.service": """\
[Unit]
Description=Depends on a package nobody installed
Requires=telemetry.service
After=chat-widget.service
Before=chat-widget.service

[Service]
Type=simple
""",
    "spyglass.service": """\
[Unit]
Description=Requires dbus twice over (transitively redundant)
Requires=dbus.service var.mount

[Service]
Type=oneshot
""",
}


def main() -> None:
    registry = build_tv_registry()
    print(f"Loaded the TV service set: {len(registry)} units")
    for name, text in QUESTIONABLE_UNITS.items():
        registry.load_unit_text(text, name=name)
    print(f"Merged this week's vendor drops: {len(QUESTIONABLE_UNITS)} units\n")

    report = ServiceAnalyzer(registry).analyze()
    print("Service Analyzer report:")
    print(report.summary())
    print(f"\nerrors that would break the boot: {report.has_errors}")

    stats = figure2_stats(registry)
    print(f"\ngraph: {stats.units} units, {stats.edges} edges "
          f"({stats.strong_edges} strong / {stats.weak_edges} weak / "
          f"{stats.ordering_edges} ordering)")

    isolator = BBGroupIsolator(registry, TV_COMPLETION_UNITS)
    print(f"BB Group stays at {len(isolator.group)} services regardless: "
          f"{isolator.members_sorted()}")

    dot = to_dot(registry, title="tv-with-vendor-drops",
                 highlight=set(isolator.group))
    out = "tv_dependency_graph.dot"
    with open(out, "w") as handle:
        handle.write(dot)
    print(f"\nDOT graph written to {out} (render: dot -Tsvg {out} -o graph.svg)")


if __name__ == "__main__":
    main()
