#!/usr/bin/env python3
"""Walk the TV through BB's mechanisms one at a time, like the paper's
deployment story, and draw the final bootchart.

Each step enables one more BB feature (in the order the engineering
happened: kernel deferrals, Boot-up Engine, Service Engine) and reports
the boot-time delta it bought — the reproduction of Fig. 6's per-feature
attribution — then renders the full-BB bootchart à la systemd-bootchart.

Usage::

    python examples/tv_boot_optimization.py
"""

from repro import BBConfig, BootSimulation, opensource_tv_workload
from repro.bootchart import BootChart, render_ascii

#: Feature -> the paper's Fig. 6 attribution in ms (where quantified).
DEPLOYMENT_STEPS = [
    ("deferred_meminit", "Core Engine: deferred memory init", 260),
    ("deferred_journal", "Core Engine: deferred ext4 journal", 35),
    ("defer_startup_tasks", "Boot-up Engine: defer init tasks", 124),
    ("rcu_booster", "Core Engine: RCU Booster", 1828),
    ("deferred_executor", "Boot-up Engine: Deferred Executor", 496),
    ("preparser", "Service Engine: Pre-parser", 381),
    ("group_isolation", "Service Engine: BB Group Isolator", None),
    ("group_priority_boost", "Service Engine: BB Manager", 1101),
    ("ondemand_modularizer", "Core Engine: On-demand Modularizer", 428),
    ("static_bb_group", "static BB-Group binaries (§5)", None),
]


def main() -> None:
    config = BBConfig.none()
    report = BootSimulation(opensource_tv_workload(), config).run()
    print(f"conventional boot: {report.boot_complete_ms:8.1f} ms")
    previous = report.boot_complete_ms
    for feature, label, paper_ms in DEPLOYMENT_STEPS:
        config = config.with_feature(feature, True)
        report = BootSimulation(opensource_tv_workload(), config).run()
        saved = previous - report.boot_complete_ms
        paper = f"(paper: {paper_ms} ms)" if paper_ms else ""
        print(f"+ {label:42s} {report.boot_complete_ms:8.1f} ms "
              f"saved {saved:7.1f} ms {paper}")
        previous = report.boot_complete_ms

    print("\nFinal bootchart (launch-to-ready bars, BB-Group services "
          "race to the front):")
    chart = BootChart.from_report(report)
    print(render_ascii(chart, max_rows=30))


if __name__ == "__main__":
    main()
