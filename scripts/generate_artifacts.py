#!/usr/bin/env python3
"""Generate every visual/machine-readable artifact into a directory.

Produces, under ``--out`` (default ``artifacts/``):

* ``bootchart_no_bb.svg`` / ``bootchart_bb.svg`` — the Fig. 5(a)-style
  charts for the TV boot,
* ``fig7_conventional.svg`` / ``fig7_isolated.svg`` — the Fig. 7 pair,
* ``dependency_graph.dot`` — the Fig. 2 graph (render with Graphviz),
* ``report_no_bb.json`` / ``report_bb.json`` — full boot reports,
* ``experiments.txt`` — every experiment's rendered table.

Usage::

    python scripts/generate_artifacts.py [--out DIR] [--skip-slow]
"""

from __future__ import annotations

import argparse
from pathlib import Path


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="artifacts", help="output directory")
    parser.add_argument("--skip-slow", action="store_true",
                        help="skip the multi-boot experiments (ablations, "
                             "variance, scaling, fig6)")
    args = parser.parse_args()
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    from repro.analysis.export import report_to_json
    from repro.bootchart import BootChart, render_svg
    from repro.core import BBConfig, BootSimulation
    from repro.experiments import fig7_bbgroup_dbus
    from repro.graph.visualize import to_dot
    from repro.workloads import opensource_tv_workload
    from repro.workloads.tizen_tv import PAPER_BB_GROUP

    print("booting the TV (no BB / BB)...")
    no_bb = BootSimulation(opensource_tv_workload(), BBConfig.none()).run()
    bb = BootSimulation(opensource_tv_workload(), BBConfig.full()).run()

    (out / "bootchart_no_bb.svg").write_text(
        render_svg(BootChart.from_report(no_bb)))
    (out / "bootchart_bb.svg").write_text(
        render_svg(BootChart.from_report(bb)))
    (out / "report_no_bb.json").write_text(report_to_json(no_bb))
    (out / "report_bb.json").write_text(report_to_json(bb))
    (out / "dependency_graph.dot").write_text(
        to_dot(opensource_tv_workload().fresh_registry(),
               title="tizen-tv-opensource", highlight=set(PAPER_BB_GROUP)))

    print("running the Fig. 7 experiment...")
    fig7 = fig7_bbgroup_dbus.run()
    (out / "fig7_conventional.svg").write_text(
        render_svg(fig7.conventional_chart))
    (out / "fig7_isolated.svg").write_text(render_svg(fig7.boosted_chart))

    from repro.cli import _experiments

    skip = {"ablations", "variance", "scaling", "fig6"} if args.skip_slow else set()
    chunks = []
    for exp_id, (run, render) in _experiments().items():
        if exp_id in skip:
            continue
        print(f"running experiment {exp_id}...")
        chunks.append(f"===== {exp_id} =====\n{render(run())}\n")
    (out / "experiments.txt").write_text("\n".join(chunks))
    print(f"artifacts written to {out}/")


if __name__ == "__main__":
    main()
