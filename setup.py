"""Legacy setup shim.

The project is fully described by ``pyproject.toml``; this file exists only
so that ``pip install -e .`` works on environments whose setuptools lacks
PEP 660 wheel support (e.g. offline machines without the ``wheel`` package).
"""

from setuptools import setup

setup()
