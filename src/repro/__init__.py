"""BB reproduction: *Booting Booster for Consumer Electronics with Modern
OS* (Lim & Ham, EuroSys 2016) as a discrete-event boot-stack simulator.

Quick start::

    from repro import BBConfig, BootSimulation, opensource_tv_workload

    no_bb = BootSimulation(opensource_tv_workload(), BBConfig.none()).run()
    bb = BootSimulation(opensource_tv_workload(), BBConfig.full()).run()
    print(f"{no_bb.boot_complete_ms:.0f} ms -> {bb.boot_complete_ms:.0f} ms")

Package map:

* :mod:`repro.sim` — deterministic discrete-event engine (multicore CPU,
  spin-vs-sleep locks, tracing),
* :mod:`repro.hw` — storage/DRAM/peripheral models and board presets,
* :mod:`repro.kernel` — bootloader, kernel boot phases, RCU, modules,
* :mod:`repro.initsys` — the systemd-like init substrate and baselines,
* :mod:`repro.graph` — dependency analysis (Service Analyzer & friends),
* :mod:`repro.core` — Booting Booster itself (the paper's contribution),
* :mod:`repro.workloads` — TV / camera / phone / generated service sets,
* :mod:`repro.bootchart` — systemd-bootchart substitute,
* :mod:`repro.analysis` — metrics and report tables,
* :mod:`repro.experiments` — one driver per paper table/figure.
"""

from repro.analysis.metrics import BootReport, StageBreakdown, speedup
from repro.core.bb import BootingBooster, BootSimulation
from repro.core.config import BBConfig
from repro.workloads.camera import camera_workload
from repro.workloads.generator import GeneratorParams, generate_workload
from repro.workloads.phone import phone_workload
from repro.workloads.tizen_tv import (commercial_tv_workload,
                                      opensource_tv_workload)

__version__ = "1.0.0"

__all__ = [
    "BBConfig",
    "BootReport",
    "BootSimulation",
    "BootingBooster",
    "GeneratorParams",
    "StageBreakdown",
    "__version__",
    "camera_workload",
    "commercial_tv_workload",
    "generate_workload",
    "opensource_tv_workload",
    "phone_workload",
    "speedup",
]
