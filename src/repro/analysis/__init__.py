"""Boot-report metrics and experiment table formatting."""

from repro.analysis.metrics import BootReport, StageBreakdown, speedup
from repro.analysis.report import ComparisonTable, format_table

__all__ = [
    "BootReport",
    "ComparisonTable",
    "StageBreakdown",
    "format_table",
    "speedup",
]
