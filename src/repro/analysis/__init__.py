"""Boot-report metrics, experiment table formatting, and the closed-form
boot-time predictor (see ``docs/analysis.md``)."""

from repro.analysis.metrics import BootReport, StageBreakdown, speedup
from repro.analysis.predict import (PREDICTION_TOLERANCE, BootPrediction,
                                    SweepPredictor, predict, predict_job)
from repro.analysis.report import ComparisonTable, format_table

__all__ = [
    "BootPrediction",
    "BootReport",
    "ComparisonTable",
    "PREDICTION_TOLERANCE",
    "StageBreakdown",
    "SweepPredictor",
    "format_table",
    "predict",
    "predict_job",
    "speedup",
]
