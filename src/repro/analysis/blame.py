"""Post-boot attribution tooling (the simulation's ``systemd-analyze``).

Two views over a finished :class:`~repro.analysis.metrics.BootReport`:

* :func:`blame` — per-unit start durations, longest first (what
  ``systemd-analyze blame`` prints),
* :func:`critical_chain` — the *actual* gating chain behind boot
  completion: starting from a completion unit, repeatedly step to the
  predecessor whose readiness the unit waited for last.  Unlike the static
  estimate in :mod:`repro.graph.critical_path`, this reflects what really
  gated the run — contention included.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import BootReport
from repro.analysis.report import format_table
from repro.errors import AnalysisError
from repro.graph.depgraph import DependencyGraph
from repro.initsys.registry import UnitRegistry
from repro.quantities import to_msec


@dataclass(frozen=True, slots=True)
class BlameEntry:
    """One unit's start-time attribution."""

    unit: str
    started_ns: int
    ready_ns: int

    @property
    def duration_ns(self) -> int:
        """Launch-to-ready time."""
        return self.ready_ns - self.started_ns


def blame(report: BootReport, top: int | None = None) -> list[BlameEntry]:
    """Per-unit start durations, longest first."""
    entries = []
    for unit, started in report.unit_started_ns.items():
        ready = report.unit_ready_ns.get(unit)
        if ready is None:
            continue
        entries.append(BlameEntry(unit=unit, started_ns=started, ready_ns=ready))
    entries.sort(key=lambda e: (-e.duration_ns, e.unit))
    return entries if top is None else entries[:top]


def render_blame(report: BootReport, top: int = 15) -> str:
    """``systemd-analyze blame``-style text."""
    rows = [(entry.unit, f"{to_msec(entry.duration_ns):.1f} ms")
            for entry in blame(report, top=top)]
    return format_table(["unit", "start duration"], rows)


@dataclass(frozen=True, slots=True)
class ChainLink:
    """One step of the measured critical chain."""

    unit: str
    started_ns: int
    ready_ns: int
    gated_by: str | None  # the predecessor this unit actually waited for


def critical_chain(report: BootReport, registry: UnitRegistry,
                   completion_unit: str | None = None) -> list[ChainLink]:
    """The measured gating chain ending at the completion unit.

    At each step the gating predecessor is the ordering predecessor with
    the **latest readiness** among those that became ready at or before
    the unit's start (the one it plausibly waited on); the walk stops at a
    unit with no such predecessor.  When the run used BB Group isolation
    (``report.bb_group`` non-empty), edges the Isolator dropped — from
    outside the group into it — are excluded, mirroring the executor.

    Raises:
        AnalysisError: If the completion unit never became ready.
    """
    if completion_unit is None:
        if not report.unit_ready_ns:
            raise AnalysisError("empty report")
        completion_unit = max(report.unit_ready_ns,
                              key=lambda u: report.unit_ready_ns[u])
    if completion_unit not in report.unit_ready_ns:
        raise AnalysisError(f"{completion_unit!r} never became ready")

    graph = DependencyGraph(registry)
    chain: list[ChainLink] = []
    current: str | None = completion_unit
    visited: set[str] = set()
    while current is not None and current not in visited:
        visited.add(current)
        started = report.unit_started_ns.get(current)
        ready = report.unit_ready_ns.get(current)
        if started is None or ready is None:
            break
        predecessors = [p for p in graph.ordering_predecessors(current)
                        if p in report.unit_ready_ns]
        if report.bb_group and current in report.bb_group:
            predecessors = [p for p in predecessors if p in report.bb_group]
        gating = None
        gating_ready = -1
        for predecessor in predecessors:
            pred_ready = report.unit_ready_ns[predecessor]
            if pred_ready <= started and pred_ready > gating_ready:
                gating = predecessor
                gating_ready = pred_ready
        chain.append(ChainLink(unit=current, started_ns=started,
                               ready_ns=ready, gated_by=gating))
        current = gating
    chain.reverse()
    return chain


def render_critical_chain(report: BootReport, registry: UnitRegistry,
                          completion_unit: str | None = None) -> str:
    """``systemd-analyze critical-chain``-style text."""
    links = critical_chain(report, registry, completion_unit)
    rows = []
    for link in links:
        rows.append((link.unit,
                     f"@{to_msec(link.started_ns):.0f} ms",
                     f"+{to_msec(link.ready_ns - link.started_ns):.0f} ms"))
    return format_table(["unit", "started at", "took"], rows)
