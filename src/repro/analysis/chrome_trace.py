"""Chrome trace-event export: open any simulated boot in Perfetto.

Converts a simulation's tracer records into the Chrome trace-event JSON
format (the ``chrome://tracing`` / https://ui.perfetto.dev schema):
complete events (``ph: "X"``) for spans, instant events (``ph: "i"``) for
markers, one track (tid) per trace category.  Timestamps are microseconds
as the format requires.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.sim.tracing import Tracer

#: Stable track ids per category so related spans share a row.
_CATEGORY_TRACKS = {
    "boot-stage": 1,
    "kernel": 2,
    "init-task": 3,
    "service": 4,
    "deferred": 5,
    "app-launch": 6,
    "shutdown": 7,
    "runlevel": 8,
    "bb": 9,
}


def _track(category: str) -> int:
    return _CATEGORY_TRACKS.get(category, 10)


def tracer_to_events(tracer: "Tracer") -> list[dict[str, Any]]:
    """Trace-event dictionaries for every closed span and instant."""
    events: list[dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
        "args": {"name": "bb-boot-simulation"},
    }]
    for category, tid in sorted(_CATEGORY_TRACKS.items(), key=lambda kv: kv[1]):
        events.append({"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                       "args": {"name": category}})
    for span in tracer.iter_closed():
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "pid": 1,
            "tid": _track(span.category),
            "ts": span.start_ns / 1_000,  # ns -> us
            "dur": span.duration_ns / 1_000,
            "args": dict(span.attrs),
        })
    for instant in tracer.instants:
        events.append({
            "name": instant.name,
            "cat": instant.category,
            "ph": "i",
            "s": "g",  # global scope: draw the line across all tracks
            "pid": 1,
            "tid": _track(instant.category),
            "ts": instant.time_ns / 1_000,
        })
    return events


def tracer_to_chrome_json(tracer: "Tracer") -> str:
    """The full trace document as JSON text.

    The document is schema-validated before serialization; a
    :class:`~repro.errors.SchemaError` here means the exporter itself
    regressed, never the caller.
    """
    from repro.analysis.schema import validate_chrome_trace

    document = {"traceEvents": tracer_to_events(tracer),
                "displayTimeUnit": "ms"}
    validate_chrome_trace(document)
    return json.dumps(document)
