"""JSON export of boot reports, for external tooling and CI baselines."""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.metrics import BootReport


def report_to_dict(report: BootReport) -> dict[str, Any]:
    """A JSON-ready dictionary of everything a report measures."""
    return {
        "workload": report.workload,
        "features": list(report.features),
        "stages_ns": {
            "kernel": report.stages.kernel_ns,
            "init_init": report.stages.init_init_ns,
            "services": report.stages.services_ns,
        },
        "kernel_timings_ns": {
            "bootloader": report.kernel_timings.bootloader_ns,
            "meminit": report.kernel_timings.meminit_ns,
            "core": report.kernel_timings.core_ns,
            "initcalls": report.kernel_timings.initcalls_ns,
            "rootfs": report.kernel_timings.rootfs_ns,
        },
        "boot_complete_ns": report.boot_complete_ns,
        "all_done_ns": report.all_done_ns,
        "bb_group": sorted(report.bb_group),
        "rcu": {
            "sync_count": report.rcu_sync_count,
            "spin_ns": report.rcu_spin_ns,
            "wall_ns": report.rcu_wall_ns,
        },
        "cpu_busy_ns": report.cpu_busy_ns,
        "ignored_edges": report.ignored_edges,
        "deferred_tasks": list(report.deferred_task_names),
        "unit_started_ns": dict(report.unit_started_ns),
        "unit_ready_ns": dict(report.unit_ready_ns),
        "failed_units": dict(report.failed_units),
        "unsettled_units": list(report.unsettled_units),
        "injected_faults": dict(report.injected_faults),
        "deferred_failed": list(report.deferred_failed),
        "unit_attempts": dict(report.unit_attempts),
        "recovery": report.recovery,
    }


def report_to_json(report: BootReport, indent: int | None = 2) -> str:
    """Serialize a report to JSON text.

    The dictionary is schema-validated before serialization; a
    :class:`~repro.errors.SchemaError` here means the exporter and
    :mod:`repro.analysis.schema` drifted apart.
    """
    from repro.analysis.schema import validate_report_dict

    document = report_to_dict(report)
    validate_report_dict(document)
    return json.dumps(document, indent=indent, sort_keys=True)
