"""Boot-report metrics: everything the evaluation harness reads off a run.

The report splits the boot the same way Fig. 6 does:

* stage (a) — kernel initialization (power-on to init handoff),
* stage (b) — init-scheme initialization (manager start-up tasks),
* stages (c)+(d) — running services and applications in parallel, ending
  at boot completion (broadcast playing + remote responding).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.kernel.sequence import KernelBootTimings
from repro.quantities import to_msec


@dataclass(frozen=True, slots=True)
class StageBreakdown:
    """The three Fig. 6 stages of one boot (nanoseconds)."""

    kernel_ns: int
    init_init_ns: int
    services_ns: int

    @property
    def total_ns(self) -> int:
        """Power-on to boot completion."""
        return self.kernel_ns + self.init_init_ns + self.services_ns


@dataclass(slots=True)
class BootReport:
    """Everything measured from one simulated cold boot.

    Attributes:
        workload: Workload name.
        features: BB features enabled for the run.
        stages: The Fig. 6 stage split.
        boot_complete_ns: Power-on to boot completion.
        all_done_ns: Power-on to full quiescence (deferred work included).
        kernel_timings: Per-phase kernel numbers (Fig. 6(a)).
        unit_ready_ns: Readiness time of every started unit.
        unit_started_ns: Launch time of every started unit.
        bb_group: The isolated BB Group (empty without isolation).
        rcu_sync_count / rcu_spin_ns / rcu_wall_ns: RCU subsystem stats.
        cpu_busy_ns: Total core-nanoseconds executed.
        ignored_edges: Ordering edges dropped by the Isolator.
        deferred_task_names: Work postponed past completion.
        failed_units: Permanently failed units -> reason (a boot can
            complete degraded when the casualties are outside the
            completion chain).
        unsettled_units: Units whose start job never settled (blocked on
            a device that never appeared, typically).
        injected_faults: The fault injector's tally (empty when the run
            had no fault plan).
        deferred_failed: Deferred tasks that exhausted their retries.
        unit_attempts: Start attempts per unit *this boot* (restarted
            units show > 1; targets and skipped units are absent).
        recovery: The recovery section (JSON-ready dict) attached by the
            :class:`~repro.recovery.BootSupervisor`; ``None`` for an
            unsupervised boot.
    """

    workload: str
    features: list[str]
    stages: StageBreakdown
    boot_complete_ns: int
    all_done_ns: int
    kernel_timings: KernelBootTimings
    unit_ready_ns: dict[str, int] = field(default_factory=dict)
    unit_started_ns: dict[str, int] = field(default_factory=dict)
    bb_group: frozenset[str] = frozenset()
    rcu_sync_count: int = 0
    rcu_spin_ns: int = 0
    rcu_wall_ns: int = 0
    cpu_busy_ns: int = 0
    ignored_edges: int = 0
    deferred_task_names: list[str] = field(default_factory=list)
    failed_units: dict[str, str] = field(default_factory=dict)
    unsettled_units: tuple[str, ...] = ()
    injected_faults: dict[str, int] = field(default_factory=dict)
    deferred_failed: list[str] = field(default_factory=list)
    unit_attempts: dict[str, int] = field(default_factory=dict)
    recovery: dict | None = None

    @property
    def boot_complete_ms(self) -> float:
        """Boot completion in milliseconds (the paper's unit)."""
        return to_msec(self.boot_complete_ns)

    @property
    def degraded(self) -> bool:
        """True when boot completed but something died along the way."""
        return bool(self.failed_units or self.unsettled_units
                    or self.deferred_failed)

    def ready_ns(self, unit: str) -> int:
        """Readiness time of one unit.

        Raises:
            AnalysisError: If the unit never became ready in this run.
        """
        try:
            return self.unit_ready_ns[unit]
        except KeyError:
            raise AnalysisError(f"unit {unit!r} never became ready") from None


def speedup(baseline_ns: int, improved_ns: int) -> float:
    """Relative reduction, as the paper quotes it (8.1 -> 3.5 s is ~57 %).

    Raises:
        AnalysisError: If the baseline is not positive.
    """
    if baseline_ns <= 0:
        raise AnalysisError(f"baseline must be positive: {baseline_ns}")
    return 1.0 - improved_ns / baseline_ns
