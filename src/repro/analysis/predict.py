"""Closed-form boot-time prediction without running the event loop.

For an *unperturbed* boot (no fault plan) the paper's arithmetic is
closed-form: I/O is bytes/throughput, CPU work is cycles plus dispatch
overhead, and user-space parallelism is list scheduling of the start jobs
over the strong-ordering graph with ``min(tasks, cores)`` concurrency.
This module evaluates exactly that arithmetic:

* the kernel stage, manager initialization, unit loading (text or
  Pre-parser cache) and init sub-modules are strictly serial in the
  simulator — their cost is a sum, computed directly from the same model
  objects (:class:`~repro.kernel.sequence.KernelBootSequence`,
  :class:`~repro.initsys.preparser.PreParser`, ...) the DES uses;
* the service-launch phase is solved by a small deterministic list
  scheduler over the boot transaction: one lightweight task per start
  job replays the shepherd's step sequence (ordering gates, fork through
  the manager lock, exec read through the storage channel, init chunks,
  ``synchronize_rcu``, settle, readiness), with BB's Group Isolator edge
  pruning and Manager priorities applied analytically.

The solver is validated against the simulator by the ``predicted``
differential-oracle group in :mod:`repro.verify` (gem5's
known-answer-test methodology): on every built-in preset the prediction
must match DES boot-completion time within :data:`PREDICTION_TOLERANCE`.

**Tolerance contract** (details in ``docs/analysis.md``) — the replica
is slice-accurate: quantum round-robin with per-dispatch switch cost,
priority-aware storage channel and fork lock, direct-handoff mutexes,
ticket-spinlock RCU grace periods (spinners burn core slices), socket
activation, on-demand driver faulting and the kmod worker are replayed
move for move.  On every built-in preset × ``BBConfig.none()/full()`` ×
1/2/4 cores the prediction equals DES boot-completion time *exactly*,
to the nanosecond.  :data:`PREDICTION_TOLERANCE` is a guard band for
effects outside the replicated set (it admits no known error source
today); anything perturbed is out of scope — a job with a fault plan or
``failures_before_success`` is rejected with :class:`AnalysisError`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.core.config import BBConfig
from repro.core.core_engine import CoreEngine
from repro.core.service_engine import ServiceEngine
from repro.errors import AnalysisError, ReproError
from repro.hw.storage import AccessPattern
from repro.initsys.transaction import EdgeKind, Transaction
from repro.initsys.units import ServiceType, UnitType
from repro.kernel.rcu import RCUSubsystem
from repro.sim.cpu import DEFAULT_QUANTUM_NS, DEFAULT_SWITCH_COST_NS
from repro.sim.sync import Mutex, SpinLock
from repro.workloads.base import Workload

if TYPE_CHECKING:
    from repro.initsys.registry import UnitRegistry
    from repro.runner.jobs import SimJob

#: Relative tolerance of the ``predicted`` verify oracle: |predicted -
#: DES| / DES must stay below this on every unperturbed preset.  The
#: replica is currently exact (every preset measures a delta of 0.0);
#: the band exists so a future micro-cost added to the simulator fails
#: soft with a diagnosable drift report instead of a hard mismatch.
PREDICTION_TOLERANCE = 0.001

#: Scheduling priorities mirrored from the simulator (see
#: :mod:`repro.initsys.manager` / :mod:`repro.initsys.executor`).
_MANAGER_PRIORITY = 50
_KMOD_PRIORITY = 60
_SERVICE_PRIORITY = 100

#: Simulated-time horizon for the service phase.  The simulated init
#: model can genuinely livelock — conventional-RCU ticket spinners at
#: service priority starved forever by boosted-priority spinners on a
#: saturated CPU (the §4.3 priority-inversion pathology the RCU Booster
#: removes).  The DES runs such a boot forever; the predictor instead
#: raises :class:`AnalysisError` once simulated time passes this bound,
#: making it total over the whole design space.  Every terminating
#: preset boots in under 25 simulated seconds of service phase; two
#: minutes is safely past any real configuration while keeping the
#: livelock detection itself cheap (a livelocked machine only emits
#: spin-slice events, ~2 k per simulated second).
LIVELOCK_HORIZON_NS = 120_000_000_000


def compute_wall_ns(ns: int, quantum_ns: int = DEFAULT_QUANTUM_NS,
                    switch_cost_ns: int = DEFAULT_SWITCH_COST_NS) -> int:
    """Wall time of an uncontended ``Compute(ns)`` on the CPU model.

    The scheduler charges one dispatch (context switch) per quantum
    slice; a zero-length computation resumes synchronously and is free.
    """
    if ns <= 0:
        return 0
    slices = -(-ns // quantum_ns)
    return ns + slices * switch_cost_ns


# --------------------------------------------------------------------------
# Registry text statistics (the expensive part of the unit-loading closed
# form; cacheable across a sweep because they only depend on the unit set).


@dataclass(frozen=True, slots=True)
class RegistryTextStats:
    """Serialized-unit-file statistics feeding the load-phase closed form."""

    unit_count: int
    total_text_bytes: int
    parse_text_ns: int  # sum of per-unit parse costs (base + per-byte)
    edge_count: int


def registry_text_stats(registry: "UnitRegistry",
                        parse_base_ns: int,
                        parse_per_byte_ns: float) -> RegistryTextStats:
    """Compute the text statistics of ``registry`` (renders every unit)."""
    from repro.initsys.preparser import dependency_edge_count

    total = 0
    parse = 0
    for unit in registry:
        nbytes = len(registry.dump_unit_text(unit.name).encode())
        total += nbytes
        parse += parse_base_ns + round(parse_per_byte_ns * nbytes)
    return RegistryTextStats(unit_count=len(registry),
                             total_text_bytes=total,
                             parse_text_ns=parse,
                             edge_count=dependency_edge_count(registry))


# --------------------------------------------------------------------------
# The list-scheduler virtual machine for the service-launch phase.


class _Gate:
    """A one-shot completion; waiters resume synchronously on fire (FIFO)."""

    __slots__ = ("fired", "waiters")

    def __init__(self) -> None:
        self.fired = False
        self.waiters: list["_Task"] = []


class _Lock:
    """A sleeping lock granted to the best (priority, FIFO) waiter.

    ``fifo=True`` ignores priority on release — the semantics of the
    simulator's plain ``Mutex`` and ``SpinLock`` tickets, as opposed to
    the ``PriorityMutex`` guarding the storage channel and fork path.
    """

    __slots__ = ("owner", "queue", "wake_cost_ns", "seq", "fifo")

    def __init__(self, wake_cost_ns: int = 0, fifo: bool = False) -> None:
        self.owner: "_Task | None" = None
        self.queue: list[tuple[int, "_Task"]] = []
        self.wake_cost_ns = wake_cost_ns
        self.seq = 0
        self.fifo = fifo


class _Task:
    """One schedulable activity (a shepherd, the kmod worker, ...)."""

    __slots__ = ("gen", "priority", "name")

    def __init__(self, gen: Any, priority: int, name: str) -> None:
        self.gen = gen
        self.priority = priority
        self.name = name


class _Machine:
    """Deterministic list scheduler mirroring the DES dispatch rules.

    Tasks are generators yielding instruction tuples::

        ("cpu", ns)      occupy a core for compute_wall_ns(ns)
        ("sleep", ns)    timer wait, no core
        ("wait", gate)   park until the gate fires (caller checks .fired)
        ("fire", gate)   fire a gate, waking waiters synchronously
        ("lock", lock)   acquire; send-value True means it was contended
        ("unlock", lock) release, granting the best queued waiter

    The scheduler replicates the semantics the DES gets from its event
    queue and :class:`~repro.sim.cpu.CPU`: cores are granted eagerly
    inside synchronous wake cascades, freed cores are visible to the
    cascade that freed them, and ties break FIFO by enqueue order.
    """

    def __init__(self, cores: int, start_ns: int,
                 quantum_ns: int = DEFAULT_QUANTUM_NS,
                 switch_cost_ns: int = DEFAULT_SWITCH_COST_NS) -> None:
        self.now = start_ns
        self.idle = cores
        self.quantum_ns = quantum_ns
        self.switch_cost_ns = switch_cost_ns
        self.stopped = False
        # Event records: [time, seq, task, remaining_ns] — remaining < 0
        # marks a plain resume (timer expiry / zero-delay wake), >= 0 a
        # CPU run completing with that much work still owed.  A record
        # whose task slot is None has been cancelled (lazy heap delete).
        self._events: list[list] = []
        self._eseq = 0
        self._run: list[tuple[int, int, "_Task", int]] = []
        self._rseq = 0
        # In-flight multi-quantum batched runs: id(record) -> (record,
        # start_ns, total_ns).  See _begin_run/_split_batches.
        self._batches: dict[int, tuple[list, int, int]] = {}

    # -------------------------------------------------------------- driving

    def start(self, task: "_Task") -> None:
        self._drive(task, None)

    def run(self, horizon_ns: int) -> None:
        pop = heapq.heappop
        push = heapq.heappush
        events = self._events
        while events and not self.stopped:
            e = pop(events)
            task = e[2]
            if task is None:
                continue  # cancelled by a batch split
            time_ns = e[0]
            self.now = time_ns
            if time_ns > horizon_ns:
                raise AnalysisError(
                    f"no boot completion after {horizon_ns / 1e9:.0f} "
                    f"simulated seconds — the configuration livelocks "
                    f"(e.g. conventional-RCU spinners starved by "
                    f"priority-boosted work on a saturated CPU)")
            if self._batches:
                # Any real event firing may change scheduler state, so
                # in-flight batches lose their skipped boundaries first.
                self._batches.pop(id(e), None)
                if self._batches:
                    self._split_batches()
                    if events and events[0] < e:
                        # A split landed a boundary at this very instant
                        # with an earlier sequence number — it goes first.
                        push(events, e)
                        continue
            remaining_ns = e[3]
            if remaining_ns < 0:
                self._drive(task, None)
            elif remaining_ns == 0:
                # Compute finished: free the core before resuming so the
                # wake cascade can immediately claim it (DES ordering).
                self.idle += 1
                self._drive(task, None)
                if self._run and self.idle > 0:
                    self._dispatch()
            else:
                # Preempted at a quantum boundary with work still owed.
                if not self._run:
                    # No contender: the task re-wins the very core it
                    # just released, so the core never goes idle — chain
                    # the rest of the work as one batched run.
                    self._begin_run(task, remaining_ns)
                else:
                    self.idle += 1
                    self._enqueue(task, remaining_ns)
                    self._dispatch()

    def _schedule(self, delay_ns: int, task: "_Task",
                  remaining_ns: int) -> None:
        heapq.heappush(self._events,
                       [self.now + delay_ns, self._eseq, task, remaining_ns])
        self._eseq += 1

    def _drive(self, task: "_Task", value: Any) -> None:
        send = task.gen.send
        try:
            while True:
                op, operand = send(value)
                value = None
                if op == "cpu":
                    if operand <= 0:
                        continue  # Compute(0) resumes synchronously
                    # Fast path: a free core and an empty queue means the
                    # task is dispatched immediately — skip the run-queue
                    # round trip entirely.
                    if self.idle > 0 and not self._run:
                        self.idle -= 1
                        self._begin_run(task, operand)
                        return
                    self._enqueue(task, operand)
                    self._dispatch()
                    return
                if op == "sleep":
                    self._schedule(operand, task, -1)
                    return
                if op == "wait":
                    if operand.fired:
                        # Mirrors Wait on a fired completion: one event-
                        # queue round trip at the current time.
                        self._schedule(0, task, -1)
                    else:
                        operand.waiters.append(task)
                    return
                if op == "fire":
                    self.fire(operand)
                    continue
                if op == "lock":
                    if operand.owner is None:
                        operand.owner = task
                        value = False
                        continue
                    operand.queue.append((operand.seq, task))
                    operand.seq += 1
                    return
                if op == "unlock":
                    self._release(operand)
                    continue
                raise AnalysisError(f"unknown VM instruction {op!r}")
        except StopIteration:
            return

    # ------------------------------------------------------- wake machinery

    def fire(self, gate: "_Gate") -> None:
        if gate.fired:
            return
        gate.fired = True
        waiters, gate.waiters = gate.waiters, []
        for waiter in waiters:
            self._drive(waiter, None)

    def _release(self, lock: "_Lock") -> None:
        lock.owner = None
        if not lock.queue:
            return
        if lock.fifo:
            best = 0
        else:
            best = min(range(len(lock.queue)),
                       key=lambda i: (lock.queue[i][1].priority,
                                      lock.queue[i][0]))
        _, task = lock.queue.pop(best)
        lock.owner = task
        self._drive(task, True)

    # --------------------------------------------------------- CPU modelling
    # Slice-accurate replica of repro.sim.cpu.CPU: computations are run
    # in quantum slices with a dispatch cost per slice, and a preempted
    # task re-enqueues at the back of its priority class.  Quantum
    # round-robin is what lets the BB Manager's priority boost reclaim a
    # core mid-computation — a first-order effect on boot time, not a
    # detail.

    def _enqueue(self, task: "_Task", remaining_ns: int) -> None:
        if self._batches:
            # The run queue turning non-empty invalidates the skipped
            # boundaries of every in-flight batch: at each one, this
            # arrival could rotate onto the core.
            self._split_batches()
        heapq.heappush(self._run,
                       (task.priority, self._rseq, task, remaining_ns))
        self._rseq += 1

    def _dispatch(self) -> None:
        while self.idle > 0 and self._run:
            _, _, task, remaining_ns = heapq.heappop(self._run)
            self.idle -= 1
            self._begin_run(task, remaining_ns)

    def _begin_run(self, task: "_Task", remaining_ns: int) -> None:
        """Put an already-claimed core to work on ``remaining_ns``.

        With contenders queued, exactly one quantum runs before the
        boundary rotation (plain DES behaviour).  With an empty run
        queue, every remaining quantum is chained into one batched event:
        at each skipped boundary the task would re-win its own core, so
        the outcome is bit-identical *provided nothing else happens
        first* — and any event pop or run-queue arrival before a skipped
        boundary splits the batch back to that boundary (see
        :meth:`_split_batches`), restoring plain stepping exactly.
        """
        quantum = self.quantum_ns
        if remaining_ns <= quantum:
            self._schedule(self.switch_cost_ns + remaining_ns, task, 0)
            return
        if self._run:
            self._schedule(self.switch_cost_ns + quantum, task,
                           remaining_ns - quantum)
            return
        slices = -(-remaining_ns // quantum)
        rec = [self.now + remaining_ns + slices * self.switch_cost_ns,
               self._eseq, task, 0]
        self._eseq += 1
        heapq.heappush(self._events, rec)
        self._batches[id(rec)] = (rec, self.now, remaining_ns)

    def _split_batches(self) -> None:
        """Collapse every in-flight batch to its next quantum boundary.

        Called at ``self.now`` before anything that can perturb the
        scheduler (an event firing, an arrival in the run queue).  Each
        batch keeps only the boundaries already safely in its past; the
        rest of its work is re-posted as a plain single-slice record at
        the first boundary at or after ``now``, which re-batches on its
        own if the queue is still empty when it fires.

        Sequence numbers are chosen so same-instant ties keep the DES
        order: the first boundary's record reuses the batch's creation
        seq (that IS the seq the unbatched event would have carried);
        later boundaries take a fresh seq, which sorts after everything
        pending — matching the unbatched schedule time of boundary i-1,
        later than any event scheduled while the batch was whole.
        """
        step = self.quantum_ns + self.switch_cost_ns
        quantum = self.quantum_ns
        for rec, start, total in self._batches.values():
            boundary = -((start - self.now) // step)  # ceil((now-start)/step)
            if boundary < 1:
                boundary = 1
            slices = -(-total // quantum)
            task = rec[2]
            rec[2] = None  # lazy heap delete
            if boundary < slices:
                if boundary == 1:
                    seq = rec[1]
                else:
                    seq = self._eseq
                    self._eseq += 1
                heapq.heappush(self._events,
                               [start + boundary * step, seq, task,
                                total - boundary * quantum])
            else:
                # Only the final partial slice is still in flight: keep
                # the completion instant, refresh the seq for exact ties.
                heapq.heappush(self._events, [rec[0], self._eseq, task, 0])
                self._eseq += 1
        self._batches.clear()


def _acquire(lock: "_Lock"):
    """Lock acquisition paying the woken waiter's context-switch cost."""
    contended = yield ("lock", lock)
    if contended and lock.wake_cost_ns:
        yield ("cpu", lock.wake_cost_ns)


class _TicketSpin:
    """Replica of the simulator's ticket ``SpinLock`` (conventional RCU).

    Spinners burn real core time in ``spin_slice_ns`` chunks and observe
    a release only when their current slice completes — both effects the
    RCU Booster exists to remove, so they must be priced faithfully.
    """

    __slots__ = ("held", "next_ticket", "tickets",
                 "acquire_cost_ns", "spin_slice_ns")

    def __init__(self, acquire_cost_ns: int, spin_slice_ns: int) -> None:
        self.held = False
        self.next_ticket = 0
        self.tickets: set[int] = set()
        self.acquire_cost_ns = acquire_cost_ns
        self.spin_slice_ns = spin_slice_ns

    def acquire(self):
        if self.acquire_cost_ns:
            yield ("cpu", self.acquire_cost_ns)
        ticket = self.next_ticket
        self.next_ticket += 1
        self.tickets.add(ticket)
        while min(self.tickets) != ticket or self.held:
            yield ("cpu", self.spin_slice_ns)
        self.tickets.discard(ticket)
        self.held = True

    def release(self) -> None:
        self.held = False


# --------------------------------------------------------------------------
# Prediction result.


@dataclass(frozen=True, slots=True)
class BootPrediction:
    """The closed-form solution for one unperturbed boot.

    Times are absolute nanoseconds from power-on, matching the DES
    report's clock.  Per-unit dictionaries cover every job that started
    (respectively became ready) *before boot completion* — the predictor
    stops at the completion instant; post-completion stragglers and
    deferred work are out of scope by design.
    """

    workload: str
    features: tuple[str, ...]
    cores: int
    boot_complete_ns: int
    kernel_ns: int
    init_init_ns: int
    load_units_ns: int
    submodules_ns: int
    services_ns: int
    unit_started_ns: dict[str, int] = field(default_factory=dict)
    unit_ready_ns: dict[str, int] = field(default_factory=dict)
    bb_group: frozenset[str] = frozenset()

    @property
    def boot_complete_ms(self) -> float:
        """Boot completion in milliseconds (presentation helper)."""
        return self.boot_complete_ns / 1e6


# --------------------------------------------------------------------------
# Serial-phase closed forms.


def _kernel_stage_ns(core_engine: CoreEngine) -> int:
    """Exact serial cost of the kernel stage (one process, idle machine)."""
    sequence = core_engine.sequence
    platform = core_engine.platform
    storage = platform.storage
    bootloader = sequence.bootloader
    total = bootloader.rom_stage_ns
    total += storage.read_time_ns(bootloader.loader_size_bytes,
                                  AccessPattern.SEQUENTIAL)
    total += bootloader.hw_init_ns
    total += sequence.image.load_time_ns(storage, platform.decompress_bps)
    total += compute_wall_ns(sequence.meminit.boot_phase_ns())
    total += compute_wall_ns(sequence.config.extra_cost_ns())
    for call in sequence.initcalls.boot_sequence(defer=sequence.defer_initcalls):
        total += compute_wall_ns(call.cpu_ns) + call.hw_settle_ns
    rootfs = sequence.rootfs
    total += storage.read_time_ns(rootfs.superblock_bytes,
                                  AccessPattern.RANDOM)
    total += compute_wall_ns(rootfs.mount_cpu_ns)
    if not rootfs.deferred_journal:
        total += compute_wall_ns(rootfs.journal_setup_ns)
    return total


def _startup_tasks_ns(config_tasks: Iterable, defer: bool) -> int:
    """Serial cost of the manager's Fig. 6(b) initialization phase."""
    return sum(compute_wall_ns(task.cpu_ns) for task in config_tasks
               if not (defer and task.deferrable))


def _load_units_ns(service_engine: ServiceEngine, storage,
                   stats: RegistryTextStats, use_preparser: bool) -> int:
    """Serial cost of unit loading: Pre-parser cache or full text parse.

    In an unperturbed boot the cache is built from the exact registry it
    is loaded against, so it is always fresh — the stale-cache fallback
    never triggers and its fingerprint never needs computing.
    """
    preparser = service_engine.preparser
    if use_preparser:
        blob = max(1, round(stats.total_text_bytes
                            * preparser.cache_compression))
        total = storage.read_time_ns(blob, AccessPattern.SEQUENTIAL)
        total += compute_wall_ns(preparser.cached_unit_ns * stats.unit_count)
        return total
    loading_cpu = preparser.file_op_ns * preparser.file_ops_per_unit \
        * stats.unit_count
    total = compute_wall_ns(loading_cpu)
    total += storage.read_time_ns(stats.total_text_bytes,
                                  AccessPattern.RANDOM)
    parsing_cpu = stats.parse_text_ns \
        + preparser.resolve_per_edge_ns * stats.edge_count
    total += compute_wall_ns(parsing_cpu)
    return total


# --------------------------------------------------------------------------
# The service-launch phase.


class _ServiceWorld:
    """Shared state of the service-phase list schedule."""

    def __init__(self, machine: "_Machine", transaction: Transaction,
                 storage, rcu_boosted: bool,
                 preexisting_paths: set[str]) -> None:
        self.machine = machine
        self.transaction = transaction
        self.storage_ns = storage.read_time_ns
        self.storage_lock = _Lock(wake_cost_ns=0)
        self.fork_lock = _Lock(wake_cost_ns=1_000)
        self.rcu_boosted = rcu_boosted
        self.paths: set[str] = set(preexisting_paths)
        self.path_gates: dict[str, "_Gate"] = {}
        self.started: dict[str, "_Gate"] = {}
        self.ready: dict[str, "_Gate"] = {}
        self.settled: dict[str, "_Gate"] = {}
        self.started_at: dict[str, int] = {}
        self.ready_at: dict[str, int] = {}
        self.completion_ns: int | None = None
        # Mirrors RCUSubsystem's calibrated constants (the keyword
        # defaults of its constructor: grace, expedited, conventional
        # CPU, boosted CPU) plus the lock costs its primitives carry.
        rcu_defaults = RCUSubsystem.__init__.__defaults__
        self.rcu = {
            "grace_ns": rcu_defaults[0],
            "expedited_ns": rcu_defaults[1],
            "conventional_cpu_ns": rcu_defaults[2],
            "boosted_cpu_ns": rcu_defaults[3],
            "boosted_wake_ns": Mutex.__init__.__defaults__[-1],
        }
        spin_defaults = SpinLock.__init__.__defaults__
        self.rcu_wait_lock = _TicketSpin(acquire_cost_ns=spin_defaults[-1],
                                         spin_slice_ns=rcu_defaults[4])
        self.rcu_boost_mutex = _Lock(
            wake_cost_ns=self.rcu["boosted_wake_ns"], fifo=True)

    # ----------------------------------------------------------- primitives

    def provide(self, path: str) -> None:
        if path in self.paths:
            return
        self.paths.add(path)
        gate = self.path_gates.pop(path, None)
        if gate is not None:
            self.machine.fire(gate)

    def path_gate(self, path: str) -> "_Gate":
        gate = self.path_gates.get(path)
        if gate is None:
            gate = self.path_gates[path] = _Gate()
        return gate

    def storage_read(self, nbytes: int, pattern: AccessPattern):
        duration = self.storage_ns(nbytes, pattern)
        yield from _acquire(self.storage_lock)
        yield ("sleep", duration)
        yield ("unlock", self.storage_lock)

    def synchronize_rcu(self):
        rcu = self.rcu
        if self.rcu_boosted:
            yield ("cpu", rcu["boosted_cpu_ns"])
            yield from _acquire(self.rcu_boost_mutex)
            yield ("sleep", rcu["expedited_ns"])
            yield ("unlock", self.rcu_boost_mutex)
        else:
            yield ("cpu", rcu["conventional_cpu_ns"])
            yield from self.rcu_wait_lock.acquire()
            yield ("sleep", rcu["grace_ns"])
            self.rcu_wait_lock.release()


def _mark_started(world: "_ServiceWorld", name: str) -> tuple[str, Any]:
    world.started_at[name] = world.machine.now
    return ("fire", world.started[name])


def _mark_ready_steps(world: "_ServiceWorld", name: str):
    if name not in world.ready_at:
        world.ready_at[name] = world.machine.now
        yield ("fire", world.ready[name])
        yield ("fire", world.settled[name])


def _shepherd(world: "_ServiceWorld", job, edge_filter, faulter):
    """The predictor's replica of ``JobExecutor._shepherd`` + runner."""
    name = job.unit.name
    unit = job.unit
    for edge in world.transaction.predecessors(name):
        if edge_filter is not None and not edge_filter(edge):
            continue
        gate = (world.settled[edge.predecessor]
                if edge.kind is EdgeKind.STRONG
                else world.started[edge.predecessor])
        if not gate.fired:
            yield ("wait", gate)

    if any(p not in world.paths for p in unit.condition_paths):
        # Condition skip: the job settles immediately, dependents unblock.
        world.started_at[name] = world.ready_at[name] = world.machine.now
        yield ("fire", world.started[name])
        yield ("fire", world.ready[name])
        yield ("fire", world.settled[name])
        return

    if unit.unit_type is UnitType.TARGET:
        world.started_at[name] = world.ready_at[name] = world.machine.now
        yield ("fire", world.started[name])
        yield ("fire", world.ready[name])
        yield ("fire", world.settled[name])
        return

    cost = unit.cost
    for _ in range(cost.processes):
        yield from _acquire(world.fork_lock)
        yield ("cpu", cost.fork_ns)
        yield ("unlock", world.fork_lock)

    if cost.exec_bytes:
        yield from world.storage_read(cost.exec_bytes, AccessPattern.RANDOM)
    if not unit.static_build and cost.dynamic_link_ns:
        yield ("cpu", cost.dynamic_link_ns)

    yield _mark_started(world, name)
    if unit.service_type is ServiceType.SIMPLE:
        yield from _mark_ready_steps(world, name)

    for path in unit.waits_for_paths:
        if path not in world.paths:
            if faulter is not None:
                yield from faulter(path)
            if path not in world.paths:
                yield ("wait", world.path_gate(path))

    # Initialization chunks interleaved with synchronize_rcu, the first
    # IPC call gated on socket-activation providers.
    syncs = cost.rcu_syncs
    chunks = syncs + 1
    chunk_ns = cost.init_cpu_ns // chunks
    remainder = cost.init_cpu_ns - chunk_ns * chunks
    for index in range(chunks):
        cpu = chunk_ns + (remainder if index == chunks - 1 else 0)
        if cpu:
            yield ("cpu", cpu)
        if index == 0 and unit.ipc_targets:
            for target in unit.ipc_targets:
                if target in world.transaction:
                    gate = world.ready[target]
                    if not gate.fired:
                        yield ("wait", gate)
        if index < syncs:
            yield from world.synchronize_rcu()
    if cost.hw_settle_ns:
        yield ("sleep", cost.hw_settle_ns)

    if unit.service_type is ServiceType.NOTIFY and cost.ready_extra_ns:
        yield ("sleep", cost.ready_extra_ns)
    for path in unit.provides_paths:
        world.provide(path)
    yield from _mark_ready_steps(world, name)


def _kmod_worker(world: "_ServiceWorld", boot_modules):
    """Replica of the bulk external-module loader (priority 60)."""
    from repro.kernel.modules import SYSCALL_COST_NS, SYSCALLS_PER_LOAD

    loaded: set[str] = set()
    for module in boot_modules:
        if module.name in loaded:
            world.provide(f"/dev/{module.name}")
            continue
        yield ("cpu", SYSCALL_COST_NS * SYSCALLS_PER_LOAD)
        yield from world.storage_read(module.size_bytes, AccessPattern.RANDOM)
        yield ("cpu", module.link_cpu_ns)
        if module.hw_settle_ns:
            yield ("sleep", module.hw_settle_ns)
        loaded.add(module.name)
        world.provide(f"/dev/{module.name}")


def _manager_wait(world: "_ServiceWorld", completion_units):
    """Replica of ``_wait_for_completion``: stop at the completion instant."""
    for name in completion_units:
        gate = world.settled[name]
        if not gate.fired:
            yield ("wait", gate)
        if name not in world.ready_at:
            raise AnalysisError(
                f"completion unit {name!r} settled without becoming ready")
    world.completion_ns = world.machine.now
    world.machine.stopped = True


def _make_faulter(world: "_ServiceWorld", core_engine: CoreEngine):
    """On-demand Modularizer Control: demand-load the driver of a path."""
    initcalls = core_engine.initcalls
    completed = set(initcalls.completed)
    # boot_sequence() already ran for the kernel closed form; everything
    # it selected executed in-line.
    completed.update(
        c.name for c in initcalls.boot_sequence(defer=True))

    def faulter(path: str):
        driver = path.rsplit("/", 1)[-1]
        call = initcalls.get(driver)  # KernelError on unknown, as in DES
        if call.name not in completed:
            yield ("cpu", 500_000)  # demand dispatch overhead (usec(500))
            yield ("cpu", call.cpu_ns)
            if call.hw_settle_ns:
                yield ("sleep", call.hw_settle_ns)
            completed.add(call.name)
        world.provide(path)

    return faulter


# --------------------------------------------------------------------------
# Entry points.


def predict(workload: Workload, bb: BBConfig | None = None,
            cores: int | None = None, kernel_config: Any | None = None,
            manual_bb_group: tuple[str, ...] | None = None,
            text_stats: RegistryTextStats | None = None) -> BootPrediction:
    """Predict boot-completion time for one unperturbed boot.

    Mirrors the :class:`~repro.core.bb.BootSimulation` constructor
    signature.  ``text_stats`` short-circuits the expensive unit-file
    rendering pass — pass the value of a previous :func:`predict` over
    the *same unit set and* ``static_bb_group`` *flag* (see
    :func:`registry_text_stats`) when sweeping many configurations of
    one workload.

    Raises:
        AnalysisError: If the workload cannot be predicted (cyclic
            transaction, unknown completion unit, injected failures).
    """
    bb = bb if bb is not None else BBConfig.none()
    platform = workload.platform_factory()
    cores = cores if cores is not None else platform.cpu_cores
    storage = platform.storage

    if kernel_config is None and workload.kernel_config_factory is not None:
        kernel_config = workload.kernel_config_factory()

    try:
        registry = workload.fresh_registry()
    except ReproError as exc:
        raise AnalysisError(f"cannot realize workload: {exc}") from exc
    core_engine = CoreEngine(
        platform, bb, kernel_config=kernel_config,
        initcalls=workload.initcalls_factory(),
        builtin_initcalls=workload.builtin_initcalls_factory())
    service_engine = ServiceEngine(registry, workload.completion_units,
                                   bb, manual_group=manual_bb_group)

    # Serial prefix: kernel, manager init, unit loading, sub-modules.
    kernel_ns = _kernel_stage_ns(core_engine)
    from repro.initsys.startup_tasks import STARTUP_TASKS, SUBMODULE_TASKS

    init_init_ns = _startup_tasks_ns(STARTUP_TASKS, bb.defer_startup_tasks)
    if text_stats is None:
        preparser = service_engine.preparser
        text_stats = registry_text_stats(registry, preparser.parse_base_ns,
                                         preparser.parse_per_byte_ns)
    load_units_ns = _load_units_ns(service_engine, storage, text_stats,
                                   use_preparser=bb.preparser)
    submodules_ns = 0
    if not bb.deferred_executor:
        submodules_ns = sum(compute_wall_ns(task.cpu_ns)
                            for task in SUBMODULE_TASKS)

    # The boot transaction, on the post-install-section registry (static
    # builds were already applied by the ServiceEngine constructor).
    registry.apply_install_sections()
    try:
        transaction = Transaction(registry, [workload.goal])
    except Exception as exc:
        raise AnalysisError(f"cannot build boot transaction: {exc}") from exc
    missing = [u for u in workload.completion_units if u not in transaction]
    if missing:
        raise AnalysisError(
            f"completion units not in boot transaction: {missing}")
    flaky = [j.unit.name for j in transaction.jobs.values()
             if j.unit.failures_before_success]
    if flaky:
        raise AnalysisError(
            f"predictor models unperturbed boots only; units with "
            f"failures_before_success: {flaky}")

    services_start = kernel_ns + init_init_ns + load_units_ns + submodules_ns
    machine = _Machine(cores, services_start)
    world = _ServiceWorld(machine, transaction, storage,
                          rcu_boosted=bb.rcu_booster,
                          preexisting_paths=set(workload.preexisting_paths))
    for job in transaction.jobs.values():
        name = job.unit.name
        world.started[name] = _Gate()
        world.ready[name] = _Gate()
        world.settled[name] = _Gate()

    edge_filter = service_engine.edge_filter
    priority_fn = service_engine.priority_fn
    faulter = (_make_faulter(world, core_engine)
               if bb.ondemand_modularizer else None)
    boot_modules = (() if bb.ondemand_modularizer
                    else workload.boot_modules_factory())

    # Activation order mirrors the DES: the manager parks on the first
    # completion gate before any spawned process runs its first step;
    # the kmod worker was spawned before the shepherds.
    machine.start(_Task(_manager_wait(world, workload.completion_units),
                        _MANAGER_PRIORITY, "init-manager"))
    if boot_modules:
        machine.start(_Task(_kmod_worker(world, boot_modules),
                            _KMOD_PRIORITY, "kmod-worker"))
    for job in transaction.jobs.values():
        priority = (priority_fn(job.unit) if priority_fn
                    else _SERVICE_PRIORITY)
        machine.start(_Task(_shepherd(world, job, edge_filter, faulter),
                            priority, f"job:{job.unit.name}"))
    machine.run(services_start + LIVELOCK_HORIZON_NS)

    if world.completion_ns is None:
        raise AnalysisError(
            "prediction deadlocked before boot completion (a waited-for "
            "path or gate never fired)")

    return BootPrediction(
        workload=workload.name,
        features=tuple(bb.enabled_features()),
        cores=cores,
        boot_complete_ns=world.completion_ns,
        kernel_ns=kernel_ns,
        init_init_ns=init_init_ns,
        load_units_ns=load_units_ns,
        submodules_ns=submodules_ns,
        services_ns=world.completion_ns - services_start,
        unit_started_ns=dict(world.started_at),
        unit_ready_ns=dict(world.ready_at),
        bb_group=(service_engine.bb_group
                  if service_engine.edge_filter is not None else frozenset()),
    )


def predict_job(job: "SimJob",
                text_stats: RegistryTextStats | None = None) -> BootPrediction:
    """Predict the boot a declarative :class:`~repro.runner.jobs.SimJob`
    describes (``boot`` kind, no fault plan).

    Raises:
        AnalysisError: For non-boot kinds or fault-injected jobs.
    """
    from repro.runner.jobs import KIND_BOOT

    if job.kind != KIND_BOOT:
        raise AnalysisError(f"cannot predict a {job.kind!r} job")
    if job.fault_plan is not None:
        raise AnalysisError("predictor models unperturbed boots only; "
                            "this job carries a fault plan")
    if job.workload_factory is None:
        raise AnalysisError("boot SimJob has no workload factory")
    workload = job.workload_factory(*job.workload_args,
                                    **dict(job.workload_kwargs))
    return predict(workload, job.bb, cores=job.cores,
                   kernel_config=job.kernel_config,
                   manual_bb_group=job.manual_bb_group,
                   text_stats=text_stats)

# --------------------------------------------------------------------------
# Design-space sweeps.

#: Features that change when the services phase *begins* but never how it
#: unfolds.  Their entire effect is a serial-prefix delta, so the machine
#: solution of the services phase is shift-invariant under them.
PREFIX_ONLY_FEATURES = ("deferred_meminit", "deferred_journal", "preparser",
                        "defer_startup_tasks", "deferred_executor")

#: Features the services-phase solution genuinely depends on (plus the
#: core count and the workload itself).
SERVICE_PHASE_FEATURES = ("rcu_booster", "ondemand_modularizer",
                          "group_isolation", "group_priority_boost",
                          "static_bb_group")


class SweepPredictor:
    """Amortized :func:`predict` for design-space sweeps of one workload.

    Two structural facts of the boot model make large sweeps cheap:

    * Unit-file text statistics depend only on the unit set and the
      ``static_bb_group`` flag, so one rendering pass serves every other
      feature combination.
    * The :data:`PREFIX_ONLY_FEATURES` change *when* the services phase
      starts, never how it unfolds: the machine solution is
      shift-invariant under them, and one run per
      :data:`SERVICE_PHASE_FEATURES` projection (and core count) serves
      every combination of the prefix-only flags.

    Fast-path results are bit-identical to calling :func:`predict`
    directly — asserted by the ``predicted`` differential-oracle group.
    ``machine_runs`` and ``fast_hits`` expose the cache economics for
    sweep logs.
    """

    def __init__(self, workload_factory: Callable[[], Workload]) -> None:
        self._factory = workload_factory
        self._workload: Workload | None = None
        self._stats: dict[bool, tuple[ServiceEngine, RegistryTextStats]] = {}
        self._reference: dict[tuple, BootPrediction] = {}
        self._prefix: dict[tuple, tuple[int, int, int, int]] = {}
        self.machine_runs = 0
        self.fast_hits = 0

    # ------------------------------------------------------------- caches

    def _wl(self) -> Workload:
        if self._workload is None:
            self._workload = self._factory()
        return self._workload

    def _stats_for(self, static: bool) -> tuple[ServiceEngine,
                                                RegistryTextStats]:
        entry = self._stats.get(static)
        if entry is None:
            wl = self._wl()
            bb = BBConfig.none().with_feature("static_bb_group", static)
            try:
                registry = wl.fresh_registry()
            except ReproError as exc:
                raise AnalysisError(
                    f"cannot realize workload: {exc}") from exc
            engine = ServiceEngine(registry, wl.completion_units, bb)
            preparser = engine.preparser
            entry = (engine,
                     registry_text_stats(registry, preparser.parse_base_ns,
                                         preparser.parse_per_byte_ns))
            self._stats[static] = entry
        return entry

    def _prefix_key(self, bb: BBConfig) -> tuple:
        return tuple(getattr(bb, f) for f in PREFIX_ONLY_FEATURES) \
            + (bb.ondemand_modularizer, bb.static_bb_group)

    def _prefix_parts(self, bb: BBConfig) -> tuple[int, int, int, int]:
        key = self._prefix_key(bb)
        parts = self._prefix.get(key)
        if parts is None:
            wl = self._wl()
            platform = wl.platform_factory()
            kernel_config = (wl.kernel_config_factory()
                             if wl.kernel_config_factory is not None
                             else None)
            core_engine = CoreEngine(
                platform, bb, kernel_config=kernel_config,
                initcalls=wl.initcalls_factory(),
                builtin_initcalls=wl.builtin_initcalls_factory())
            from repro.initsys.startup_tasks import (STARTUP_TASKS,
                                                     SUBMODULE_TASKS)

            engine, stats = self._stats_for(bb.static_bb_group)
            submodules_ns = 0
            if not bb.deferred_executor:
                submodules_ns = sum(compute_wall_ns(task.cpu_ns)
                                    for task in SUBMODULE_TASKS)
            parts = (_kernel_stage_ns(core_engine),
                     _startup_tasks_ns(STARTUP_TASKS,
                                       bb.defer_startup_tasks),
                     _load_units_ns(engine, platform.storage, stats,
                                    use_preparser=bb.preparser),
                     submodules_ns)
            self._prefix[key] = parts
        return parts

    # -------------------------------------------------------------- entry

    def predict(self, bb: BBConfig | None = None,
                cores: int | None = None) -> BootPrediction:
        """Predict one design-space cell, reusing cached sub-solutions."""
        bb = bb if bb is not None else BBConfig.none()
        if cores is None:
            cores = self._wl().platform_factory().cpu_cores
        skey = tuple(getattr(bb, f)
                     for f in SERVICE_PHASE_FEATURES) + (cores,)
        ref = self._reference.get(skey)
        if ref is None:
            stats = self._stats_for(bb.static_bb_group)[1]
            ref = predict(self._wl(), bb, cores=cores, text_stats=stats)
            self._reference[skey] = ref
            self._prefix[self._prefix_key(bb)] = (
                ref.kernel_ns, ref.init_init_ns, ref.load_units_ns,
                ref.submodules_ns)
            self.machine_runs += 1
            return ref
        self.fast_hits += 1
        kernel_ns, init_init_ns, load_units_ns, submodules_ns = \
            self._prefix_parts(bb)
        shift = (kernel_ns + init_init_ns + load_units_ns + submodules_ns) \
            - (ref.kernel_ns + ref.init_init_ns + ref.load_units_ns
               + ref.submodules_ns)
        features = tuple(bb.enabled_features())
        if shift == 0 and features == ref.features:
            return ref
        return BootPrediction(
            workload=ref.workload,
            features=features,
            cores=cores,
            boot_complete_ns=ref.boot_complete_ns + shift,
            kernel_ns=kernel_ns,
            init_init_ns=init_init_ns,
            load_units_ns=load_units_ns,
            submodules_ns=submodules_ns,
            services_ns=ref.services_ns,
            unit_started_ns={name: t + shift
                             for name, t in ref.unit_started_ns.items()},
            unit_ready_ns={name: t + shift
                           for name, t in ref.unit_ready_ns.items()},
            bb_group=ref.bb_group,
        )
