"""Plain-text table formatting for the experiment harness.

The benches print tables shaped like the paper's figures: rows of named
measurements with a "No BB" column, a "BB" column, and the saving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.quantities import to_msec


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    table = [list(map(str, headers))] + [list(map(str, row)) for row in rows]
    widths = [max(len(row[col]) for row in table) for col in range(len(headers))]

    def render_row(row: list[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()

    lines = [render_row(table[0]),
             "  ".join("-" * width for width in widths)]
    lines.extend(render_row(row) for row in table[1:])
    return "\n".join(lines)


@dataclass(slots=True)
class ComparisonTable:
    """A Fig. 6-style two-configuration comparison.

    Rows are added as nanosecond pairs and rendered in milliseconds with
    the absolute saving, e.g.::

        measurement          No BB      BB       saved
        -------------------  ---------  -------  -------
        kernel init          698.0 ms   403.0 ms 295.0 ms
    """

    title: str
    baseline_label: str = "No BB"
    improved_label: str = "BB"
    rows: list[tuple[str, int, int]] = field(default_factory=list)

    def add(self, name: str, baseline_ns: int, improved_ns: int) -> None:
        """Add one measurement pair."""
        self.rows.append((name, baseline_ns, improved_ns))

    def saving_ns(self, name: str) -> int:
        """Saving of one named row.

        Raises:
            KeyError: If no row has that name.
        """
        for row_name, baseline, improved in self.rows:
            if row_name == name:
                return baseline - improved
        raise KeyError(f"no row named {name!r}")

    def render(self) -> str:
        """The full table as text."""
        body = [(name,
                 f"{to_msec(baseline):.1f} ms",
                 f"{to_msec(improved):.1f} ms",
                 f"{to_msec(baseline - improved):+.1f} ms"[1:]
                 if baseline >= improved else
                 f"-{to_msec(improved - baseline):.1f} ms")
                for name, baseline, improved in self.rows]
        table = format_table(
            ["measurement", self.baseline_label, self.improved_label, "saved"],
            body)
        return f"{self.title}\n{table}"
