"""Schema validation for exported documents.

The repo exports two machine-readable document kinds — Chrome trace-event
JSON (consumed by Perfetto) and boot-report JSON (consumed by external
tooling and CI baselines).  Both formats are contracts: a malformed trace
silently renders as an empty Perfetto timeline, and a drifted report key
silently breaks downstream dashboards.  These validators check every
export against its published shape and raise
:class:`~repro.errors.SchemaError` on the first deviation, so drift is a
test failure rather than a downstream mystery.

Validation is structural (required keys, value types, value ranges) and
dependency-free — deliberately not ``jsonschema``, which the container
may not ship.
"""

from __future__ import annotations

from typing import Any

from repro.errors import SchemaError

#: Event phases the exporter is allowed to emit.
TRACE_PHASES = frozenset({"X", "i", "M"})

#: Metadata record names Chrome understands.
_METADATA_NAMES = frozenset({"process_name", "thread_name"})

#: Exact top-level key set of a boot-report dictionary.
REPORT_KEYS = frozenset({
    "workload", "features", "stages_ns", "kernel_timings_ns",
    "boot_complete_ns", "all_done_ns", "bb_group", "rcu", "cpu_busy_ns",
    "ignored_edges", "deferred_tasks", "unit_started_ns", "unit_ready_ns",
    "failed_units", "unsettled_units", "injected_faults", "deferred_failed",
    "unit_attempts", "recovery",
})

#: Exact key set of the recovery section (``report["recovery"]`` when the
#: boot ran under a BootSupervisor; ``None`` otherwise).
RECOVERY_KEYS = frozenset({
    "policy", "seed", "converged", "rung", "rungs", "total_recovery_ns",
    "restart_history", "masked_units", "snapshot",
})

#: Exact key set of one per-rung attempt record in ``recovery["rungs"]``.
RECOVERY_RUNG_KEYS = frozenset({
    "rung", "outcome", "boot_ns", "failed_units",
})

#: Outcomes a ladder rung may report.
RECOVERY_OUTCOMES = frozenset({
    "completed", "degraded", "failed", "wedged", "skipped", "regressed",
})

#: Exact key set of one stored boot-entry generation document
#: (:mod:`repro.generations` object files and wire payloads).
GENERATION_KEYS = frozenset({
    "label", "workload", "features", "cores", "fault",
    "max_boot_attempts", "regression_threshold", "parent", "notes",
})

#: Exact key set of a generation's optional fault section.
GENERATION_FAULT_KEYS = frozenset({"preset", "seed"})

_STAGE_KEYS = frozenset({"kernel", "init_init", "services"})
_KERNEL_KEYS = frozenset({"bootloader", "meminit", "core", "initcalls",
                          "rootfs"})
_RCU_KEYS = frozenset({"sync_count", "spin_ns", "wall_ns"})


def _fail(where: str, problem: str) -> None:
    raise SchemaError(f"{where}: {problem}")


# ------------------------------------------------------------ chrome trace

def validate_trace_event(event: Any, index: int) -> None:
    """Validate one trace-event record; raise :class:`SchemaError`."""
    where = f"traceEvents[{index}]"
    if not isinstance(event, dict):
        _fail(where, f"expected an object, got {type(event).__name__}")
    for key in ("name", "ph", "pid", "tid"):
        if key not in event:
            _fail(where, f"missing required key {key!r}")
    if not isinstance(event["name"], str) or not event["name"]:
        _fail(where, "name must be a non-empty string")
    phase = event["ph"]
    if phase not in TRACE_PHASES:
        _fail(where, f"unknown phase {phase!r} (allowed: "
                     f"{', '.join(sorted(TRACE_PHASES))})")
    for key in ("pid", "tid"):
        if not isinstance(event[key], int) or event[key] < 0:
            _fail(where, f"{key} must be a non-negative integer, "
                         f"got {event[key]!r}")
    if phase == "M":
        if event["name"] not in _METADATA_NAMES:
            _fail(where, f"metadata record {event['name']!r} is not one of "
                         f"{', '.join(sorted(_METADATA_NAMES))}")
        args = event.get("args")
        if not isinstance(args, dict) or not isinstance(args.get("name"), str):
            _fail(where, "metadata args.name must be a string")
        return
    ts = event.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
        _fail(where, f"ts must be a non-negative number, got {ts!r}")
    if phase == "X":
        dur = event.get("dur")
        if (not isinstance(dur, (int, float)) or isinstance(dur, bool)
                or dur < 0):
            _fail(where, f"complete event dur must be a non-negative "
                         f"number, got {dur!r}")
        if "cat" in event and not isinstance(event["cat"], str):
            _fail(where, "cat must be a string")
    elif phase == "i":
        if event.get("s") not in (None, "g", "p", "t"):
            _fail(where, f"instant scope must be g/p/t, got {event.get('s')!r}")


def validate_trace_events(events: Any) -> None:
    """Validate a trace-event list; raise :class:`SchemaError`.

    Beyond per-event shape this checks document-level coherence: the
    process-name metadata record exists, and every (pid, tid) a span or
    instant lands on was named by a ``thread_name`` record — an unnamed
    track is how a category typo shows up in Perfetto.
    """
    if not isinstance(events, list):
        _fail("traceEvents", f"expected a list, got {type(events).__name__}")
    named_tracks: set[tuple[int, int]] = set()
    saw_process_name = False
    for index, event in enumerate(events):
        validate_trace_event(event, index)
        if event["ph"] == "M":
            if event["name"] == "process_name":
                saw_process_name = True
            else:
                named_tracks.add((event["pid"], event["tid"]))
    if not saw_process_name:
        _fail("traceEvents", "no process_name metadata record")
    for index, event in enumerate(events):
        if event["ph"] == "M":
            continue
        track = (event["pid"], event["tid"])
        if track not in named_tracks:
            _fail(f"traceEvents[{index}]",
                  f"event {event['name']!r} lands on unnamed track "
                  f"pid={track[0]} tid={track[1]}")


def validate_chrome_trace(document: Any) -> None:
    """Validate a full Chrome trace document; raise :class:`SchemaError`."""
    if not isinstance(document, dict):
        _fail("trace", f"expected an object, got {type(document).__name__}")
    if "traceEvents" not in document:
        _fail("trace", "missing traceEvents")
    unit = document.get("displayTimeUnit", "ms")
    if unit not in ("ms", "ns"):
        _fail("trace", f"displayTimeUnit must be 'ms' or 'ns', got {unit!r}")
    validate_trace_events(document["traceEvents"])


# ------------------------------------------------------------- boot report

def _require_int(document: dict, key: str, where: str,
                 minimum: int = 0) -> None:
    value = document.get(key)
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        _fail(where, f"{key} must be an integer >= {minimum}, got {value!r}")


def _require_str_list(value: Any, where: str) -> None:
    if not isinstance(value, list) or any(not isinstance(item, str)
                                          for item in value):
        _fail(where, f"expected a list of strings, got {value!r}")


def _require_ns_map(value: Any, where: str) -> None:
    if not isinstance(value, dict):
        _fail(where, f"expected an object, got {type(value).__name__}")
    for name, ns in value.items():
        if not isinstance(name, str):
            _fail(where, f"non-string unit name {name!r}")
        if not isinstance(ns, int) or isinstance(ns, bool) or ns < 0:
            _fail(where, f"{name}: timestamp must be an integer >= 0, "
                         f"got {ns!r}")


def validate_recovery_dict(document: Any) -> None:
    """Validate a recovery section; raise :class:`SchemaError`.

    Like the report itself, the key set must match :data:`RECOVERY_KEYS`
    exactly so supervisor and schema cannot drift apart silently.
    """
    where = "report.recovery"
    if not isinstance(document, dict):
        _fail(where, f"expected an object, got {type(document).__name__}")
    keys = set(document)
    if keys != RECOVERY_KEYS:
        missing = sorted(RECOVERY_KEYS - keys)
        extra = sorted(keys - RECOVERY_KEYS)
        problems = []
        if missing:
            problems.append(f"missing keys: {', '.join(missing)}")
        if extra:
            problems.append(f"unexpected keys: {', '.join(extra)}")
        _fail(where, "; ".join(problems))
    if not isinstance(document["policy"], str) or not document["policy"]:
        _fail(where, "policy must be a non-empty string")
    _require_int(document, "seed", where)
    _require_int(document, "total_recovery_ns", where)
    if not isinstance(document["converged"], bool):
        _fail(where, f"converged must be a bool, got "
                     f"{document['converged']!r}")
    rung = document["rung"]
    if rung is not None and (not isinstance(rung, str) or not rung):
        _fail(where, f"rung must be null or a non-empty string, got {rung!r}")
    if document["converged"] and rung is None:
        _fail(where, "a converged recovery must name its rung")
    _require_str_list(document["masked_units"], f"{where}.masked_units")
    rungs = document["rungs"]
    if not isinstance(rungs, list) or not rungs:
        _fail(f"{where}.rungs", f"expected a non-empty list, got {rungs!r}")
    for index, record in enumerate(rungs):
        rung_where = f"{where}.rungs[{index}]"
        if not isinstance(record, dict) or set(record) != RECOVERY_RUNG_KEYS:
            _fail(rung_where, f"expected keys "
                              f"{{{', '.join(sorted(RECOVERY_RUNG_KEYS))}}}, "
                              f"got {record!r}")
        if not isinstance(record["rung"], str) or not record["rung"]:
            _fail(rung_where, "rung must be a non-empty string")
        if record["outcome"] not in RECOVERY_OUTCOMES:
            _fail(rung_where, f"unknown outcome {record['outcome']!r} "
                              f"(allowed: "
                              f"{', '.join(sorted(RECOVERY_OUTCOMES))})")
        _require_int(record, "boot_ns", rung_where)
        _require_str_list(record["failed_units"], f"{rung_where}.failed_units")
    history = document["restart_history"]
    if not isinstance(history, dict):
        _fail(f"{where}.restart_history",
              f"expected an object, got {history!r}")
    for unit, entry in history.items():
        entry_where = f"{where}.restart_history[{unit!r}]"
        if not isinstance(unit, str):
            _fail(entry_where, "non-string unit name")
        if (not isinstance(entry, dict)
                or set(entry) != {"attempts", "delays_ns"}):
            _fail(entry_where, f"expected keys {{attempts, delays_ns}}, "
                               f"got {entry!r}")
        _require_int(entry, "attempts", entry_where, minimum=1)
        delays = entry["delays_ns"]
        if not isinstance(delays, list) or any(
                not isinstance(d, int) or isinstance(d, bool) or d < 0
                for d in delays):
            _fail(entry_where, f"delays_ns must be a list of integers >= 0, "
                               f"got {delays!r}")
    snapshot = document["snapshot"]
    if snapshot is not None:
        snap_where = f"{where}.snapshot"
        if (not isinstance(snapshot, dict)
                or set(snapshot) != {"intact", "verify_ns", "restore_ns"}):
            _fail(snap_where, f"expected keys {{intact, verify_ns, "
                              f"restore_ns}}, got {snapshot!r}")
        if not isinstance(snapshot["intact"], bool):
            _fail(snap_where, f"intact must be a bool, got "
                              f"{snapshot['intact']!r}")
        for key in ("verify_ns", "restore_ns"):
            _require_int(snapshot, key, snap_where)


def validate_report_dict(document: Any) -> None:
    """Validate an exported boot-report dictionary; raise :class:`SchemaError`.

    The key set must match :data:`REPORT_KEYS` *exactly* — a missing key
    breaks consumers, and an extra key means the exporter and this schema
    have drifted apart (update both together).
    """
    if not isinstance(document, dict):
        _fail("report", f"expected an object, got {type(document).__name__}")
    keys = set(document)
    if keys != REPORT_KEYS:
        missing = sorted(REPORT_KEYS - keys)
        extra = sorted(keys - REPORT_KEYS)
        problems = []
        if missing:
            problems.append(f"missing keys: {', '.join(missing)}")
        if extra:
            problems.append(f"unexpected keys: {', '.join(extra)}")
        _fail("report", "; ".join(problems))
    if not isinstance(document["workload"], str) or not document["workload"]:
        _fail("report", "workload must be a non-empty string")
    _require_str_list(document["features"], "report.features")
    for section, expected in (("stages_ns", _STAGE_KEYS),
                              ("kernel_timings_ns", _KERNEL_KEYS),
                              ("rcu", _RCU_KEYS)):
        value = document[section]
        if not isinstance(value, dict) or set(value) != expected:
            _fail(f"report.{section}",
                  f"expected keys {{{', '.join(sorted(expected))}}}, "
                  f"got {value!r}")
        for key in expected:
            _require_int(value, key, f"report.{section}")
    for key in ("boot_complete_ns", "all_done_ns", "cpu_busy_ns",
                "ignored_edges"):
        _require_int(document, key, "report")
    if document["all_done_ns"] < document["boot_complete_ns"]:
        _fail("report", f"all_done_ns {document['all_done_ns']} precedes "
                        f"boot_complete_ns {document['boot_complete_ns']}")
    for key in ("bb_group", "deferred_tasks", "unsettled_units",
                "deferred_failed"):
        _require_str_list(document[key], f"report.{key}")
    for key in ("unit_started_ns", "unit_ready_ns"):
        _require_ns_map(document[key], f"report.{key}")
    attempts = document["unit_attempts"]
    if not isinstance(attempts, dict):
        _fail("report.unit_attempts",
              f"expected an object, got {type(attempts).__name__}")
    for name, count in attempts.items():
        if (not isinstance(name, str) or not isinstance(count, int)
                or isinstance(count, bool) or count < 1):
            _fail("report.unit_attempts",
                  f"{name!r}: {count!r} is not a string -> positive count "
                  f"entry")
    if document["recovery"] is not None:
        validate_recovery_dict(document["recovery"])
    for key in ("failed_units", "injected_faults"):
        value = document[key]
        if not isinstance(value, dict):
            _fail(f"report.{key}", f"expected an object, got {value!r}")
    for name, reason in document["failed_units"].items():
        if not isinstance(name, str) or not isinstance(reason, str):
            _fail("report.failed_units", f"{name!r}: {reason!r} is not a "
                                         f"string -> string entry")
    for name, count in document["injected_faults"].items():
        if (not isinstance(name, str) or not isinstance(count, int)
                or isinstance(count, bool) or count < 0):
            _fail("report.injected_faults",
                  f"{name!r}: {count!r} is not a string -> count entry")
    # Every started unit that became ready did so no earlier than it
    # started — the cheapest cross-field sanity the schema can enforce.
    started = document["unit_started_ns"]
    for name, ready_ns in document["unit_ready_ns"].items():
        if name in started and ready_ns < started[name]:
            _fail("report.unit_ready_ns",
                  f"{name} ready at {ready_ns} before start "
                  f"at {started[name]}")


# -------------------------------------------------------------- generations

def validate_generation_dict(document: Any,
                             where: str = "generation") -> None:
    """Validate a boot-entry generation document; raise :class:`SchemaError`.

    Generations are content-addressed: the same canonical JSON bytes that
    this validator accepts are what :mod:`repro.generations` fingerprints
    and stores, so a document that drifts from :data:`GENERATION_KEYS` is
    rejected before it can poison a store or a wire payload.
    """
    if not isinstance(document, dict):
        _fail(where, f"expected an object, got {type(document).__name__}")
    keys = set(document)
    if keys != GENERATION_KEYS:
        missing = sorted(GENERATION_KEYS - keys)
        extra = sorted(keys - GENERATION_KEYS)
        problems = []
        if missing:
            problems.append(f"missing keys: {', '.join(missing)}")
        if extra:
            problems.append(f"unexpected keys: {', '.join(extra)}")
        _fail(where, "; ".join(problems))
    for key in ("label", "workload"):
        if not isinstance(document[key], str) or not document[key]:
            _fail(where, f"{key} must be a non-empty string, "
                         f"got {document[key]!r}")
    features = document["features"]
    _require_str_list(features, f"{where}.features")
    if features != sorted(set(features)):
        _fail(f"{where}.features",
              f"must be sorted and duplicate-free, got {features!r}")
    cores = document["cores"]
    if cores is not None and (not isinstance(cores, int)
                              or isinstance(cores, bool) or cores < 1):
        _fail(where, f"cores must be null or an integer >= 1, got {cores!r}")
    fault = document["fault"]
    if fault is not None:
        fault_where = f"{where}.fault"
        if not isinstance(fault, dict) or set(fault) != GENERATION_FAULT_KEYS:
            _fail(fault_where, f"expected keys {{preset, seed}}, "
                               f"got {fault!r}")
        if not isinstance(fault["preset"], str) or not fault["preset"]:
            _fail(fault_where, "preset must be a non-empty string")
        _require_int(fault, "seed", fault_where)
    _require_int(document, "max_boot_attempts", where, minimum=1)
    threshold = document["regression_threshold"]
    if (not isinstance(threshold, (int, float)) or isinstance(threshold, bool)
            or threshold < 1.0):
        _fail(where, f"regression_threshold must be a number >= 1.0, "
                     f"got {threshold!r}")
    parent = document["parent"]
    if parent is not None and (
            not isinstance(parent, str) or len(parent) != 64
            or any(c not in "0123456789abcdef" for c in parent)):
        _fail(where, f"parent must be null or a 64-char lowercase hex "
                     f"fingerprint, got {parent!r}")
    if not isinstance(document["notes"], str):
        _fail(where, f"notes must be a string, got {document['notes']!r}")
