"""Bootchart recording and rendering (the systemd-bootchart substitute).

The paper presents Figures 5(a) and 7 as systemd-bootchart graphs: time on
the x-axis, services stacked on the y-axis, a bar from each service's
launch to its readiness.  :class:`~repro.bootchart.recorder.BootChart`
extracts the same data from a finished simulation's tracer, and
:mod:`repro.bootchart.render` draws it as ASCII art (for terminals and the
experiment logs) or SVG (for reports).
"""

from repro.bootchart.recorder import BootChart, ChartBar
from repro.bootchart.render import render_ascii, render_svg

__all__ = ["BootChart", "ChartBar", "render_ascii", "render_svg"]
