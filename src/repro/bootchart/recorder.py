"""Extracting bootchart data from a simulation trace."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import AnalysisError

if TYPE_CHECKING:
    from repro.sim.tracing import Tracer


@dataclass(frozen=True, slots=True)
class ChartBar:
    """One service's row on the chart.

    Attributes:
        name: Unit name.
        start_ns: When its start job began running.
        ready_ns: When it became active (bar body end), or ``None``.
        end_ns: When its start job fully finished.
    """

    name: str
    start_ns: int
    ready_ns: int | None
    end_ns: int


class BootChart:
    """Per-service launch timeline of one boot."""

    def __init__(self, bars: list[ChartBar], boot_complete_ns: int | None = None):
        if not bars:
            raise AnalysisError("bootchart needs at least one bar")
        self.bars = sorted(bars, key=lambda b: (b.start_ns, b.name))
        self.boot_complete_ns = boot_complete_ns

    @classmethod
    def from_tracer(cls, tracer: "Tracer",
                    category: str = "service") -> "BootChart":
        """Build a chart from the closed spans of a finished simulation."""
        bars = []
        for span in tracer.spans_in(category):
            if not span.closed:
                continue
            bars.append(ChartBar(name=span.name, start_ns=span.start_ns,
                                 ready_ns=span.end_ns, end_ns=span.end_ns))
        complete = None
        try:
            complete = tracer.find_instant("boot.complete").time_ns
        except KeyError:
            pass
        return cls(bars, boot_complete_ns=complete)

    @classmethod
    def from_report(cls, report) -> "BootChart":
        """Build a chart from a :class:`~repro.analysis.metrics.BootReport`."""
        bars = []
        for name, started in report.unit_started_ns.items():
            ready = report.unit_ready_ns.get(name)
            bars.append(ChartBar(name=name, start_ns=started, ready_ns=ready,
                                 end_ns=ready if ready is not None else started))
        return cls(bars, boot_complete_ns=report.boot_complete_ns)

    @property
    def span_ns(self) -> int:
        """Chart time extent."""
        last = max(b.end_ns for b in self.bars)
        if self.boot_complete_ns is not None:
            last = max(last, self.boot_complete_ns)
        return last

    def bar(self, name: str) -> ChartBar:
        """Row for one unit.

        Raises:
            AnalysisError: If the unit is not on the chart.
        """
        for bar in self.bars:
            if bar.name == name:
                return bar
        raise AnalysisError(f"no chart bar for {name!r}")

    def launched_before(self, t_ns: int) -> int:
        """Number of services launched by time ``t_ns`` (the Fig. 5(a)
        'more tasks are quickly launched in parallel' metric)."""
        return sum(1 for bar in self.bars if bar.start_ns <= t_ns)

    def ready_before(self, t_ns: int) -> int:
        """Number of services fully up by time ``t_ns``."""
        return sum(1 for bar in self.bars
                   if bar.ready_ns is not None and bar.ready_ns <= t_ns)
