"""ASCII and SVG bootchart rendering."""

from __future__ import annotations

from repro.bootchart.recorder import BootChart
from repro.quantities import to_msec


def render_ascii(chart: BootChart, width: int = 78,
                 max_rows: int | None = None, label_width: int = 24) -> str:
    """Draw the chart as fixed-width text.

    Each row is ``name |   ███████   |``; ``#`` marks the launch-to-ready
    bar, ``|`` at the top axis marks boot completion.
    """
    span = max(1, chart.span_ns)
    plot_width = max(10, width - label_width - 2)

    def column(t_ns: int) -> int:
        return min(plot_width - 1, t_ns * plot_width // span)

    lines = []
    header = " " * label_width + f"0 ms {'-' * (plot_width - 14)} "
    header += f"{to_msec(span):.0f} ms"
    lines.append(header)
    if chart.boot_complete_ns is not None:
        marker = [" "] * plot_width
        marker[column(chart.boot_complete_ns)] = "V"
        lines.append(" " * label_width + "".join(marker) + "  <- boot complete")
    bars = chart.bars if max_rows is None else chart.bars[:max_rows]
    for bar in bars:
        row = ["."] * plot_width
        start_col = column(bar.start_ns)
        end_col = column(bar.end_ns)
        for col in range(start_col, max(start_col + 1, end_col + 1)):
            row[col] = "#"
        label = bar.name[:label_width - 1].ljust(label_width)
        lines.append(label + "".join(row))
    if max_rows is not None and len(chart.bars) > max_rows:
        lines.append(f"... {len(chart.bars) - max_rows} more services")
    return "\n".join(lines)


def render_svg(chart: BootChart, width: int = 900, row_height: int = 14,
               label_width: int = 180) -> str:
    """Draw the chart as a standalone SVG document."""
    span = max(1, chart.span_ns)
    plot_width = width - label_width - 20
    height = (len(chart.bars) + 2) * row_height + 30

    def x(t_ns: int) -> float:
        return label_width + t_ns * plot_width / span

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="10">',
        f'<text x="{label_width}" y="12">0 ms</text>',
        f'<text x="{width - 60}" y="12">{to_msec(span):.0f} ms</text>',
    ]
    if chart.boot_complete_ns is not None:
        cx = x(chart.boot_complete_ns)
        parts.append(f'<line x1="{cx:.1f}" y1="16" x2="{cx:.1f}" '
                     f'y2="{height - 4}" stroke="red" stroke-dasharray="4 3"/>')
        parts.append(f'<text x="{cx + 3:.1f}" y="26" fill="red">boot complete '
                     f'({to_msec(chart.boot_complete_ns):.0f} ms)</text>')
    for index, bar in enumerate(chart.bars):
        y = 30 + index * row_height
        bar_x = x(bar.start_ns)
        bar_w = max(1.0, x(bar.end_ns) - bar_x)
        parts.append(f'<text x="4" y="{y + row_height - 4}">{bar.name}</text>')
        parts.append(f'<rect x="{bar_x:.1f}" y="{y + 2}" width="{bar_w:.1f}" '
                     f'height="{row_height - 4}" fill="#4a90d9"/>')
    parts.append("</svg>")
    return "\n".join(parts)
