"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``boot [--workload NAME] [--bb | --no-bb | --features a,b,c] [--cores N]
  [--faults PRESET] [--recover] [--branch]`` — run one simulated cold
  boot and print the stage breakdown; exit 0 clean, 3
  degraded/recovered-degraded, 1 unrecoverable; ``--branch`` routes the
  boot through the checkpoint/fork sweep runner (identical output),
* ``recover [PRESET] [--seed N] [--smoke] [--json] [--branch]`` — run
  the boot-recovery escalation ladder: one supervised run for a named
  fault preset, or the recovery matrix (``--smoke`` for the CI subset),
* ``experiment <id> | all [--jobs N] [--cache-dir DIR] [--branch]`` —
  run an evaluation experiment and print the regenerated artifact
  (``experiment list`` shows the ids); sweeps are deduplicated, cached,
  optionally checkpoint/fork-branched, and fanned out over ``N`` worker
  processes,
* ``faults [PRESET] [--seed N] [--no-bb] [--list-presets]`` — boot under
  a named fault preset and print the (possibly degraded) outcome,
* ``bench [--jobs N] [--out FILE] [--branch-floor X] [--fleet-floor X]``
  — engine/cache microbenchmarks + checkpoint/fork benchmark +
  serial-vs-parallel sweep benchmark + fleet-campaign benchmark,
  recorded to ``BENCH_runner.json``; nonzero exit if branched/fleet
  results are not identical to from-scratch runs or a speedup/throughput
  lands below its committed floor,
* ``fleet serve|submit|status|campaign`` — the long-running async boot
  service (:mod:`repro.fleet`): ``serve`` starts the TCP/JSON-lines
  service (SIGTERM drains gracefully), ``submit`` streams jobs to a
  running service, ``status`` prints its snapshot, and ``campaign``
  runs the 10k+-job fleet campaign against an in-process service with
  the fleet-vs-serial byte-identity check and a ``--throughput-floor``
  gate,
* ``bootchart [--workload NAME] [--bb] [--cores N] [--svg FILE]`` — boot
  and render the bootchart (ASCII to stdout, optionally SVG to a file),
* ``verify [--smoke] [--seed N] [--json]`` — run the verification
  harness: invariant-monitored boots, schedule-perturbation fuzzing and
  analytic oracles; nonzero exit on any violation,
* ``analyze [--workload NAME]`` — run the Service Analyzer,
* ``workloads`` — list the available workloads.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Callable, Sequence

from repro.analysis.report import format_table
from repro.bootchart import BootChart, render_ascii, render_svg
from repro.core import BBConfig, BootSimulation
from repro.graph.analyzer import ServiceAnalyzer
from repro.workloads import WORKLOAD_FACTORIES
from repro.workloads.base import Workload

#: CLI name -> workload factory (the shared registry; the fleet wire
#: protocol resolves the same names).
WORKLOADS: dict[str, Callable[[], Workload]] = WORKLOAD_FACTORIES


def _resolve_jobs(value: int | None) -> int:
    """Shared ``--jobs``/worker-count validation for every subcommand.

    ``None`` defaults to the CPU count; anything below 1 exits with the
    scheduler layer's error message instead of a silent clamp.
    """
    from repro.errors import ConfigurationError
    from repro.runner.schedule import resolve_worker_count

    try:
        return resolve_worker_count(value)
    except ConfigurationError as exc:
        raise SystemExit(str(exc))


def _experiments() -> dict[str, tuple]:
    from repro.experiments import (ablations, background, boot_modes,
                                   design_space, fault_matrix,
                                   fig1_boot_sequence, fig2_dependency_graph,
                                   fig3_complexity, fig5_rcu_bootchart,
                                   fig6_breakdown, fig7_bbgroup_dbus,
                                   generation_rollout, kernel_opt,
                                   portability, prestart, recovery_matrix,
                                   scaling, socket_activation, tradeoff,
                                   variance)
    return {
        "portability": (portability.run, portability.render),
        "scaling": (scaling.run, scaling.render),
        "boot-modes": (boot_modes.run, boot_modes.render),
        "sockets": (socket_activation.run, socket_activation.render),
        "fig1": (fig1_boot_sequence.run, fig1_boot_sequence.render),
        "fig2": (fig2_dependency_graph.run, fig2_dependency_graph.render),
        "fig3": (fig3_complexity.run, fig3_complexity.render),
        "fig5": (fig5_rcu_bootchart.run, fig5_rcu_bootchart.render),
        "fig6": (fig6_breakdown.run, fig6_breakdown.render),
        "fig7": (fig7_bbgroup_dbus.run, fig7_bbgroup_dbus.render),
        "tradeoff": (tradeoff.run, tradeoff.render),
        "kernel-opt": (kernel_opt.run, kernel_opt.render),
        "background": (background.run, background.render),
        "variance": (variance.run, variance.render),
        "prestart": (prestart.run, prestart.render),
        "ablations": (ablations.run, ablations.render),
        "fault-matrix": (fault_matrix.run, fault_matrix.render),
        "recovery-matrix": (recovery_matrix.run, recovery_matrix.render),
        "design-space": (design_space.run, design_space.render),
        "generation-rollout": (generation_rollout.run,
                               generation_rollout.render),
    }


def _resolve_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]()
    except KeyError:
        raise SystemExit(f"unknown workload {name!r}; "
                         f"choose from {', '.join(WORKLOADS)}")


def _resolve_config(args: argparse.Namespace) -> BBConfig:
    if getattr(args, "features", None):
        config = BBConfig.none()
        for feature in args.features.split(","):
            config = config.with_feature(feature.strip(), True)
        return config
    if getattr(args, "no_bb", False):
        return BBConfig.none()
    return BBConfig.full()


def _cmd_boot(args: argparse.Namespace) -> int:
    """Boot once (optionally faulted/supervised).

    Exit codes: 0 — clean boot; 3 — boot completed degraded or recovery
    converged with losses; 1 — the boot could not reach completion.
    """
    from repro.core.degraded import DegradedBootError

    workload = _resolve_workload(args.workload)
    config = _resolve_config(args)
    plan = None
    if args.faults:
        from repro.faults import build_preset
        try:
            plan = build_preset(args.faults, seed=args.seed)
        except Exception as exc:
            raise SystemExit(str(exc))
    if args.recover:
        return _recover_once(workload, plan, label=args.faults or "healthy",
                             seed=args.seed, base_bb=config,
                             as_json=getattr(args, "json", False))
    if getattr(args, "branch", False):
        from repro.core.degraded import DegradedBootReport
        from repro.runner import SimJob, SweepRunner

        job = SimJob.boot(WORKLOADS[args.workload], bb=config,
                          cores=args.cores, fault_plan=plan)
        with SweepRunner(jobs=1, branch=True, min_branch_group=2) as runner:
            report = runner.run_one(job)
        if isinstance(report, DegradedBootReport):
            print(report.summary())
            return 1
    else:
        simulation = BootSimulation(workload, config, cores=args.cores,
                                    fault_plan=plan)
        try:
            report = simulation.run()
        except DegradedBootError as exc:
            print(exc.report.summary())
            return 1
    if getattr(args, "json", False):
        from repro.analysis.export import report_to_json
        print(report_to_json(report))
        return 3 if report.degraded else 0
    features = ", ".join(report.features) or "none (conventional boot)"
    print(f"workload: {report.workload}")
    print(f"BB features: {features}")
    rows = [
        ("(a) kernel initialization", f"{report.stages.kernel_ns / 1e6:.1f} ms"),
        ("(b) init initialization", f"{report.stages.init_init_ns / 1e6:.1f} ms"),
        ("(c)+(d) services & applications",
         f"{report.stages.services_ns / 1e6:.1f} ms"),
        ("boot completion", f"{report.boot_complete_ms:.1f} ms"),
        ("full quiescence (deferred work done)",
         f"{report.all_done_ns / 1e6:.1f} ms"),
    ]
    print(format_table(["stage", "time"], rows))
    if report.bb_group:
        print(f"BB Group: {', '.join(sorted(report.bb_group))}")
    if report.degraded:
        print("boot completed DEGRADED: "
              + ", ".join(sorted({*report.failed_units,
                                  *report.unsettled_units,
                                  *report.deferred_failed})))
        return 3
    return 0


def _recover_once(workload: Workload, plan, label: str, seed: int,
                  base_bb: BBConfig, as_json: bool) -> int:
    """Run one supervised recovery and map its outcome to an exit code."""
    from repro.recovery import BootSupervisor, RecoveryPolicy
    from repro.verify import InvariantMonitor

    policy = RecoveryPolicy(label=label, seed=seed, base_bb=base_bb)
    outcome = BootSupervisor(workload, policy, fault_plan=plan,
                             monitor=InvariantMonitor()).run()
    if as_json:
        if outcome.report is not None:
            from repro.analysis.export import report_to_json
            print(report_to_json(outcome.report))
        else:
            import json
            from repro.analysis.schema import validate_recovery_dict
            document = outcome.to_dict()
            validate_recovery_dict(document)
            print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(outcome.summary())
    return outcome.exit_code


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.runner import ResultCache, SweepRunner

    jobs = _resolve_jobs(args.jobs)  # validate even on the single-run path
    if args.preset is not None:
        from repro.faults import build_preset

        try:
            plan = build_preset(args.preset, seed=args.seed)
        except Exception as exc:
            raise SystemExit(str(exc))
        workload = _resolve_workload(args.workload)
        return _recover_once(workload, plan, label=args.preset,
                             seed=args.seed, base_bb=_resolve_config(args),
                             as_json=args.json)
    from repro.experiments import recovery_matrix

    with SweepRunner(jobs=jobs,
                     cache=ResultCache(args.cache_dir),
                     branch=getattr(args, "branch", False)) as runner:
        result = recovery_matrix.run(runner=runner, smoke=args.smoke)
    print(recovery_matrix.render(result))
    return 0 if result.all_converged else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.runner import ResultCache, SweepRunner

    experiments = _experiments()
    if args.id == "list":
        for name in experiments:
            print(name)
        return 0
    ids = list(experiments) if args.id == "all" else [args.id]
    for exp_id in ids:
        if exp_id not in experiments:
            raise SystemExit(f"unknown experiment {exp_id!r}; "
                             f"try 'experiment list'")
    if args.cache_dir is not None:
        import os
        try:
            os.makedirs(args.cache_dir, exist_ok=True)
        except OSError as exc:
            raise SystemExit(f"cannot use cache dir {args.cache_dir!r}: {exc}")
    # One shared runner across the whole invocation, so 'experiment all'
    # never boots the same (workload, config, cores) twice.
    with SweepRunner(jobs=_resolve_jobs(args.jobs),
                     cache=ResultCache(args.cache_dir),
                     branch=getattr(args, "branch", False)) as runner:
        for exp_id in ids:
            run, render = experiments[exp_id]
            params = inspect.signature(run).parameters
            kwargs = {}
            if "runner" in params:
                kwargs["runner"] = runner
            if getattr(args, "smoke", False) and "smoke" in params:
                kwargs["smoke"] = True
            print(render(run(**kwargs)))
            print()
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.core.degraded import DegradedBootError
    from repro.faults import PRESETS, build_preset

    if args.list_presets or args.preset is None:
        for name, builder in PRESETS.items():
            doc = (builder.__doc__ or "").strip().splitlines()[0]
            print(f"{name:16s} {doc}")
        return 0
    try:
        plan = build_preset(args.preset, seed=args.seed)
    except Exception as exc:
        raise SystemExit(str(exc))
    workload = _resolve_workload(args.workload)
    config = _resolve_config(args)
    print(plan.describe())
    simulation = BootSimulation(workload, config, cores=args.cores,
                                fault_plan=plan)
    try:
        report = simulation.run()
    except DegradedBootError as exc:
        print(exc.report.summary())
        tally = exc.report.injected_faults
        if tally:
            print("injected: " + ", ".join(
                f"{k}={v}" for k, v in sorted(tally.items()) if v))
        return 1
    state = "degraded" if report.degraded else "healthy"
    print(f"boot completed {state} at {report.boot_complete_ms:.1f} ms "
          f"(full quiescence {report.all_done_ns / 1e6:.1f} ms)")
    if report.failed_units:
        print("failed units: " + ", ".join(
            f"{name} ({reason})"
            for name, reason in sorted(report.failed_units.items())))
    if report.unsettled_units:
        print("never settled: " + ", ".join(report.unsettled_units))
    if report.deferred_failed:
        print("deferred tasks given up: " + ", ".join(report.deferred_failed))
    tally = {k: v for k, v in sorted(report.injected_faults.items()) if v}
    if tally:
        print("injected: " + ", ".join(f"{k}={v}" for k, v in tally.items()))
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    """Solve a boot analytically — no event loop, same numbers.

    Exit codes: 0 — predicted; 1 — the configuration is outside the
    predictor's model (e.g. the single-core priority-inversion livelock).
    """
    from repro.analysis.predict import predict
    from repro.errors import AnalysisError

    workload = _resolve_workload(args.workload)
    config = _resolve_config(args)
    try:
        prediction = predict(workload, config, cores=args.cores)
    except AnalysisError as exc:
        print(f"prediction failed: {exc}", file=sys.stderr)
        return 1
    if getattr(args, "json", False):
        import json
        document = {
            "workload": prediction.workload,
            "features": list(prediction.features),
            "cores": prediction.cores,
            "boot_complete_ns": prediction.boot_complete_ns,
            "kernel_ns": prediction.kernel_ns,
            "init_init_ns": prediction.init_init_ns,
            "load_units_ns": prediction.load_units_ns,
            "submodules_ns": prediction.submodules_ns,
            "services_ns": prediction.services_ns,
            "bb_group": sorted(prediction.bb_group),
            "unit_started_ns": dict(sorted(
                prediction.unit_started_ns.items())),
            "unit_ready_ns": dict(sorted(prediction.unit_ready_ns.items())),
        }
        print(json.dumps(document, indent=2))
        return 0
    features = ", ".join(prediction.features) or "none (conventional boot)"
    print(f"workload: {prediction.workload} (predicted, no simulation)")
    print(f"BB features: {features}")
    print(f"cores: {prediction.cores}")
    rows = [
        ("(a) kernel initialization", f"{prediction.kernel_ns / 1e6:.1f} ms"),
        ("(b) init initialization",
         f"{prediction.init_init_ns / 1e6:.1f} ms"),
        ("(c)+(d) services & applications",
         f"{prediction.services_ns / 1e6:.1f} ms"),
        ("boot completion", f"{prediction.boot_complete_ms:.1f} ms"),
    ]
    print(format_table(["stage", "predicted time"], rows))
    if prediction.bb_group:
        print(f"BB Group: {', '.join(sorted(prediction.bb_group))}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.runner.bench import build_record, write_record

    record = build_record(jobs=_resolve_jobs(args.jobs), events=args.events,
                          skip_sweep=args.skip_sweep,
                          cache_dir=args.cache_dir,
                          skip_checkpoint=args.skip_checkpoint,
                          checkpoint_cells=args.checkpoint_cells,
                          checkpoint_backend=args.checkpoint_backend,
                          skip_predict=args.skip_predict,
                          skip_fleet=args.skip_fleet)
    write_record(record, args.out)
    queue = record["event_queue"]
    print(f"event queue: {queue['optimized_events_per_sec']:,.0f} events/s "
          f"(legacy {queue['legacy_events_per_sec']:,.0f}, "
          f"speedup {queue['speedup']:.2f}x)")
    cache = record["cache"]
    print(f"result cache: {cache['optimized_roundtrips_per_sec']:,.0f} "
          f"roundtrips/s (legacy deepcopy "
          f"{cache['legacy_roundtrips_per_sec']:,.0f}, "
          f"speedup {cache['speedup']:.2f}x)")
    failed = False
    if "checkpoint" in record:
        checkpoint = record["checkpoint"]
        print(f"checkpoint: {checkpoint['cells']}-cell matrix, scratch "
              f"{checkpoint['scratch_wall_s']:.1f} s, branched "
              f"({checkpoint['backend']}) "
              f"{checkpoint['branched_wall_s']:.1f} s "
              f"(speedup {checkpoint['speedup']:.2f}x, outputs identical: "
              f"{checkpoint['outputs_identical']})")
        if not checkpoint["outputs_identical"]:
            print("FAIL: branched results differ from from-scratch runs")
            failed = True
        if args.branch_floor and checkpoint["speedup"] < args.branch_floor:
            print(f"FAIL: checkpoint speedup {checkpoint['speedup']:.2f}x "
                  f"below the committed floor {args.branch_floor:.2f}x")
            failed = True
    if "design_space" in record:
        sweep = record["design_space"]
        print(f"design space: {sweep['cells']} cells, pre-filtered "
              f"{sweep['prefilter_wall_s']:.1f} s "
              f"({sweep['des_boots']} DES boots), exhaustive DES "
              f"{sweep['exhaustive_wall_s']:.1f} s (speedup "
              f"{sweep['speedup']:.2f}x, frontier identical: "
              f"{sweep['frontier_identical']})")
        if not sweep["frontier_identical"]:
            print("FAIL: analytic frontier differs from the exhaustive "
                  "DES frontier")
            failed = True
        if args.predict_floor and sweep["speedup"] < args.predict_floor:
            print(f"FAIL: design-space speedup {sweep['speedup']:.2f}x "
                  f"below the committed floor {args.predict_floor:.2f}x")
            failed = True
    if "experiment_all" in record:
        sweep = record["experiment_all"]
        print(f"experiment all: serial {sweep['serial_wall_s']:.1f} s, "
              f"--jobs {sweep['jobs']} {sweep['parallel_wall_s']:.1f} s "
              f"(speedup {sweep['speedup']:.2f}x, outputs identical: "
              f"{sweep['outputs_identical']})")
        print(f"runner: {sweep['runner']['submitted']} submitted, "
              f"{sweep['runner']['deduplicated']} deduplicated, "
              f"{sweep['runner']['cache_hits']} cache hits, "
              f"{sweep['runner']['executed']} executed")
    if "fleet" in record:
        fleet = record["fleet"]
        print(f"fleet: {fleet['total_jobs']:,} jobs "
              f"({fleet['unique_jobs']} unique) streamed in "
              f"{fleet['wall_s']:.1f} s = {fleet['jobs_per_min']:,.0f} "
              f"jobs/min (peak {fleet['peak_workers']} workers, outputs "
              f"identical: {fleet['outputs_identical']})")
        if not fleet["outputs_identical"]:
            print("FAIL: fleet results differ from the serial replay")
            failed = True
        if args.fleet_floor and fleet["jobs_per_min"] < args.fleet_floor:
            print(f"FAIL: fleet throughput {fleet['jobs_per_min']:,.0f} "
                  f"jobs/min below the committed floor "
                  f"{args.fleet_floor:,.0f}")
            failed = True
    print(f"record written to {args.out}")
    return 1 if failed else 0


def _cmd_fleet_serve(args: argparse.Namespace) -> int:
    """Run the fleet service until SIGTERM/SIGINT drains it."""
    import asyncio

    from repro.errors import ConfigurationError
    from repro.fleet.resources import ResourcePolicy
    from repro.fleet.service import FleetService

    try:
        policy = ResourcePolicy(
            min_workers=args.min_workers,
            max_workers=_resolve_jobs(args.max_workers),
            max_rss_bytes=(args.max_rss_mb * 1024 * 1024
                           if args.max_rss_mb else None))
    except ValueError as exc:
        raise SystemExit(str(exc))
    chaos = None
    if args.chaos:
        import json

        from repro.faults.fleet import FleetFaultPlan

        try:
            document = json.loads(args.chaos)
        except ValueError as exc:
            raise SystemExit(f"--chaos is not valid JSON: {exc}")
        try:
            chaos = FleetFaultPlan.from_dict(document)
        except ConfigurationError as exc:
            raise SystemExit(f"--chaos: {exc}")

    async def _serve() -> None:
        service = FleetService(
            host=args.host, port=args.port, policy=policy,
            cache_dir=args.cache_dir,
            cache_max_bytes=(args.cache_max_mb * 1024 * 1024
                             if args.cache_max_mb else None),
            branch=args.branch, batch_size=args.batch_size,
            journal_dir=args.journal,
            journal_checkpoint_every=args.journal_checkpoint_every,
            max_job_retries=args.max_job_retries, chaos=chaos)
        host, port = await service.start()
        service.install_signal_handlers()
        journal_note = (f", journal {args.journal}" if args.journal else "")
        chaos_note = (f", chaos {chaos.describe()}"
                      if chaos is not None and not chaos.empty else "")
        print(f"fleet service listening on {host}:{port} "
              f"(workers {policy.min_workers}..{policy.max_workers}, "
              f"SIGTERM drains gracefully{journal_note}{chaos_note})",
              flush=True)
        await service.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass  # the drain already ran via the signal handler
    print("fleet service drained")
    return 0


def _cmd_fleet_submit(args: argparse.Namespace) -> int:
    """Submit jobs to a running service; stream and summarize results."""
    import json

    from repro.errors import FleetError
    from repro.fleet.client import submit_sync

    if args.spec_file:
        with open(args.spec_file) as handle:
            specs = json.load(handle)
        if not isinstance(specs, list) or not specs:
            raise SystemExit(f"{args.spec_file}: expected a non-empty "
                             f"JSON list of job specs")
    else:
        spec: dict = {"kind": "recover" if args.recover else "boot",
                      "workload": args.workload, "repeat": args.repeat}
        if args.features:
            spec["bb"] = [f.strip() for f in args.features.split(",")]
        elif args.no_bb:
            spec["bb"] = "none"
        if args.cores is not None:
            spec["cores"] = args.cores
        if args.faults:
            spec["fault"] = {"preset": args.faults, "seed": args.seed}
        specs = [spec]
    try:
        outcome = submit_sync(args.host, args.port, specs,
                              priority=args.priority)
    except FleetError as exc:
        raise SystemExit(f"cannot reach a fleet service at "
                         f"{args.host}:{args.port}: {exc}")
    if args.verbose:
        for index, summary in enumerate(outcome.summaries):
            error = outcome.errors.get(index)
            state = "cached" if outcome.cached[index] else "ran"
            if error is not None:
                print(f"  [{index}] ERROR: {error}")
            else:
                boot_ms = summary.get("boot_ms")
                timing = f" {boot_ms:.1f} ms" if boot_ms is not None else ""
                print(f"  [{index}] {summary.get('type', '?')}{timing} "
                      f"({state})")
    cached = sum(outcome.cached)
    print(f"{len(outcome.payloads)}/{outcome.total} jobs delivered in "
          f"{outcome.elapsed_s:.2f} s ({cached} cached, "
          f"{len(outcome.errors)} errors)")
    return 0 if outcome.ok else 1


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    import json

    from repro.errors import FleetError
    from repro.fleet.client import status_sync

    try:
        snapshot = status_sync(args.host, args.port)
    except FleetError as exc:
        raise SystemExit(f"cannot reach a fleet service at "
                         f"{args.host}:{args.port}: {exc}")
    snapshot.pop("event", None)
    print(json.dumps(snapshot, indent=2, sort_keys=True))
    return 0


def _cmd_fleet_campaign(args: argparse.Namespace) -> int:
    from repro.errors import FleetError
    from repro.fleet import campaign
    from repro.fleet.client import RetryPolicy

    if args.host is not None:
        retry = RetryPolicy(retries=args.retries,
                            backoff_base=args.backoff_base,
                            seed=args.retry_seed)
        try:
            result = campaign.run_external(
                args.host, args.port, smoke=args.smoke,
                total_jobs=args.total_jobs,
                cells_per_chunk=args.chunk_cells, retry=retry,
                read_timeout=args.read_timeout)
        except FleetError as exc:
            raise SystemExit(f"campaign against {args.host}:{args.port} "
                             f"failed: {exc}")
    else:
        result = campaign.run(smoke=args.smoke, total_jobs=args.total_jobs,
                              max_workers=_resolve_jobs(args.max_workers),
                              batch_size=args.batch_size,
                              journal_dir=args.journal)
    if args.json:
        import json
        document = {key: getattr(result, key) for key in (
            "total_jobs", "unique_jobs", "executed", "cache_hits",
            "coalesced", "wall_s", "jobs_per_min", "serial_wall_s",
            "peak_workers", "scaled_up", "scaled_down", "identical",
            "mismatches", "smoke", "provenance", "resumed_jobs",
            "client_retries", "requeued", "quarantined")}
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(campaign.render(result))
    failed = False
    if not result.identical:
        print("FAIL: fleet results differ from the serial replay")
        failed = True
    if (args.throughput_floor
            and result.jobs_per_min < args.throughput_floor):
        print(f"FAIL: fleet throughput {result.jobs_per_min:,.0f} jobs/min "
              f"below the committed floor {args.throughput_floor:,.0f}")
        failed = True
    return 1 if failed else 0


def _open_generation_store(path: str):
    from repro.generations import GenerationStore

    store = GenerationStore(path)
    if not store.initialized:
        raise SystemExit(f"no generation store at {path} "
                         f"(run 'repro generations init' first)")
    return store


def _cmd_generations_init(args: argparse.Namespace) -> int:
    from repro.errors import GenerationError
    from repro.generations import GenerationStore

    try:
        GenerationStore.init(args.store)
    except GenerationError as exc:
        raise SystemExit(str(exc))
    print(f"initialized empty generation store at {args.store}")
    return 0


def _cmd_generations_commit(args: argparse.Namespace) -> int:
    from repro.errors import GenerationError
    from repro.generations import Generation

    store = _open_generation_store(args.store)
    if args.features:
        features = tuple(f.strip() for f in args.features.split(","))
    elif args.no_bb:
        features = ()
    else:
        features = tuple(BBConfig.full().enabled_features())
    fault = ((args.fault, args.fault_seed) if args.fault else None)
    try:
        generation = Generation(
            label=args.label, workload=args.workload, features=features,
            cores=args.cores, fault=fault,
            max_boot_attempts=args.max_boot_attempts,
            regression_threshold=args.threshold,
            parent=store.head(args.ref), notes=args.notes)
        fingerprint = store.commit(generation, ref=args.ref)
    except GenerationError as exc:
        raise SystemExit(str(exc))
    print(f"[{args.ref} {fingerprint[:12]}] {generation.label}")
    return 0


def _cmd_generations_log(args: argparse.Namespace) -> int:
    from repro.errors import GenerationError

    store = _open_generation_store(args.store)
    count = 0
    try:
        for generation in store.log(args.ref):
            fault = (f" fault={generation.fault[0]}#{generation.fault[1]}"
                     if generation.fault else "")
            features = ",".join(generation.features) or "none"
            print(f"{generation.fingerprint()[:12]} {generation.label:12s} "
                  f"{generation.workload}/{features}{fault}"
                  + (f"  # {generation.notes}" if generation.notes else ""))
            count += 1
    except GenerationError as exc:
        raise SystemExit(str(exc))
    if not count:
        print(f"ref {args.ref!r} has no generations")
    return 0


def _cmd_generations_diff(args: argparse.Namespace) -> int:
    from repro.errors import GenerationError
    from repro.generations import diff_generations

    store = _open_generation_store(args.store)
    try:
        if args.b is not None:
            new = store.get(store.resolve(args.b))
        else:
            head = store.head(args.ref)
            if head is None:
                raise SystemExit(f"ref {args.ref!r} has no generations")
            new = store.get(head)
        if args.a is not None:
            old = store.get(store.resolve(args.a))
        elif new.parent is not None:
            old = store.get(new.parent)
        else:
            raise SystemExit(f"{new.label!r} has no parent; name both "
                             f"generations to diff")
    except GenerationError as exc:
        raise SystemExit(str(exc))
    delta = diff_generations(old, new)
    if not delta:
        print(f"{old.label} and {new.label} are identical")
        return 0
    print(f"{old.label} ({old.fingerprint()[:12]}) -> "
          f"{new.label} ({new.fingerprint()[:12]})")
    rows = [(key, repr(entry["old"]), repr(entry["new"]))
            for key, entry in delta.items()]
    print(format_table(["field", "old", "new"], rows))
    return 0


def _cmd_generations_rollback(args: argparse.Namespace) -> int:
    from repro.errors import GenerationError

    store = _open_generation_store(args.store)
    try:
        popped = store.rollback(args.ref)
    except GenerationError as exc:
        raise SystemExit(str(exc))
    head = store.head(args.ref)
    target = f"{head[:12]}" if head else "(unborn)"
    print(f"rolled {args.ref!r} back from {popped.label} "
          f"({popped.fingerprint()[:12]}) to {target}")
    return 0


def _cmd_generations_rollout(args: argparse.Namespace) -> int:
    import tempfile

    from repro.errors import GenerationError
    from repro.generations import demo_store, render_rollout, run_rollout

    jobs = _resolve_jobs(args.jobs)

    def _run(store) -> dict:
        return run_rollout(
            store, target=args.target, baseline=args.baseline,
            devices=args.devices, waves=args.waves,
            update_seed=args.seed, flash_rate=args.flash_rate,
            corrupt_rate=args.corrupt_rate,
            halt_threshold=args.halt_threshold, jobs=jobs,
            use_fleet=args.fleet)

    try:
        if args.demo is not None:
            with tempfile.TemporaryDirectory() as tmp:
                report = _run(demo_store(tmp, args.demo))
        else:
            if args.store is None:
                raise SystemExit("name a store with --store, or use "
                                 "--demo clean|regressed|broken")
            report = _run(_open_generation_store(args.store))
    except GenerationError as exc:
        raise SystemExit(str(exc))
    if args.json:
        import json
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_rollout(report))
    if (args.expect_rollbacks is not None
            and report["rollbacks"] != args.expect_rollbacks):
        print(f"FAIL: expected exactly {args.expect_rollbacks} rollbacks, "
              f"observed {report['rollbacks']}")
        return 1
    return 0


def _cmd_bootchart(args: argparse.Namespace) -> int:
    workload = _resolve_workload(args.workload)
    config = _resolve_config(args)
    simulation = BootSimulation(workload, config, cores=args.cores)
    report = simulation.run()
    chart = BootChart.from_report(report)
    print(render_ascii(chart, max_rows=args.rows))
    if args.svg:
        with open(args.svg, "w") as handle:
            handle.write(render_svg(chart))
        print(f"SVG written to {args.svg}")
    if args.trace:
        from repro.analysis.chrome_trace import tracer_to_chrome_json
        with open(args.trace, "w") as handle:
            handle.write(tracer_to_chrome_json(simulation.sim.tracer))
        print(f"Chrome trace written to {args.trace} "
              "(open in https://ui.perfetto.dev)")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import run_verification

    try:
        report = run_verification(smoke=args.smoke, seed=args.seed,
                                  only=args.only)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.json:
        import json
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    workload = _resolve_workload(args.workload)
    report = ServiceAnalyzer(workload.fresh_registry()).analyze()
    print(report.summary())
    return 1 if report.has_errors else 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    for name, factory in WORKLOADS.items():
        workload = factory()
        registry = workload.fresh_registry()
        print(f"{name:14s} {workload.name:24s} {len(registry)} units, "
              f"completion: {', '.join(workload.completion_units)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BB (Booting Booster, EuroSys 2016) boot-stack simulator")
    sub = parser.add_subparsers(dest="command", required=True)

    boot = sub.add_parser("boot", help="run one simulated cold boot")
    boot.add_argument("--workload", default="tv", help="workload name")
    boot.add_argument("--no-bb", action="store_true",
                      help="conventional boot (default is full BB)")
    boot.add_argument("--features", help="comma-separated BB feature list")
    boot.add_argument("--cores", type=int, default=None,
                      help="override the platform core count")
    boot.add_argument("--json", action="store_true",
                      help="emit the full boot report as JSON")
    boot.add_argument("--faults", metavar="PRESET",
                      help="boot under a named fault preset")
    boot.add_argument("--seed", type=int, default=1,
                      help="fault/recovery seed (default 1)")
    boot.add_argument("--recover", action="store_true",
                      help="supervise the boot with the recovery ladder; "
                           "exit 0 clean, 3 recovered-degraded, "
                           "1 unrecoverable")
    boot.add_argument("--branch", action=argparse.BooleanOptionalAction,
                      default=False,
                      help="route the boot through the checkpoint/fork "
                           "sweep runner (identical output)")
    boot.set_defaults(fn=_cmd_boot)

    recover = sub.add_parser(
        "recover", help="run the boot-recovery escalation ladder")
    recover.add_argument("preset", nargs="?",
                         help="fault preset for a single supervised run "
                              "(omit to sweep the recovery matrix)")
    recover.add_argument("--seed", type=int, default=1,
                         help="fault/recovery seed (default 1)")
    recover.add_argument("--workload", default="tv")
    recover.add_argument("--no-bb", action="store_true",
                         help="base the ladder on a conventional boot")
    recover.add_argument("--features",
                         help="comma-separated BB feature list")
    recover.add_argument("--json", action="store_true",
                         help="emit the boot report / recovery section "
                              "as JSON")
    recover.add_argument("--smoke", action="store_true",
                         help="CI-sized recovery-matrix subset")
    recover.add_argument("--jobs", type=int, default=1,
                         help="worker processes for the matrix sweep")
    recover.add_argument("--cache-dir",
                         help="persist matrix results to this directory")
    recover.add_argument("--branch", action=argparse.BooleanOptionalAction,
                         default=False,
                         help="checkpoint/fork-branch prefix-sharing boot "
                              "jobs in the matrix sweep")
    recover.set_defaults(fn=_cmd_recover)

    experiment = sub.add_parser("experiment",
                                help="regenerate a paper artifact")
    experiment.add_argument("id", help="'list', 'all', or an experiment id")
    experiment.add_argument("--jobs", type=int, default=1,
                            help="worker processes for simulation sweeps "
                                 "(1 = serial, the deterministic default)")
    experiment.add_argument("--cache-dir",
                            help="persist simulation results to this "
                                 "directory, keyed by job fingerprint")
    experiment.add_argument("--smoke", action="store_true",
                            help="reduced sweep for CI, where the "
                                 "experiment supports one")
    experiment.add_argument("--branch", action=argparse.BooleanOptionalAction,
                            default=False,
                            help="checkpoint/fork-branch prefix-sharing "
                                 "boot jobs instead of booting each from "
                                 "scratch (identical results)")
    experiment.set_defaults(fn=_cmd_experiment)

    faults = sub.add_parser("faults",
                            help="boot under a named fault preset")
    faults.add_argument("preset", nargs="?",
                        help="preset name (see --list-presets)")
    faults.add_argument("--list-presets", action="store_true",
                        help="list the available fault presets")
    faults.add_argument("--seed", type=int, default=1,
                        help="fault plan seed (default 1)")
    faults.add_argument("--workload", default="tv")
    faults.add_argument("--no-bb", action="store_true",
                        help="conventional boot (default is full BB)")
    faults.add_argument("--features", help="comma-separated BB feature list")
    faults.add_argument("--cores", type=int, default=None,
                        help="override the platform core count")
    faults.set_defaults(fn=_cmd_faults)

    predict = sub.add_parser(
        "predict",
        help="solve a boot analytically (closed form, no event loop)")
    predict.add_argument("--workload", default="tv", help="workload name")
    predict.add_argument("--no-bb", action="store_true",
                         help="conventional boot (default is full BB)")
    predict.add_argument("--features",
                         help="comma-separated BB feature list")
    predict.add_argument("--cores", type=int, default=None,
                         help="override the platform core count")
    predict.add_argument("--json", action="store_true",
                         help="emit the prediction as JSON")
    predict.set_defaults(fn=_cmd_predict)

    bench = sub.add_parser("bench",
                           help="run the perf benchmarks, write BENCH_runner.json")
    bench.add_argument("--jobs", type=int, default=None,
                       help="worker processes for the sweep benchmark "
                            "(default: cpu count)")
    bench.add_argument("--events", type=int, default=200_000,
                       help="events per engine-microbenchmark run")
    bench.add_argument("--skip-sweep", action="store_true",
                       help="skip the experiment-all sweep benchmark")
    bench.add_argument("--skip-checkpoint", action="store_true",
                       help="skip the checkpoint/fork benchmark")
    bench.add_argument("--checkpoint-cells", type=int, default=120,
                       help="fault-matrix cells for the checkpoint "
                            "benchmark (default 120)")
    bench.add_argument("--checkpoint-backend", default=None,
                       choices=("fork", "replay"),
                       help="branch backend for the checkpoint benchmark "
                            "(default: fork where available)")
    bench.add_argument("--branch-floor", type=float, default=0.0,
                       help="fail (exit 1) if the checkpoint speedup lands "
                            "below this factor (0 = report only)")
    bench.add_argument("--skip-predict", action="store_true",
                       help="skip the design-space pre-filter benchmark")
    bench.add_argument("--predict-floor", type=float, default=0.0,
                       help="fail (exit 1) if the design-space pre-filter "
                            "speedup lands below this factor "
                            "(0 = report only)")
    bench.add_argument("--skip-fleet", action="store_true",
                       help="skip the fleet-campaign benchmark")
    bench.add_argument("--fleet-floor", type=float, default=0.0,
                       help="fail (exit 1) if the fleet campaign sustains "
                            "fewer jobs/min than this (0 = report only)")
    bench.add_argument("--cache-dir",
                       help="disk cache directory for the sweep benchmark")
    bench.add_argument("--out", default="BENCH_runner.json",
                       help="output record path")
    bench.set_defaults(fn=_cmd_bench)

    fleet = sub.add_parser(
        "fleet", help="the fleet-scale async boot service")
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    serve = fleet_sub.add_parser(
        "serve", help="run the TCP/JSON-lines boot service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7016,
                       help="listen port (0 = ephemeral; default 7016)")
    serve.add_argument("--min-workers", type=int, default=1,
                       help="lower auto-scale bound (default 1)")
    serve.add_argument("--max-workers", type=int, default=None,
                       help="upper auto-scale bound (default: cpu count)")
    serve.add_argument("--max-rss-mb", type=int, default=None,
                       help="scale down when the shards' combined RSS "
                            "exceeds this many MiB")
    serve.add_argument("--cache-dir",
                       help="content-addressed disk cache shared by shards")
    serve.add_argument("--cache-max-mb", type=int, default=None,
                       help="LRU-evict the disk cache above this many MiB")
    serve.add_argument("--batch-size", type=int, default=16,
                       help="jobs dispatched per shard batch (default 16)")
    serve.add_argument("--branch", action=argparse.BooleanOptionalAction,
                       default=False,
                       help="checkpoint/fork-branch prefix-sharing jobs "
                            "inside shard batches")
    serve.add_argument("--journal", metavar="DIR", default=None,
                       help="write-ahead job journal directory; a "
                            "restarted service resumes unfinished "
                            "submissions from it")
    serve.add_argument("--journal-checkpoint-every", type=int, default=64,
                       metavar="N",
                       help="compact the journal every N appends "
                            "(default 64)")
    serve.add_argument("--max-job-retries", type=int, default=2,
                       help="times a job whose shard crashed is requeued "
                            "before quarantine (default 2)")
    serve.add_argument("--chaos", metavar="JSON", default=None,
                       help="seeded fault-injection plan for the chaos "
                            "harness, e.g. "
                            "'{\"seed\": 7, \"kill_worker_rate\": 0.1}'")
    serve.set_defaults(fn=_cmd_fleet_serve)

    submit = fleet_sub.add_parser(
        "submit", help="submit jobs to a running fleet service")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=7016)
    submit.add_argument("--workload", default="tv")
    submit.add_argument("--no-bb", action="store_true",
                        help="conventional boot (default is full BB)")
    submit.add_argument("--features",
                        help="comma-separated BB feature list")
    submit.add_argument("--cores", type=int, default=None)
    submit.add_argument("--faults", metavar="PRESET",
                        help="boot under a named fault preset")
    submit.add_argument("--seed", type=int, default=1)
    submit.add_argument("--recover", action="store_true",
                        help="submit a recovery job instead of a boot")
    submit.add_argument("--repeat", type=int, default=1,
                        help="submit this many identical jobs "
                             "(single-flight executes one)")
    submit.add_argument("--priority", type=int, default=0,
                        help="larger numbers dispatch first")
    submit.add_argument("--spec-file",
                        help="JSON file holding a list of job specs "
                             "(overrides the flag-built spec)")
    submit.add_argument("--verbose", action="store_true",
                        help="print one line per streamed result")
    submit.set_defaults(fn=_cmd_fleet_submit)

    status = fleet_sub.add_parser(
        "status", help="print a running service's status snapshot")
    status.add_argument("--host", default="127.0.0.1")
    status.add_argument("--port", type=int, default=7016)
    status.set_defaults(fn=_cmd_fleet_status)

    fleet_campaign = fleet_sub.add_parser(
        "campaign",
        help="run the 10k+-job fleet campaign against an in-process "
             "service (or, with --host, a running external one), "
             "byte-checked vs a serial replay")
    fleet_campaign.add_argument("--smoke", action="store_true",
                                help="CI-sized matrix")
    fleet_campaign.add_argument("--total-jobs", type=int, default=None,
                                help="tickets after repeat expansion "
                                     "(default 10080)")
    fleet_campaign.add_argument("--max-workers", type=int, default=None,
                                help="upper auto-scale bound "
                                     "(default: cpu count)")
    fleet_campaign.add_argument("--batch-size", type=int, default=16)
    fleet_campaign.add_argument("--journal", metavar="DIR", default=None,
                                help="journal directory for the "
                                     "in-process service")
    fleet_campaign.add_argument("--host", default=None,
                                help="drive a running fleet service "
                                     "instead of an in-process one")
    fleet_campaign.add_argument("--port", type=int, default=7016)
    fleet_campaign.add_argument("--chunk-cells", type=int, default=1,
                                metavar="N",
                                help="matrix cells per submission chunk "
                                     "in external mode (default 1)")
    fleet_campaign.add_argument("--retries", type=int, default=8,
                                help="client resubmission budget per "
                                     "chunk in external mode (default 8)")
    fleet_campaign.add_argument("--backoff-base", type=float, default=0.1,
                                help="first-retry backoff ceiling, "
                                     "seconds (default 0.1)")
    fleet_campaign.add_argument("--retry-seed", type=int, default=None,
                                help="jitter seed for the backoff "
                                     "schedule (default: derived per "
                                     "client so a fleet decorrelates)")
    fleet_campaign.add_argument("--read-timeout", type=float, default=120.0,
                                help="per-event read timeout in external "
                                     "mode, seconds (default 120)")
    fleet_campaign.add_argument("--throughput-floor", type=float, default=0.0,
                                help="fail (exit 1) below this many "
                                     "jobs/min (0 = report only)")
    fleet_campaign.add_argument("--json", action="store_true",
                                help="emit the campaign record as JSON")
    fleet_campaign.set_defaults(fn=_cmd_fleet_campaign)

    generations = sub.add_parser(
        "generations",
        help="manage boot-entry generations and run OTA rollouts")
    gen_sub = generations.add_subparsers(dest="generations_command",
                                         required=True)

    gen_init = gen_sub.add_parser(
        "init", help="create an empty generation store")
    gen_init.add_argument("--store", required=True,
                          help="directory for the store")
    gen_init.set_defaults(fn=_cmd_generations_init)

    gen_commit = gen_sub.add_parser(
        "commit", help="commit a new generation on top of a ref's head")
    gen_commit.add_argument("--store", required=True)
    gen_commit.add_argument("--ref", default="main")
    gen_commit.add_argument("--label", required=True,
                            help="human-readable release name")
    gen_commit.add_argument("--workload", default="tv",
                            choices=sorted(WORKLOAD_FACTORIES))
    gen_commit.add_argument("--features",
                            help="comma-separated BB feature names")
    gen_commit.add_argument("--no-bb", action="store_true",
                            help="ship with every BB feature disabled")
    gen_commit.add_argument("--cores", type=int, default=None)
    gen_commit.add_argument("--fault", default=None,
                            help="bake a fault preset into the image")
    gen_commit.add_argument("--fault-seed", type=int, default=0)
    gen_commit.add_argument("--max-boot-attempts", type=int, default=3)
    gen_commit.add_argument("--threshold", type=float, default=1.10,
                            help="boot-time regression gate vs the "
                                 "baseline prediction")
    gen_commit.add_argument("--notes", default="")
    gen_commit.set_defaults(fn=_cmd_generations_commit)

    gen_log = gen_sub.add_parser(
        "log", help="walk a ref's history, newest first")
    gen_log.add_argument("--store", required=True)
    gen_log.add_argument("--ref", default="main")
    gen_log.set_defaults(fn=_cmd_generations_log)

    gen_diff = gen_sub.add_parser(
        "diff", help="field-level diff between two generations")
    gen_diff.add_argument("--store", required=True)
    gen_diff.add_argument("--ref", default="main")
    gen_diff.add_argument("a", nargs="?", default=None,
                          help="old fingerprint/prefix (default: parent "
                               "of the new one)")
    gen_diff.add_argument("b", nargs="?", default=None,
                          help="new fingerprint/prefix (default: ref head)")
    gen_diff.set_defaults(fn=_cmd_generations_diff)

    gen_rollback = gen_sub.add_parser(
        "rollback", help="pop a ref's head back to its parent")
    gen_rollback.add_argument("--store", required=True)
    gen_rollback.add_argument("--ref", default="main")
    gen_rollback.set_defaults(fn=_cmd_generations_rollback)

    gen_rollout = gen_sub.add_parser(
        "rollout",
        help="stage a generation across the simulated fleet in waves, "
             "with health gating and automatic rollback")
    gen_rollout.add_argument("--store", default=None)
    gen_rollout.add_argument("--demo", choices=("clean", "regressed",
                                                "broken"),
                             help="run against a throwaway demo store "
                                  "instead of --store")
    gen_rollout.add_argument("--target", default="main",
                             help="ref or fingerprint to roll out")
    gen_rollout.add_argument("--baseline", default=None,
                             help="known-good ref/fingerprint (default: "
                                  "target's parent)")
    gen_rollout.add_argument("--devices", type=int, default=12)
    gen_rollout.add_argument("--waves", type=int, default=3)
    gen_rollout.add_argument("--seed", type=int, default=0,
                             help="update-fault seed")
    gen_rollout.add_argument("--flash-rate", type=float, default=0.0,
                             help="per-device interrupted-flash "
                                  "probability")
    gen_rollout.add_argument("--corrupt-rate", type=float, default=0.0,
                             help="per-device corrupt-image probability")
    gen_rollout.add_argument("--halt-threshold", type=float, default=0.5,
                             help="halt the campaign when a wave's "
                                  "rollback fraction reaches this")
    gen_rollout.add_argument("--jobs", type=int, default=1)
    gen_rollout.add_argument("--fleet", action="store_true",
                             help="run trial boots through the async "
                                  "fleet service instead of the serial "
                                  "runner")
    gen_rollout.add_argument("--json", action="store_true",
                             help="emit the campaign report as JSON")
    gen_rollout.add_argument("--expect-rollbacks", type=int, default=None,
                             help="fail (exit 1) unless exactly this "
                                  "many rollbacks occurred")
    gen_rollout.set_defaults(fn=_cmd_generations_rollout)

    chart = sub.add_parser("bootchart", help="boot and render the bootchart")
    chart.add_argument("--workload", default="tv")
    chart.add_argument("--no-bb", action="store_true")
    chart.add_argument("--features")
    chart.add_argument("--rows", type=int, default=30)
    chart.add_argument("--cores", type=int, default=None,
                       help="override the platform core count")
    chart.add_argument("--svg", help="also write an SVG to this file")
    chart.add_argument("--trace",
                       help="also write a Chrome/Perfetto trace JSON")
    chart.set_defaults(fn=_cmd_bootchart)

    verify = sub.add_parser("verify",
                            help="run the simulation verification harness")
    verify.add_argument("--smoke", action="store_true",
                        help="CI-sized subset (still >50 boots, but seconds)")
    verify.add_argument("--seed", type=int, default=0,
                        help="master seed for perturbations and oracle cases")
    verify.add_argument("--json", action="store_true",
                        help="emit the verification report as JSON")
    verify.add_argument("--only", metavar="GROUP", default=None,
                        help="run a single check group by name "
                             "(e.g. fleet-crash)")
    verify.set_defaults(fn=_cmd_verify)

    analyze = sub.add_parser("analyze", help="run the Service Analyzer")
    analyze.add_argument("--workload", default="tv")
    analyze.set_defaults(fn=_cmd_analyze)

    workloads = sub.add_parser("workloads", help="list available workloads")
    workloads.set_defaults(fn=_cmd_workloads)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
