"""Booting Booster — the paper's contribution (§3).

BB consists of three engines layered over the kernel and init substrates:

* :mod:`repro.core.core_engine` — kernel space: On-demand Modularizer,
  RCU Booster installation, deferred memory initialization,
* :mod:`repro.core.bootup_engine` — the first module of the init scheme:
  RCU Booster Control, Deferred Executor, On-demand Modularizer Control,
* :mod:`repro.core.service_engine` — Booting Booster Group Isolator,
  Booting Booster Manager, Pre-parser, Service Analyzer.

:class:`~repro.core.bb.BootSimulation` composes a hardware platform, a
workload, and a :class:`~repro.core.config.BBConfig` into one simulated
cold boot and returns a :class:`~repro.analysis.metrics.BootReport`; every
evaluation experiment is a pair (or sweep) of such runs.
"""

from repro.core.bb import BootingBooster, BootSimulation
from repro.core.bootup_engine import BootupEngine
from repro.core.config import BBConfig
from repro.core.core_engine import CoreEngine
from repro.core.deferred import ApplicationLaunch, LaunchReport
from repro.core.degraded import DegradedBootError, DegradedBootReport
from repro.core.isolator import BBGroupIsolator
from repro.core.service_engine import ServiceEngine

__all__ = [
    "ApplicationLaunch",
    "BBConfig",
    "BBGroupIsolator",
    "BootSimulation",
    "BootingBooster",
    "BootupEngine",
    "CoreEngine",
    "DegradedBootError",
    "DegradedBootReport",
    "LaunchReport",
    "ServiceEngine",
]
