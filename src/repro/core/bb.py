"""The Booting Booster facade and the end-to-end boot simulation.

:class:`BootSimulation` is the library's main entry point::

    from repro.core import BBConfig, BootSimulation
    from repro.workloads import opensource_tv_workload

    report = BootSimulation(opensource_tv_workload(), BBConfig.full()).run()
    print(report.boot_complete_ms)

One call runs power-on to boot completion (and on to quiescence): the
bootloader, the kernel stage configured by the Core Engine, the init
scheme with the Boot-up Engine's controls, and the Service Engine's
isolation and prioritization — then packages everything measurable into a
:class:`~repro.analysis.metrics.BootReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.metrics import BootReport, StageBreakdown
from repro.core.bootup_engine import BootupEngine
from repro.core.config import BBConfig
from repro.core.core_engine import CoreEngine
from repro.core.degraded import DegradedBootError, diagnose_degraded_boot
from repro.core.service_engine import ServiceEngine
from repro.errors import ServiceFailureError, SimulationError
from repro.initsys.manager import InitManager
from repro.initsys.transaction import JobState
from repro.kernel.config import KernelConfig
from repro.sim.engine import Simulator
from repro.sim.process import Wait
from repro.workloads.base import Workload

if TYPE_CHECKING:
    from repro.sim.process import ProcessGenerator


@dataclass(slots=True)
class BootingBooster:
    """The three engines of §3, wired for one boot."""

    core_engine: CoreEngine
    bootup_engine: BootupEngine
    service_engine: ServiceEngine

    @property
    def bb_group(self) -> frozenset[str]:
        """The isolated BB Group of this boot."""
        return self.service_engine.bb_group


class BootSimulation:
    """One simulated cold boot of a workload under a BB configuration.

    Args:
        workload: Device + service set (see :mod:`repro.workloads`).
        bb: Feature flags; :meth:`BBConfig.none` is the "No BB" column.
        cores: Override the platform's core count (scaling studies).
        kernel_config: Override the kernel build (§2.4 studies).
        fault_plan: Optional :class:`~repro.faults.FaultPlan`; compiled
            into a fresh injector for this run.  A boot that cannot reach
            completion raises :class:`~repro.core.degraded.DegradedBootError`
            carrying a structured post-mortem.
        monitor: Optional :class:`~repro.verify.InvariantMonitor`; attached
            to the simulator before any event is scheduled and finalized
            (quiescence checks) after a successful run.
        event_queue: Optional event-queue override for the simulator,
            e.g. a :class:`~repro.verify.PerturbedEventQueue` that fuzzes
            equal-timestamp scheduling order.  Like the simulation itself,
            a queue is single-shot.
        restart_seed: Seed for the executor's deterministic restart
            jitter; the recovery supervisor derives it from its own seed
            so replays are byte-identical.
        restart_jitter: Relative jitter on restart backoff delays
            (0.0 keeps the constant-delay behaviour).
        attempt_offsets: Start attempts already made in previous boots of
            a supervised recovery run (see :meth:`FaultPlan.compile`).
        injector_slot: Optional :class:`~repro.sim.checkpoint.InjectorSlot`
            wired into every fault-hook site instead of a compiled plan.
            The slot answers null until a plan is swapped in mid-run with
            :meth:`install_plan` — the checkpoint/fork branching seam.
            Mutually exclusive with ``fault_plan``.
    """

    def __init__(self, workload: Workload, bb: BBConfig | None = None,
                 cores: int | None = None,
                 kernel_config: KernelConfig | None = None,
                 manual_bb_group: tuple[str, ...] | None = None,
                 fault_plan=None, monitor=None, event_queue=None,
                 restart_seed: int = 0, restart_jitter: float = 0.0,
                 attempt_offsets: dict[str, int] | None = None,
                 injector_slot=None):
        if injector_slot is not None and fault_plan is not None:
            raise SimulationError(
                "injector_slot and fault_plan are mutually exclusive; "
                "install the plan into the slot with install_plan()")
        self.workload = workload
        self.bb = bb if bb is not None else BBConfig.none()
        self.platform = workload.platform_factory()
        self.cores = cores if cores is not None else self.platform.cpu_cores
        self.kernel_config = kernel_config
        self.manual_bb_group = manual_bb_group
        self.fault_plan = fault_plan
        self.fault_injector = None
        self.monitor = monitor
        self.event_queue = event_queue
        self.restart_seed = restart_seed
        self.restart_jitter = restart_jitter
        self.attempt_offsets = dict(attempt_offsets or {})
        self.injector_slot = injector_slot
        self.sim: Simulator | None = None
        self.booster: BootingBooster | None = None
        self.manager: InitManager | None = None

    def run(self) -> BootReport:
        """Execute the boot and return its report.

        A simulation is single-shot (device statistics and unit state are
        consumed by the run); build a new ``BootSimulation`` per boot.
        Equivalent to :meth:`start` followed by :meth:`complete`.

        Raises:
            SimulationError: If called twice.
            DegradedBootError: If the boot cannot reach completion under
                the fault plan (``.report`` names the culprit).
        """
        self.start()
        return self.complete()

    def start(self) -> None:
        """Set up the simulator and schedule the boot, without running it.

        Split out of :meth:`run` for checkpoint/fork branching: after
        ``start()`` the caller may drive ``self.sim.run(until_ns=...)`` to
        pause the boot at an exact sim time, fork, :meth:`install_plan`,
        and :meth:`complete` — the paused event stream is identical to an
        uninterrupted run's, so branches are byte-reproducible.

        Raises:
            SimulationError: If called twice.
        """
        if self.sim is not None:
            raise SimulationError("BootSimulation.run() is single-shot; "
                                  "create a new BootSimulation per boot")
        sim = Simulator(cores=self.cores, event_queue=self.event_queue)
        self.sim = sim
        if self.monitor is not None:
            self.monitor.attach(sim)
        self.platform.attach(sim)
        if self.injector_slot is not None:
            self.injector_slot.attach(sim)
            self.platform.storage.fault_hook = self.injector_slot.storage_extra_ns
        elif self.fault_plan is not None:
            self.fault_injector = self.fault_plan.compile(
                attempt_offsets=self.attempt_offsets)
            self.platform.storage.fault_hook = self.fault_injector.storage_extra_ns
        registry = self.workload.fresh_registry()

        kernel_config = self.kernel_config
        if kernel_config is None and self.workload.kernel_config_factory is not None:
            kernel_config = self.workload.kernel_config_factory()
        core_engine = CoreEngine(
            self.platform, self.bb, kernel_config=kernel_config,
            initcalls=self.workload.initcalls_factory(),
            builtin_initcalls=self.workload.builtin_initcalls_factory())
        service_engine = ServiceEngine(registry, self.workload.completion_units,
                                       self.bb, manual_group=self.manual_bb_group)
        bootup_engine = BootupEngine(self.bb, core_engine)
        self.booster = BootingBooster(core_engine, bootup_engine, service_engine)

        sim.spawn(self._boot(sim, registry, core_engine, bootup_engine,
                             service_engine),
                  name="boot", priority=10)

    def install_plan(self, fault_plan) -> None:
        """Swap a fault plan into the injector slot mid-run (branching).

        Compiles the plan and installs it as the slot's delegate, so every
        later fault query — and the stats tally — behaves exactly as in a
        from-scratch run of the plan.  Only meaningful between
        :meth:`start` and :meth:`complete` on a slot-equipped simulation.
        """
        if self.injector_slot is None:
            raise SimulationError("install_plan() needs an injector_slot")
        injector = fault_plan.compile(attempt_offsets=self.attempt_offsets)
        self.injector_slot.swap(injector)
        self.fault_plan = fault_plan
        self.fault_injector = injector

    def complete(self) -> BootReport:
        """Run the started simulation to quiescence and build the report.

        Raises:
            SimulationError: If :meth:`start` has not run.
            DegradedBootError: If the boot cannot reach completion under
                the fault plan (``.report`` names the culprit).
        """
        sim = self.sim
        if sim is None:
            raise SimulationError("complete() before start()")
        try:
            sim.run()
        except DegradedBootError:
            raise
        except ServiceFailureError as exc:
            # A completion unit's start job failed: diagnose and re-raise
            # with structure.  Other exceptions are genuine bugs and
            # propagate untouched.
            raise self._degraded_error(wedged=False) from exc
        if self.manager is None or self.manager.completion is None:
            # The event queue drained with the boot still blocked — a
            # device path that never appeared, typically.
            raise self._degraded_error(wedged=True)
        if self.monitor is not None:
            # A healthy boot must be quiescent: no deadlocked waiters, and
            # deferred work strictly after boot completion.
            self.monitor.finish(self)
        return self._build_report()

    # ------------------------------------------------------------ internals

    def _boot(self, sim: Simulator, registry, core_engine: CoreEngine,
              bootup_engine: BootupEngine,
              service_engine: ServiceEngine) -> "ProcessGenerator":
        yield from core_engine.run_kernel(sim)
        bootup_engine.on_init_start(sim)
        cache = service_engine.build_cache() if self.bb.preparser else None
        manager_config = bootup_engine.build_manager_config(
            self.workload.goal, self.workload.completion_units)
        manager_config.restart_seed = self.restart_seed
        manager_config.restart_jitter = self.restart_jitter
        manager = InitManager(
            sim, registry, self.platform.storage, core_engine.rcu,
            manager_config,
            preparser=service_engine.preparser,
            cache=cache,
            boot_modules=self.workload.boot_modules_factory(),
            preexisting_paths=set(self.workload.preexisting_paths),
            edge_filter=service_engine.edge_filter,
            priority_fn=service_engine.priority_fn,
            on_boot_complete=lambda: bootup_engine.on_boot_complete(sim),
            fault_injector=(self.injector_slot
                            if self.injector_slot is not None
                            else self.fault_injector),
            path_faulter_factory=(
                (lambda paths: bootup_engine.make_path_faulter(sim, paths))
                if self.bb.ondemand_modularizer else None))
        self.manager = manager
        manager_process = manager.spawn()
        yield Wait(manager_process.done)

    def _degraded_error(self, wedged: bool) -> "DegradedBootError":
        if self.manager is None or self.sim is None:
            raise SimulationError("boot failed before the init manager ran")
        report = diagnose_degraded_boot(
            self.manager, workload=self.workload.name,
            features=self.bb.enabled_features(),
            injector=self.fault_injector, wedged=wedged,
            time_ns=self.sim.now)
        return DegradedBootError(report)

    def _build_report(self) -> BootReport:
        sim, manager, booster = self.sim, self.manager, self.booster
        if sim is None or manager is None or booster is None:
            raise SimulationError("run() has not completed")
        core_engine = booster.core_engine
        timings = core_engine.sequence.timings
        assert timings is not None and manager.completion is not None
        init_init_ns = sim.tracer.find("init.initialization").duration_ns
        boot_complete_ns = manager.completion.time_ns
        services_ns = boot_complete_ns - timings.total_ns - init_init_ns

        unit_ready: dict[str, int] = {}
        unit_started: dict[str, int] = {}
        failed_units: dict[str, str] = {}
        unsettled_units: list[str] = []
        unit_attempts: dict[str, int] = {}
        assert manager.transaction is not None
        for job in manager.transaction.jobs.values():
            if job.ready_at_ns is not None:
                unit_ready[job.name] = job.ready_at_ns
            if job.started_at_ns is not None:
                unit_started[job.name] = job.started_at_ns
            if job.attempts:
                unit_attempts[job.name] = job.attempts
            if job.state is JobState.FAILED:
                failed_units[job.name] = job.failure_reason or "failed"
            elif job.settled is not None and not job.settled.fired:
                unsettled_units.append(job.name)

        rcu = core_engine.rcu
        assert rcu is not None
        executor = manager.executor
        isolation_on = booster.service_engine.edge_filter is not None
        return BootReport(
            workload=self.workload.name,
            features=self.bb.enabled_features(),
            stages=StageBreakdown(kernel_ns=timings.total_ns,
                                  init_init_ns=init_init_ns,
                                  services_ns=services_ns),
            boot_complete_ns=boot_complete_ns,
            all_done_ns=manager.all_done_ns or boot_complete_ns,
            kernel_timings=timings,
            unit_ready_ns=unit_ready,
            unit_started_ns=unit_started,
            bb_group=booster.bb_group if isolation_on else frozenset(),
            rcu_sync_count=rcu.sync_count,
            rcu_spin_ns=rcu.spin_time_ns,
            rcu_wall_ns=rcu.total_sync_wall_ns,
            cpu_busy_ns=sim.cpu.stats.busy_ns,
            ignored_edges=len(executor.ignored_edges) if executor else 0,
            deferred_task_names=[p.name for p in manager.deferred_processes],
            failed_units=failed_units,
            unsettled_units=tuple(unsettled_units),
            injected_faults=(self.fault_injector.stats.as_dict()
                             if self.fault_injector is not None else {}),
            deferred_failed=list(manager.deferred_failed),
            unit_attempts=unit_attempts,
        )
