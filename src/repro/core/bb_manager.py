"""Booting Booster Manager (§3.3).

"Booting Booster Manager launches processes of the BB Group and
prioritizes and manages processes of the group to complete booting
quickly. ... processes not in the group are deferred if computing
resources are not available."

In the simulation this is a priority policy: BB-Group start jobs run at
:data:`BB_GROUP_PRIORITY` while everything else keeps the default service
priority, so the multicore scheduler (and the priority-aware storage
channel, modelling ``ioprio_set``) automatically defers non-critical work
exactly when resources are contended — and only then.
"""

from __future__ import annotations

from repro.core.isolator import BBGroupIsolator
from repro.initsys.executor import SERVICE_PRIORITY
from repro.initsys.units import Unit

#: CPU/I/O priority of BB-Group start jobs (lower runs first).
BB_GROUP_PRIORITY = 20


class BootingBoosterManager:
    """Priority policy derived from the isolated BB Group."""

    def __init__(self, isolator: BBGroupIsolator,
                 group_priority: int = BB_GROUP_PRIORITY,
                 default_priority: int = SERVICE_PRIORITY):
        self.isolator = isolator
        self.group_priority = group_priority
        self.default_priority = default_priority

    def priority_fn(self, unit: Unit) -> int:
        """Executor hook: scheduling priority for a unit's start job."""
        if unit.name in self.isolator.group:
            return self.group_priority
        return self.default_priority
