"""Boot-up Engine — the first module of the init scheme (§3.2).

Three user-space agents:

* **RCU Booster Control** — writes the kernel's sysfs knob: boosted mode
  as soon as the init scheme starts, conventional mode at boot completion
  (the §4.3 trade-off makes boosting a boot-window-only policy),
* **Deferred Executor** — expressed as the manager-config flags that defer
  the Fig. 6(b) start-up tasks and the Fig. 6(c) sub-modules,
* **On-demand Modularizer Control** — the user-space manager that loads a
  deferred built-in component when an application first needs it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.config import BBConfig
from repro.core.core_engine import CoreEngine
from repro.initsys.manager import ManagerConfig
from repro.kernel.rcu import RCUSubsystem

if TYPE_CHECKING:
    from repro.sim.engine import Simulator
    from repro.sim.process import ProcessGenerator


class BootupEngine:
    """User-space BB agents living inside the init scheme."""

    def __init__(self, bb: BBConfig, core_engine: CoreEngine):
        self.bb = bb
        self.core_engine = core_engine
        self.boost_enabled_at_ns: int | None = None
        self.boost_disabled_at_ns: int | None = None

    # ------------------------------------------------- RCU Booster Control

    def on_init_start(self, engine: "Simulator") -> None:
        """First act of the init scheme: enable the RCU Booster."""
        rcu = self.core_engine.rcu
        if self.bb.rcu_booster and rcu is not None:
            rcu.write_sysfs("1")
            self.boost_enabled_at_ns = engine.now
            engine.tracer.instant("rcu-booster.enabled", "bb")

    def on_boot_complete(self, engine: "Simulator") -> None:
        """At completion: disable boosting, start kernel deferred work."""
        rcu = self.core_engine.rcu
        if self.bb.rcu_booster and rcu is not None:
            rcu.write_sysfs("0")
            self.boost_disabled_at_ns = engine.now
            engine.tracer.instant("rcu-booster.disabled", "bb")
        self.core_engine.spawn_deferred_tasks(engine)

    # ------------------------------------------------- Deferred Executor

    def manager_flags(self) -> dict[str, bool]:
        """The :class:`~repro.initsys.manager.ManagerConfig` flags BB sets."""
        return {
            "defer_startup_tasks": self.bb.defer_startup_tasks,
            "defer_submodules": self.bb.deferred_executor,
            "use_preparser": self.bb.preparser,
            "ondemand_modules": self.bb.ondemand_modularizer,
        }

    def build_manager_config(self, goal: str,
                             completion_units: tuple[str, ...]) -> ManagerConfig:
        """Manager configuration for this BB feature set."""
        return ManagerConfig(goal=goal, completion_units=completion_units,
                             **self.manager_flags())

    # --------------------------------------- On-demand Modularizer Control

    def demand_load(self, engine: "Simulator", initcall_name: str) -> "ProcessGenerator":
        """Generator: load a deferred built-in driver on first use."""
        yield from self.core_engine.demand_load_initcall(engine, initcall_name)

    def make_path_faulter(self, engine: "Simulator", paths) -> "object":
        """Device-path fault handler for the executor.

        When a service opens a device whose driver was deferred
        (``/dev/<driver>`` missing), the control loads the built-in driver
        on demand and provides the node.  Returns the callable to pass as
        the executor's ``path_faulter``.
        """

        def faulter(path: str) -> "ProcessGenerator":
            driver = path.rsplit("/", 1)[-1]
            yield from self.demand_load(engine, driver)
            paths.provide(path)

        return faulter

    @property
    def rcu(self) -> RCUSubsystem | None:
        """The kernel RCU subsystem (after the kernel stage ran)."""
        return self.core_engine.rcu
