"""The BB feature switchboard.

Every mechanism of §3 is independently toggleable, which is what makes the
Fig. 6 per-feature attribution and the ablation benches possible: measure
with a feature off, turn it on, diff the completion times.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace


@dataclass(frozen=True, slots=True)
class BBConfig:
    """Feature flags for one boot.

    Attributes:
        rcu_booster: Core Engine's RCU Booster + Boot-up Engine's control
            (enable at init start, disable at boot completion).
        deferred_meminit: Core Engine's deferred memory initialization.
        deferred_journal: Defer enabling the ext4 journal of the rootfs.
        ondemand_modularizer: Convert boot-path external modules into
            deferred built-ins loaded on first use.
        defer_startup_tasks: Boot-up Engine defers the six Fig. 6(b) tasks.
        deferred_executor: Defer the init-scheme sub-modules (Fig. 6(c)).
        preparser: Load units from the build-time cache (Fig. 6(d)).
        group_isolation: Booting Booster Group Isolator — ignore ordering
            declared on BB-Group services by outsiders.
        group_priority_boost: Booting Booster Manager — run BB-Group
            services at high CPU/I/O priority.
        static_bb_group: Statically build BB-Group binaries (§5), removing
            dynamic-link cost.
    """

    rcu_booster: bool = False
    deferred_meminit: bool = False
    deferred_journal: bool = False
    ondemand_modularizer: bool = False
    defer_startup_tasks: bool = False
    deferred_executor: bool = False
    preparser: bool = False
    group_isolation: bool = False
    group_priority_boost: bool = False
    static_bb_group: bool = False

    @classmethod
    def none(cls) -> "BBConfig":
        """The conventional boot (the paper's "No BB" column)."""
        return cls()

    @classmethod
    def full(cls) -> "BBConfig":
        """Everything on (the paper's "BB" column)."""
        return cls(**{f.name: True for f in fields(cls)})

    def with_feature(self, name: str, value: bool) -> "BBConfig":
        """Copy with one flag changed (ablation helper).

        Raises:
            AttributeError: If ``name`` is not a BB feature.
        """
        if name not in {f.name for f in fields(self)}:
            raise AttributeError(f"unknown BB feature {name!r}")
        return replace(self, **{name: value})

    def enabled_features(self) -> list[str]:
        """Names of the features turned on."""
        return [f.name for f in fields(self) if getattr(self, f.name)]
