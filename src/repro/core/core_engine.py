"""Core Engine — BB's kernel-space components (§3.1).

Configures the kernel boot sequence according to the BB feature flags:
deferred memory initialization, deferred ext4 journal, and the On-demand
Modularizer (deferrable built-in initcalls replacing external modules).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.config import BBConfig
from repro.hw.platform import HardwarePlatform
from repro.kernel.config import KernelConfig
from repro.kernel.initcalls import InitcallRegistry
from repro.kernel.sequence import KernelBootSequence

if TYPE_CHECKING:
    from repro.sim.engine import Simulator
    from repro.sim.process import Process, ProcessGenerator


class CoreEngine:
    """Kernel-side BB: builds and owns the configured kernel boot."""

    def __init__(self, platform: HardwarePlatform, bb: BBConfig,
                 kernel_config: KernelConfig | None = None,
                 initcalls: InitcallRegistry | None = None,
                 builtin_initcalls: InitcallRegistry | None = None):
        self.platform = platform
        self.bb = bb
        # Boot-critical drivers are compiled in under every configuration;
        # the deferrable built-ins only exist when the On-demand
        # Modularizer created them — without BB those drivers live as
        # external modules loaded by the init scheme's kmod worker.
        self.initcalls = (builtin_initcalls if builtin_initcalls is not None
                          else InitcallRegistry())
        if bb.ondemand_modularizer and initcalls is not None:
            for call in initcalls.boot_sequence(defer=False):
                self.initcalls.register(call)
        self.sequence = KernelBootSequence(
            platform,
            config=kernel_config,
            initcalls=self.initcalls,
            deferred_meminit=bb.deferred_meminit,
            deferred_journal=bb.deferred_journal,
            defer_initcalls=bb.ondemand_modularizer,
        )

    def run_kernel(self, engine: "Simulator") -> "ProcessGenerator":
        """Generator: the kernel stage (power-on to init handoff)."""
        timings = yield from self.sequence.run(engine)
        return timings

    def spawn_deferred_tasks(self, engine: "Simulator") -> list["Process"]:
        """Post-completion hook: deferred meminit remainder, journal remount."""
        return self.sequence.spawn_deferred_tasks(engine)

    def demand_load_initcall(self, engine: "Simulator",
                             name: str) -> "ProcessGenerator":
        """Generator: run a deferred built-in initcall on first use."""
        yield from self.initcalls.load_on_demand(engine, name)

    @property
    def rcu(self):
        """The kernel's RCU subsystem (available once the kernel ran)."""
        return self.sequence.rcu
