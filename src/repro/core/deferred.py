"""Post-boot application launches over deferred infrastructure (§4.3).

BB defers work past boot completion, so an application launched afterwards
may find that a driver or service it needs has not started yet.  The paper
measures this overhead at "less than 15 ms on average and the standard
deviation less than 1.5%", and notes that "once an application triggers a
deferred task to start, the deferred task no longer incurs an additional
delay for following application launches".

:class:`ApplicationLaunch` models one such launch: fork + exec + its own
initialization, plus on-demand loads of any deferred built-in drivers it
touches (through the On-demand Modularizer Control).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.core.bootup_engine import BootupEngine
from repro.errors import ConfigurationError
from repro.hw.storage import AccessPattern, StorageDevice
from repro.quantities import usec
from repro.sim.process import Compute

if TYPE_CHECKING:
    from repro.sim.engine import Simulator
    from repro.sim.process import ProcessGenerator


@dataclass(slots=True)
class LaunchReport:
    """Measured outcome of one application launch.

    Attributes:
        app: Application name.
        latency_ns: Total launch latency.
        demand_loaded: Deferred drivers this launch had to load.
    """

    app: str
    latency_ns: int
    demand_loaded: list[str] = field(default_factory=list)


@dataclass(frozen=True, slots=True)
class ApplicationLaunch:
    """A post-boot application and what it depends on.

    Attributes:
        name: Application name.
        exec_bytes: Binary read at launch.
        init_cpu_ns: The app's own start-up CPU work.
        needed_drivers: Deferred built-in initcalls the app touches (e.g.
            the USB stack for a media-player app).
    """

    name: str
    exec_bytes: int = 512 * 1024
    init_cpu_ns: int = usec(4_000)
    needed_drivers: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.exec_bytes < 0 or self.init_cpu_ns < 0:
            raise ConfigurationError(f"app {self.name}: negative cost")

    def launch(self, engine: "Simulator", storage: StorageDevice,
               bootup_engine: BootupEngine,
               reports: list[LaunchReport]) -> "ProcessGenerator":
        """Generator: launch the app, demand-loading deferred drivers.

        Appends a :class:`LaunchReport` to ``reports`` when done.
        """
        start = engine.now
        span = engine.tracer.begin(f"app:{self.name}", "app-launch")
        yield Compute(usec(300))  # fork
        if self.exec_bytes:
            yield from storage.read(self.exec_bytes, AccessPattern.RANDOM)
        loaded: list[str] = []
        for driver in self.needed_drivers:
            registry = bootup_engine.core_engine.initcalls
            if driver not in registry.completed:
                loaded.append(driver)
            yield from bootup_engine.demand_load(engine, driver)
        yield Compute(self.init_cpu_ns)
        engine.tracer.end(span)
        reports.append(LaunchReport(app=self.name,
                                    latency_ns=engine.now - start,
                                    demand_loaded=loaded))


def launch_sequence(engine: "Simulator", storage: StorageDevice,
                    bootup_engine: BootupEngine,
                    apps: Iterable[ApplicationLaunch]) -> tuple[list[LaunchReport], "ProcessGenerator"]:
    """Build a generator that launches ``apps`` one after another.

    Returns the (initially empty) report list and the generator to spawn;
    the list fills as the generator runs.
    """
    reports: list[LaunchReport] = []

    def runner() -> "ProcessGenerator":
        for app in apps:
            yield from app.launch(engine, storage, bootup_engine, reports)

    return reports, runner()
