"""Degraded-boot diagnosis: who kept the device from booting?

When a boot cannot reach completion — a unit on the critical chain failed
permanently, or a device path never appeared and the boot wedged — the
user deserves better than a bare exception: §2.5.2's monitoring-and-
recovery story is precisely about knowing *which* unit/device is at
fault.  :func:`diagnose_degraded_boot` walks the requirement graph from
the completion units and produces a structured
:class:`DegradedBootReport`; :class:`DegradedBootError` carries it while
remaining a :class:`~repro.errors.ServiceFailureError`, so existing
``except ServiceFailureError`` callers keep working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ServiceFailureError
from repro.initsys.transaction import JobState

if TYPE_CHECKING:
    from repro.faults.injector import BootFaultInjector
    from repro.initsys.manager import InitManager


@dataclass(slots=True)
class DegradedBootReport:
    """Structured post-mortem of a boot that missed completion.

    Attributes:
        workload: Workload name.
        features: BB features that were enabled.
        completion_units: What "boot complete" would have required.
        boot_wedged: True when the simulation ran out of events with the
            boot still blocked (a missing device path, typically) rather
            than failing outright.
        time_ns: Simulated time when the run gave up.
        culprit_unit: Root-cause unit on the completion chain, if one
            could be named.
        culprit_device: Device path the culprit is stuck waiting for.
        failed_units: Every permanently failed unit -> its reason.
        unsettled_units: Units whose start job never settled (BFS-stable
            order from the completion units first, then the rest).
        injected_faults: The fault injector's tally (empty without one).
    """

    workload: str
    features: list[str]
    completion_units: tuple[str, ...]
    boot_wedged: bool
    time_ns: int
    culprit_unit: str | None = None
    culprit_device: str | None = None
    failed_units: dict[str, str] = field(default_factory=dict)
    unsettled_units: tuple[str, ...] = ()
    injected_faults: dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        """One paragraph for humans (the CLI prints this)."""
        mode = "wedged" if self.boot_wedged else "failed"
        lines = [f"boot {mode} at {self.time_ns / 1e6:.1f} ms "
                 f"(workload {self.workload})"]
        if self.culprit_unit:
            culprit = f"culprit: {self.culprit_unit}"
            if self.culprit_device:
                culprit += f" (waiting for {self.culprit_device})"
            lines.append(culprit)
        if self.failed_units:
            lines.append("failed units: " + ", ".join(
                f"{name} ({reason})"
                for name, reason in sorted(self.failed_units.items())))
        if self.unsettled_units:
            lines.append("never settled: " + ", ".join(self.unsettled_units))
        return "\n".join(lines)


class DegradedBootError(ServiceFailureError):
    """A boot missed completion; carries the :class:`DegradedBootReport`.

    Subclasses :class:`ServiceFailureError` so callers that already catch
    start-job failures see degraded boots too; ``.report`` has the
    diagnosis.
    """

    def __init__(self, report: DegradedBootReport):
        self.report = report
        unit = report.culprit_unit or "<unknown>"
        mode = "wedged" if report.boot_wedged else "failed"
        reason = f"boot {mode}"
        if report.culprit_device:
            reason += f" waiting for {report.culprit_device}"
        super().__init__(unit, reason)


def _requirement_bfs(transaction, completion_units: tuple[str, ...]) -> list[str]:
    """Units reachable from the completion units over ``Requires``, in
    deterministic BFS order (completion units first)."""
    order: list[str] = []
    queue = [name for name in completion_units if name in transaction]
    seen = set(queue)
    while queue:
        name = queue.pop(0)
        order.append(name)
        for dep in transaction.job(name).unit.requires:
            if dep in transaction and dep not in seen:
                seen.add(dep)
                queue.append(dep)
    return order


def _find_culprit(transaction, order: list[str]) -> str | None:
    """Root-cause unit: prefer a failed unit none of whose own required
    units failed; else the first failed unit; else the first unsettled
    unit whose required units all settled; else the first unsettled."""

    def requires_in(job):
        return [d for d in job.unit.requires if d in transaction]

    failed = [n for n in order
              if transaction.job(n).state is JobState.FAILED]
    for name in failed:
        job = transaction.job(name)
        if not any(transaction.job(d).state is JobState.FAILED
                   for d in requires_in(job)):
            return name
    if failed:
        return failed[0]

    def settled(name: str) -> bool:
        completion = transaction.job(name).settled
        return completion is None or completion.fired

    unsettled = [n for n in order if not settled(n)]
    for name in unsettled:
        job = transaction.job(name)
        if all(settled(d) for d in requires_in(job)):
            return name
    return unsettled[0] if unsettled else None


def diagnose_degraded_boot(manager: "InitManager", workload: str,
                           features: list[str],
                           injector: "BootFaultInjector | None",
                           wedged: bool, time_ns: int) -> DegradedBootReport:
    """Build the post-mortem for a boot that missed completion."""
    transaction = manager.transaction
    failed_units: dict[str, str] = {}
    unsettled: list[str] = []
    culprit_unit: str | None = None
    culprit_device: str | None = None

    if transaction is not None:
        chain = _requirement_bfs(transaction,
                                 tuple(manager.config.completion_units))
        # The report covers collateral damage outside the completion chain
        # too, but only chain units can be named culprit.
        order = chain + [name for name in transaction.jobs
                         if name not in set(chain)]
        for name in order:
            job = transaction.job(name)
            if job.state is JobState.FAILED:
                failed_units[name] = job.failure_reason or "failed"
            elif job.settled is not None and not job.settled.fired:
                unsettled.append(name)
        culprit_unit = _find_culprit(transaction, chain)
        if culprit_unit is not None:
            culprit_job = transaction.job(culprit_unit)
            for path in culprit_job.unit.waits_for_paths:
                if not manager.paths.exists(path):
                    culprit_device = path
                    break

    return DegradedBootReport(
        workload=workload,
        features=list(features),
        completion_units=tuple(manager.config.completion_units),
        boot_wedged=wedged,
        time_ns=time_ns,
        culprit_unit=culprit_unit,
        culprit_device=culprit_device,
        failed_units=failed_units,
        unsettled_units=tuple(unsettled),
        injected_faults=injector.stats.as_dict() if injector else {},
    )
