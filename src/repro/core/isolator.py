"""Booting Booster Group Isolator (§3.3).

Identifies the *BB Group*: "OS services required for a user to recognize
that the system is ready to use", found "by analyzing relations spanning
from the dependencies of the definition of boot completion".  The isolated
group then "ignore[s] services not in the group and dependencies or
priority requirements defined as out of the group".

Concretely:

* the group is the transitive ``Requires`` closure of the boot-completion
  units (only what a critical service *itself* declares it needs — the
  abusive orderings other developers pile onto ``var.mount`` never enter),
* the executor edge filter drops any ordering edge whose successor is in
  the group but whose predecessor is not.
"""

from __future__ import annotations

from typing import Iterable

from repro.graph.depgraph import DependencyGraph
from repro.initsys.registry import UnitRegistry
from repro.initsys.transaction import OrderingEdge


class BBGroupIsolator:
    """Computes and enforces the BB Group for one workload."""

    def __init__(self, registry: UnitRegistry, completion_units: Iterable[str],
                 extra_members: Iterable[str] = ()):
        self.registry = registry
        self.completion_units = tuple(completion_units)
        graph = DependencyGraph(registry)
        closure = graph.strong_closure(self.completion_units)
        closure.update(extra_members)
        # Only units that actually exist make it into the group.
        self.group: frozenset[str] = frozenset(n for n in closure
                                               if n in registry)
        self.ignored_edge_count = 0

    def __contains__(self, name: str) -> bool:
        return name in self.group

    def edge_filter(self, edge: OrderingEdge) -> bool:
        """Executor hook: keep an ordering edge?

        Edges from outside the group into the group are ignored — this is
        the Fig. 7 mechanism that advances ``dbus.service`` by isolating
        ``var.mount`` from the dozen abusive orderings hung onto it.
        """
        if edge.successor in self.group and edge.predecessor not in self.group:
            self.ignored_edge_count += 1
            return False
        return True

    def members_sorted(self) -> list[str]:
        """Group members in deterministic order (for reports)."""
        return sorted(self.group)
