"""Pre-link, pre-fork, and static building (§5 "Pre-parser, pre-link, and
pre-fork").

The paper weighs three launch-acceleration mechanisms for BB-Group
processes and picks only static building:

* **pre-link** relocates shared libraries ahead of time, cutting the
  dynamic-link cost — but "there are usually no preceding processes with
  the same library for the processes in the group because it is at a very
  early stage of the booting sequence", it carries a security cost
  (predictable addresses), and for the group "shows no benefit" over
  static building;
* **pre-fork** keeps warm template processes to clone from — but "the
  benefit ... does not exceed the overhead (increased time to pre-launch
  user processes)" for a group executed once, early, with few processes;
* **static building** removes the dynamic-link cost entirely with no
  boot-time setup (this is `BBConfig.static_bb_group`).

The models here quantify that §5 reasoning so the T-PRESTART bench can
regenerate it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import ConfigurationError
from repro.initsys.units import Unit
from repro.quantities import usec


@dataclass(frozen=True, slots=True)
class PrelinkModel:
    """Ahead-of-time dynamic-link relocation.

    Attributes:
        link_cost_factor: Remaining fraction of the dynamic-link cost
            after pre-linking (relocation still validates).
        shared_library_reuse: Fraction of the link cost that is already
            amortized when a *preceding* process mapped the same
            libraries; BB-Group processes run first, so for them this is
            effectively zero.
        aslr_weakened: Pre-linking fixes library addresses — the §5
            security concern.
    """

    link_cost_factor: float = 0.25
    aslr_weakened: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.link_cost_factor <= 1.0:
            raise ConfigurationError("link_cost_factor must be in [0, 1]")

    def launch_saving_ns(self, unit: Unit, preceding_same_libs: bool) -> int:
        """Per-launch saving for a unit.

        Pre-link only pays on the *cold* dynamic link; when a preceding
        process already mapped the same libraries, the link is warm and
        pre-link saves nothing extra.
        """
        if unit.static_build:
            return 0  # nothing to pre-link
        if preceding_same_libs:
            return 0
        full = unit.cost.dynamic_link_ns
        return full - round(full * self.link_cost_factor)


@dataclass(frozen=True, slots=True)
class PreforkModel:
    """Warm template processes cloned instead of fork+exec'd.

    Attributes:
        pool_setup_ns: One-time cost of launching the template pool
            (paid during boot, before the group runs).
        clone_cost_ns: Per-process cost of cloning from a template,
            replacing the unit's fork + exec-read + link sequence.
    """

    pool_setup_ns: int = usec(25_000)
    clone_cost_ns: int = usec(120)

    def __post_init__(self) -> None:
        if self.pool_setup_ns < 0 or self.clone_cost_ns < 0:
            raise ConfigurationError("prefork costs cannot be negative")

    def launch_cost_without_ns(self, unit: Unit, exec_read_ns: int) -> int:
        """Conventional launch cost of one unit's processes."""
        per_process = unit.cost.fork_ns
        link = 0 if unit.static_build else unit.cost.dynamic_link_ns
        return unit.cost.processes * per_process + exec_read_ns + link

    def launch_cost_with_ns(self, unit: Unit) -> int:
        """Launch cost when cloning from a warm template."""
        return unit.cost.processes * self.clone_cost_ns

    def template_prelaunch_ns(self, unit: Unit, exec_read_ns: int) -> int:
        """Boot-time cost of pre-launching one warm template.

        The template must itself fork, read the binary, and link — the
        clone is cheap only because this work already happened, *during
        the boot* ("increased time to pre-launch user processes", §5).
        """
        link = 0 if unit.static_build else unit.cost.dynamic_link_ns
        return unit.cost.fork_ns + exec_read_ns + link

    def net_benefit_ns(self, units: Iterable[Unit],
                       exec_read_ns_fn) -> int:
        """Total saving minus the full overhead for a unit set.

        Overhead = the pool machinery plus every template's pre-launch.
        Negative for the BB Group: "the benefit ... of pre-fork does not
        exceed the overhead" (§5) because the group is small and runs once.
        """
        units = list(units)
        saved = sum(self.launch_cost_without_ns(u, exec_read_ns_fn(u))
                    - self.launch_cost_with_ns(u) for u in units)
        overhead = self.pool_setup_ns + sum(
            self.template_prelaunch_ns(u, exec_read_ns_fn(u)) for u in units)
        return saved - overhead


def static_build_saving_ns(units: Iterable[Unit]) -> int:
    """Per-boot saving of statically building a unit set (§5's choice):
    the whole dynamic-link cost disappears with zero boot-time setup."""
    return sum(u.cost.dynamic_link_ns for u in units if not u.static_build)
