"""Service Engine — BB's service-level components (§3.3).

Bundles the Booting Booster Group Isolator, the Booting Booster Manager,
the Pre-parser, and the Service Analyzer for one workload, and exposes the
executor hooks (edge filter, priority function) that the init manager
consumes.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.bb_manager import BootingBoosterManager
from repro.core.config import BBConfig
from repro.core.isolator import BBGroupIsolator
from repro.graph.analyzer import AnalyzerReport, ServiceAnalyzer
from repro.initsys.preparser import PreParsedCache, PreParser
from repro.initsys.registry import UnitRegistry
from repro.initsys.transaction import OrderingEdge
from repro.initsys.units import Unit, replace_unit


class ServiceEngine:
    """Service-level BB for one unit registry and completion definition."""

    def __init__(self, registry: UnitRegistry, completion_units: Iterable[str],
                 bb: BBConfig, extra_group_members: Iterable[str] = (),
                 manual_group: Iterable[str] | None = None):
        self.bb = bb
        self.registry = registry
        self.completion_units = tuple(completion_units)
        self.isolator = BBGroupIsolator(registry, self.completion_units,
                                        extra_members=extra_group_members)
        if manual_group is not None:
            # The Fig. 7 experiment mode: the group is declared by hand
            # ("we have manually added var.mount into the isolated BB
            # group") instead of being identified automatically.
            self.isolator.group = frozenset(n for n in manual_group
                                            if n in registry)
        self.bb_manager = BootingBoosterManager(self.isolator)
        self.preparser = PreParser()
        if bb.static_bb_group:
            self._apply_static_builds()

    def _apply_static_builds(self) -> None:
        """§5: statically build BB-Group binaries (no dynamic-link cost)."""
        for name in self.isolator.members_sorted():
            unit = self.registry.get(name)
            if not unit.static_build:
                clone = replace_unit(unit)
                clone.static_build = True
                self.registry.replace(clone)

    # ------------------------------------------------------ executor hooks

    @property
    def edge_filter(self) -> Callable[[OrderingEdge], bool] | None:
        """Isolator hook (None when group isolation is off)."""
        if not self.bb.group_isolation:
            return None
        return self.isolator.edge_filter

    @property
    def priority_fn(self) -> Callable[[Unit], int] | None:
        """BB Manager hook (None when priority boosting is off)."""
        if not self.bb.group_priority_boost:
            return None
        return self.bb_manager.priority_fn

    # ------------------------------------------------------------- tooling

    def build_cache(self) -> PreParsedCache:
        """Build the Pre-parser cache for this registry (build time)."""
        return self.preparser.build_cache(self.registry)

    def analyze(self) -> AnalyzerReport:
        """Run the Service Analyzer over the registry."""
        return ServiceAnalyzer(self.registry).analyze()

    @property
    def bb_group(self) -> frozenset[str]:
        """The isolated BB Group."""
        return self.isolator.group
