"""Exception hierarchy for the BB reproduction library.

Every exception raised by :mod:`repro` derives from :class:`ReproError` so
that callers may catch library failures with a single ``except`` clause
while still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """An inconsistency inside the discrete-event simulation engine.

    Raised, for example, when an event is scheduled in the past, when a
    process yields an unknown request object, or when the engine detects
    a deadlock (no runnable work but unfinished processes).
    """


class DeadlockError(SimulationError):
    """The simulation ran out of events while processes are still blocked."""

    def __init__(self, blocked: list[str]):
        self.blocked = list(blocked)
        names = ", ".join(self.blocked) or "<unknown>"
        super().__init__(f"simulation deadlock; blocked processes: {names}")


class InvariantViolationError(SimulationError):
    """A runtime invariant monitor caught the simulator misbehaving.

    Raised by :class:`repro.verify.InvariantMonitor` when a hooked check
    fails — simulated time running backwards, more running tasks than
    cores, a unit starting before its ordering predecessors, deferred
    work running before boot completion, or a deadlocked waiter left at
    quiescence.

    Attributes:
        invariant: Short machine-readable name of the violated invariant.
    """

    def __init__(self, invariant: str, detail: str):
        self.invariant = invariant
        super().__init__(f"invariant {invariant!r} violated: {detail}")


class HardwareError(ReproError):
    """Invalid hardware model configuration or an impossible device request."""


class SchemaError(ReproError):
    """An exported document does not match its published schema.

    Raised by :mod:`repro.analysis.schema` when a Chrome trace or a boot
    report JSON document is malformed — so broken exports fail inside the
    test suite instead of inside Perfetto or downstream tooling.
    """


class KernelError(ReproError):
    """Kernel boot-sequence model failure (bad config, missing module...)."""


class UnitError(ReproError):
    """Base class for init-system unit problems."""


class UnitParseError(UnitError):
    """A unit file could not be parsed.

    Attributes:
        filename: Name of the offending unit file (may be ``"<string>"``).
        lineno: 1-based line number of the first offending line, 0 if
            the problem is not tied to a single line.
    """

    def __init__(self, message: str, filename: str = "<string>", lineno: int = 0):
        self.filename = filename
        self.lineno = lineno
        location = f"{filename}:{lineno}" if lineno else filename
        super().__init__(f"{location}: {message}")


class UnitNotFoundError(UnitError):
    """A referenced unit does not exist in the unit registry."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(f"unit not found: {name!r}")


class DependencyCycleError(UnitError):
    """A transaction contains an unbreakable dependency cycle.

    Attributes:
        cycle: Unit names forming the cycle, in order.
    """

    def __init__(self, cycle: list[str]):
        self.cycle = list(cycle)
        super().__init__("dependency cycle: " + " -> ".join(self.cycle + self.cycle[:1]))


class TransactionError(UnitError):
    """A job transaction is internally inconsistent (e.g. conflicting jobs)."""


class ServiceFailureError(UnitError):
    """A service's start job failed during the simulated boot."""

    def __init__(self, unit: str, reason: str):
        self.unit = unit
        self.reason = reason
        super().__init__(f"service {unit!r} failed to start: {reason}")


class WorkloadError(ReproError):
    """A workload description is invalid or cannot be generated."""


class AnalysisError(ReproError):
    """Graph or boot-report analysis failed (e.g. no path to completion)."""


class RunnerError(ReproError):
    """A sweep or fleet execution tier failed as a whole.

    Raised by :class:`repro.runner.sweep.SweepRunner` when the worker
    pool breaks or the sweep is interrupted (the pool is drained and
    pending futures cancelled first, so no orphaned workers survive the
    error), and by the fleet worker pool for the analogous shard-level
    failures.
    """


class FleetError(ReproError):
    """The fleet boot service could not satisfy a request.

    Covers service-side failures that are not a single job's fault: a
    draining service rejecting new submissions, a dead shard, or an
    unusable service configuration.
    """


class ProtocolError(FleetError):
    """A malformed fleet wire message (bad JSON, unknown op, bad spec).

    Raised while decoding JSON-lines frames or while resolving a
    declarative job spec into a :class:`~repro.runner.jobs.SimJob`.
    """


class JournalError(FleetError):
    """The fleet write-ahead job journal is unusable.

    Raised by :mod:`repro.fleet.journal` for non-recoverable store
    problems: a corrupt record in the *middle* of the log (a torn tail is
    tolerated and skipped, but mid-log corruption means the file was
    damaged after it was written), an unreadable checkpoint document, or
    a record of an unknown type.
    """


class ConfigurationError(ReproError):
    """An invalid BB or simulation configuration value."""


class GenerationError(ReproError):
    """A boot-entry generation operation failed.

    Raised by :mod:`repro.generations` for store-level problems: a
    malformed or tampered generation document, a fingerprint mismatch on
    load, a commit that does not fast-forward its ref, or a rollback with
    no parent to fall back to.
    """


class SlotStateError(GenerationError):
    """An illegal A/B slot transition was requested.

    Raised by :class:`repro.generations.SlotState` when a transition
    would brick the simulated device — activating an empty slot, staging
    over the active slot, or confirming health with no trial underway.
    """
