"""Experiment drivers: one module per table/figure of the paper.

Each module exposes ``run(...)`` returning a structured result and
``render(result)`` producing the text the paper's artifact shows.  The
benchmark harness under ``benchmarks/`` and the examples both build on
these drivers, so every number in EXPERIMENTS.md is regenerable from one
function call.

| module | paper artifact |
|---|---|
| :mod:`repro.experiments.fig1_boot_sequence` | Fig. 1 overall boot sequence |
| :mod:`repro.experiments.fig2_dependency_graph` | Fig. 2 dependency graph |
| :mod:`repro.experiments.fig3_complexity` | Fig. 3 group fragmentation |
| :mod:`repro.experiments.fig5_rcu_bootchart` | Fig. 5(a) RCU Booster chart |
| :mod:`repro.experiments.fig6_breakdown` | Fig. 6 full breakdown |
| :mod:`repro.experiments.fig7_bbgroup_dbus` | Fig. 7 var.mount isolation |
| :mod:`repro.experiments.tradeoff` | §4.3 performance trade-off |
| :mod:`repro.experiments.kernel_opt` | §2.4 kernel optimization |
| :mod:`repro.experiments.background` | §2.1-2.3 background models |
| :mod:`repro.experiments.ablations` | design-choice ablations |
"""
