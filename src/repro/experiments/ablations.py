"""ABL — ablations over the design choices DESIGN.md calls out.

Four studies:

1. **Feature leave-one-out** — disable each BB feature from the full
   configuration (the complement of Fig. 6's cumulative attribution;
   differences between the two expose mechanism overlap).
2. **Init-scheme comparison** — sequential rcS, out-of-order (with and
   without path-check), parallel in-order (systemd-like), and systemd+BB
   on the same TV service set.
3. **Core-count scaling** — the same boot on 1/2/4/8 cores: BB exploits
   parallelism, the sequential baseline cannot.
4. **Commercialization growth** — open-source 136 services vs the ~266 of
   the commercial fork: BB keeps completion time nearly flat because the
   BB Group does not grow.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.analysis.report import format_table
from repro.core import BBConfig
from repro.hw.presets import ue48h6200
from repro.initsys.outoforder import OutOfOrderInitScheme
from repro.initsys.runlevels import AdvancedBootScript
from repro.initsys.sysv import SysVInitScheme
from repro.kernel.rcu import RCUSubsystem
from repro.quantities import to_msec
from repro.runner import SimJob, SweepRunner
from repro.sim import Simulator
from repro.workloads import commercial_tv_workload, opensource_tv_workload


@dataclass(frozen=True, slots=True)
class AblationResult:
    """All four ablation studies."""

    leave_one_out_ms: dict[str, float]
    full_ms: float
    scheme_ms: dict[str, float]
    scheme_violations: dict[str, int]
    core_scaling_ms: dict[int, tuple[float, float]]  # cores -> (no BB, BB)
    growth_ms: dict[str, tuple[float, float]]  # workload -> (no BB, BB)


def _scheme_user_space_ms() -> tuple[dict[str, float], dict[str, int]]:
    """User-space boot time under each init scheme, on equal footing
    (no kernel stage, no manager infrastructure — just service launch)."""
    times: dict[str, float] = {}
    violations: dict[str, int] = {}

    def fresh():
        sim = Simulator(cores=4)
        platform = ue48h6200().attach(sim)
        workload = opensource_tv_workload()
        # The baseline schemes have no kmod worker; grant them every
        # device node for free (a concession in the baselines' favour).
        device_paths = {f"/dev/{m.name}" for m in workload.boot_modules_factory()}
        paths = set(workload.preexisting_paths) | device_paths
        return sim, platform, workload, paths

    sim, platform, workload, paths = fresh()
    sysv = SysVInitScheme(sim, workload.fresh_registry(), platform.storage,
                          RCUSubsystem(sim), goal=workload.goal,
                          completion_units=workload.completion_units,
                          preexisting_paths=paths)
    sysv.spawn()
    sim.run()
    times["sequential rcS"] = to_msec(sysv.boot_complete_ns)
    violations["sequential rcS"] = 0

    for label, path_check in (("out-of-order", False),
                              ("out-of-order + path-check", True)):
        sim, platform, workload, paths = fresh()
        scheme = OutOfOrderInitScheme(
            sim, workload.fresh_registry(), platform.storage,
            RCUSubsystem(sim), goal=workload.goal,
            completion_units=workload.completion_units,
            path_check=path_check,
            preexisting_paths=paths)
        scheme.spawn()
        sim.run()
        times[label] = to_msec(scheme.result.boot_complete_ns)
        violations[label] = len(scheme.result.violations)

    sim, platform, workload, paths = fresh()
    abs_scheme = AdvancedBootScript(
        sim, workload.fresh_registry(), platform.storage, RCUSubsystem(sim),
        goal=workload.goal, completion_units=workload.completion_units,
        preexisting_paths=paths)
    abs_scheme.spawn()
    sim.run()
    times["run-levels (Advanced Boot Script)"] = to_msec(
        abs_scheme.boot_complete_ns)
    violations["run-levels (Advanced Boot Script)"] = 0
    return times, violations


def run(include_schemes: bool = True,
        runner: SweepRunner | None = None) -> AblationResult:
    """Run all ablation studies (scheme comparison optional, it is slow)."""
    runner = runner if runner is not None else SweepRunner()
    full_config = BBConfig.full()
    feature_names = [field.name for field in fields(BBConfig)]
    core_counts = (1, 2, 4, 8)

    # Every boot in studies 1, 3 and 4, as one deduplicated batch.
    jobs = [SimJob.boot(opensource_tv_workload, bb=full_config,
                        label="ablation full BB")]
    jobs += [SimJob.boot(opensource_tv_workload,
                         bb=full_config.with_feature(name, False),
                         label=f"ablation -{name}")
             for name in feature_names]
    for cores in core_counts:
        jobs.append(SimJob.boot(opensource_tv_workload, bb=BBConfig.none(),
                                cores=cores, label=f"ablation {cores}c no-BB"))
        jobs.append(SimJob.boot(opensource_tv_workload, bb=BBConfig.full(),
                                cores=cores, label=f"ablation {cores}c BB"))
    for factory in (opensource_tv_workload, commercial_tv_workload):
        jobs.append(SimJob.boot(factory, bb=BBConfig.none(),
                                label=f"growth {factory.__name__} no-BB"))
        jobs.append(SimJob.boot(factory, bb=BBConfig.full(),
                                label=f"growth {factory.__name__} BB"))
    reports = iter(runner.run(jobs))

    full_ms = next(reports).boot_complete_ms
    leave_one_out = {name: next(reports).boot_complete_ms - full_ms
                     for name in feature_names}

    scheme_ms: dict[str, float] = {}
    scheme_violations: dict[str, int] = {}
    if include_schemes:
        scheme_ms, scheme_violations = _scheme_user_space_ms()

    core_scaling = {
        cores: (next(reports).boot_complete_ms, next(reports).boot_complete_ms)
        for cores in core_counts}
    growth = {
        label: (next(reports).boot_complete_ms, next(reports).boot_complete_ms)
        for label in ("open-source (136 services)",
                      "commercial fork (>250 services)")}
    return AblationResult(leave_one_out_ms=leave_one_out, full_ms=full_ms,
                          scheme_ms=scheme_ms,
                          scheme_violations=scheme_violations,
                          core_scaling_ms=core_scaling, growth_ms=growth)


def render(result: AblationResult) -> str:
    """All ablation tables."""
    parts = []
    loo_rows = [(name, f"{delta:+.1f} ms")
                for name, delta in sorted(result.leave_one_out_ms.items(),
                                          key=lambda kv: -kv[1])]
    parts.append("Ablation 1 — leave-one-out cost on the full-BB boot "
                 f"({result.full_ms:.0f} ms)\n"
                 + format_table(["feature removed", "boot-time increase"],
                                loo_rows))
    if result.scheme_ms:
        scheme_rows = [(name, f"{ms:.0f} ms",
                        result.scheme_violations.get(name, 0))
                       for name, ms in result.scheme_ms.items()]
        parts.append("Ablation 2 — init schemes on the same service set "
                     "(user space only)\n"
                     + format_table(["scheme", "completion", "violations"],
                                    scheme_rows))
    scaling_rows = [(cores, f"{none:.0f} ms", f"{bb:.0f} ms",
                     f"{none / bb:.2f}x")
                    for cores, (none, bb) in result.core_scaling_ms.items()]
    parts.append("Ablation 3 — core-count scaling\n"
                 + format_table(["cores", "No BB", "BB", "BB gain"],
                                scaling_rows))
    growth_rows = [(name, f"{none:.0f} ms", f"{bb:.0f} ms")
                   for name, (none, bb) in result.growth_ms.items()]
    parts.append("Ablation 4 — commercialization growth\n"
                 + format_table(["service set", "No BB", "BB"], growth_rows))
    return "\n\n".join(parts)
