"""T-SNAPSHOT / T-COMPRESS — the §2.1-2.3 background models.

The arguments that motivate a fast *cold* boot:

* §2.1 hibernation: restoring a Galaxy-S6-sized snapshot takes ~10 s just
  for the image read; factory snapshots break with third-party apps;
  creating the image blocks shutdown.
* §2.1 suspend-to-RAM: fast, but lost the moment a TV is unplugged, and
  the silent-boot-then-suspend trick breaks the EU 1 W standby rule.
* §2.3 compression: decompression throughput (35 MiB/s on eight cores)
  is far below modern flash (300 MiB/s UFS), so compressed images no
  longer accelerate loading — the crossover sits at the decompressor's
  throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.hw.presets import (emmc_ue48h6200, galaxy_s6_like, hdd_barracuda,
                              nx300, ssd_850_evo, ue48h6200, ufs_galaxy_s6)
from repro.hw.storage import StorageDevice
from repro.kernel.image import KernelImage, compression_crossover_bps
from repro.kernel.snapshot import HibernationModel, SuspendToRamModel
from repro.quantities import MiB, to_msec, to_sec


@dataclass(frozen=True, slots=True)
class BackgroundResult:
    """All §2 background measurements."""

    snapshot_restore_s: dict[str, float]
    snapshot_create_s: dict[str, float]
    suspend_resume_s: float
    silent_boot_meets_eu_rule: bool
    compression_rows: tuple[tuple[str, float, float, bool], ...]
    crossover_mib_s: float


def run(image_mib: int = 64) -> BackgroundResult:
    """Compute every background model on the hardware presets."""
    hibernation = HibernationModel()
    platforms = {"Galaxy-S6-like (3 GiB, UFS)": galaxy_s6_like(),
                 "UE48H6200 TV (1 GiB, eMMC)": ue48h6200(),
                 "NX300 camera (512 MiB)": nx300()}
    restore = {name: to_sec(hibernation.restore_time_ns(p))
               for name, p in platforms.items()}
    create = {name: to_sec(hibernation.create_time_ns(p))
              for name, p in platforms.items()}
    # §2.1's success story: the NX300(M) camera with a small *factory*
    # snapshot (no third-party apps, tiny working set) boots in ~1 s.
    factory_camera = HibernationModel(image_fraction=0.13,
                                      restore_overhead_ns=200_000_000,
                                      third_party_apps=False)
    restore["NX300 factory snapshot (small image)"] = to_sec(
        factory_camera.restore_time_ns(nx300()))
    create["NX300 factory snapshot (small image)"] = to_sec(
        factory_camera.create_time_ns(nx300()))

    decompress_bps = MiB(35)
    image_plain = KernelImage(size_bytes=MiB(image_mib))
    image_packed = KernelImage(size_bytes=MiB(image_mib), compressed=True)
    devices: list[StorageDevice] = [ufs_galaxy_s6(), ssd_850_evo(),
                                    emmc_ue48h6200(), hdd_barracuda(),
                                    StorageDevice("old-NAND",
                                                  seq_read_bps=MiB(12),
                                                  rand_read_bps=MiB(3))]
    compression_rows = []
    for device in devices:
        plain_ms = to_msec(image_plain.load_time_ns(device, decompress_bps))
        packed_ms = to_msec(image_packed.load_time_ns(device, decompress_bps))
        compression_rows.append((device.name, plain_ms, packed_ms,
                                 packed_ms < plain_ms))

    active_ap = SuspendToRamModel(standby_power_w=3.0)  # silent-boot trick
    return BackgroundResult(
        snapshot_restore_s=restore,
        snapshot_create_s=create,
        suspend_resume_s=to_sec(SuspendToRamModel().resume_time_ns),
        silent_boot_meets_eu_rule=active_ap.meets_eu_standby_regulation(),
        compression_rows=tuple(compression_rows),
        crossover_mib_s=compression_crossover_bps(2.0, decompress_bps) / MiB(1),
    )


def render(result: BackgroundResult) -> str:
    """All three background tables."""
    snapshot_rows = [(name, f"{result.snapshot_restore_s[name]:.1f} s",
                      f"{result.snapshot_create_s[name]:.1f} s")
                     for name in result.snapshot_restore_s]
    compression_rows = [(name, f"{plain:.0f} ms", f"{packed:.0f} ms",
                         "yes" if helps else "no")
                        for name, plain, packed, helps
                        in result.compression_rows]
    return ("Section 2.1 — snapshot booting (restore / create)\n"
            + format_table(["platform", "restore", "create"], snapshot_rows)
            + f"\nsuspend-to-RAM resume: {result.suspend_resume_s:.1f} s, "
            "but unavailable after unplugging\n"
            "silent boot-then-suspend meets EU 1 W standby rule: "
            f"{'yes' if result.silent_boot_meets_eu_rule else 'no'}\n\n"
            "Section 2.3 — does compression still accelerate image loading?\n"
            + format_table(["storage", "plain", "compressed", "helps?"],
                           compression_rows)
            + f"\ncrossover: compression pays only below "
            f"{result.crossover_mib_s:.0f} MiB/s sequential read")
