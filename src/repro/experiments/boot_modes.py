"""T-BOOTMODES — the §1/§2 decision matrix: why cold boot + BB.

Every boot mechanism §2 surveys, evaluated on the TV against the three
constraints the paper derives from how people actually use TVs:

* users unplug TVs, so the mechanism must survive power loss,
* smart TVs have third-party apps, so factory snapshot images break,
* EU Regulation 801/2013 caps standby power at 1 W, killing the silent
  boot-then-suspend trick.

BB's cold boot is the only row that satisfies every constraint at an
acceptable latency — the paper's whole motivation, as one table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.core import BBConfig
from repro.hw.presets import ue48h6200
from repro.kernel.snapshot import HibernationModel, SuspendToRamModel
from repro.quantities import to_sec
from repro.runner import SimJob, SweepRunner
from repro.workloads import opensource_tv_workload


@dataclass(frozen=True, slots=True)
class BootMode:
    """One row of the decision matrix."""

    name: str
    latency_s: float
    survives_unplug: bool
    supports_third_party_apps: bool
    meets_eu_standby: bool
    note: str = ""

    @property
    def acceptable(self) -> bool:
        """Meets every §2 constraint with a tolerable latency (§1's
        3.5 s human-interaction bound, with a little slack)."""
        return (self.survives_unplug and self.supports_third_party_apps
                and self.meets_eu_standby and self.latency_s <= 4.0)


@dataclass(frozen=True, slots=True)
class BootModesResult:
    """All evaluated modes."""

    modes: tuple[BootMode, ...]

    def mode(self, name: str) -> BootMode:
        for mode in self.modes:
            if mode.name == name:
                return mode
        raise KeyError(name)

    @property
    def winners(self) -> list[str]:
        return [m.name for m in self.modes if m.acceptable]


def run(runner: SweepRunner | None = None) -> BootModesResult:
    """Evaluate every §2 mechanism on the TV."""
    runner = runner if runner is not None else SweepRunner()
    tv = ue48h6200()
    conventional, boosted = runner.run([
        SimJob.boot(opensource_tv_workload, bb=BBConfig.none(),
                    label="boot-modes conventional"),
        SimJob.boot(opensource_tv_workload, bb=BBConfig.full(),
                    label="boot-modes BB"),
    ])
    hibernation = HibernationModel()
    factory_snapshot = HibernationModel(third_party_apps=False)
    str_model = SuspendToRamModel()
    silent_boot = SuspendToRamModel(standby_power_w=3.0)

    modes = (
        BootMode("cold boot (conventional)",
                 to_sec(conventional.boot_complete_ns),
                 survives_unplug=True, supports_third_party_apps=True,
                 meets_eu_standby=True, note="too slow for users"),
        BootMode("cold boot + BB", to_sec(boosted.boot_complete_ns),
                 survives_unplug=True, supports_third_party_apps=True,
                 meets_eu_standby=True, note="the paper's answer"),
        BootMode("suspend-to-RAM (Instant On)",
                 to_sec(str_model.resume_time_ns),
                 survives_unplug=str_model.available_after_unplug(),
                 supports_third_party_apps=True,
                 meets_eu_standby=str_model.meets_eu_standby_regulation(),
                 note="state lost when unplugged"),
        BootMode("silent boot then suspend",
                 to_sec(str_model.resume_time_ns),
                 survives_unplug=True, supports_third_party_apps=True,
                 meets_eu_standby=silent_boot.meets_eu_standby_regulation(),
                 note="AP active: > 1 W standby"),
        BootMode("snapshot boot (factory image)",
                 to_sec(factory_snapshot.restore_time_ns(tv)),
                 survives_unplug=True,
                 supports_third_party_apps=False,
                 meets_eu_standby=True,
                 note="image invalid once apps installed"),
        BootMode("snapshot boot (runtime image)",
                 to_sec(hibernation.restore_time_ns(tv)),
                 survives_unplug=True, supports_third_party_apps=True,
                 meets_eu_standby=True,
                 note=f"shutdown blocked "
                      f"{to_sec(hibernation.create_time_ns(tv)):.0f} s "
                      "writing the image"),
    )
    return BootModesResult(modes=modes)


def render(result: BootModesResult) -> str:
    """The decision matrix."""
    def mark(flag: bool) -> str:
        return "yes" if flag else "NO"

    rows = [(m.name, f"{m.latency_s:.1f} s", mark(m.survives_unplug),
             mark(m.supports_third_party_apps), mark(m.meets_eu_standby),
             m.note)
            for m in result.modes]
    return ("Sections 1-2 — boot mechanisms vs the TV's constraints\n"
            + format_table(["mechanism", "latency", "unplug ok",
                            "3rd-party apps", "EU 1 W", "note"], rows)
            + f"\nacceptable (<~3.5 s, all constraints): "
            f"{', '.join(result.winners) or 'none'}")
