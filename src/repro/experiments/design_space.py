"""DS — analytically pre-filtered design-space sweep.

The question a platform team actually asks is not "what does this one
configuration boot in?" but "which corner of the feature space should we
ship?".  Answering it exhaustively means a DES boot per cell — hundreds
of simulations for a handful of interesting answers.  This experiment
runs the sweep the other way around:

1. every cell is solved by the closed-form boot predictor
   (:mod:`repro.analysis.predict`) through the
   :class:`~repro.analysis.predict.SweepPredictor` cache, which pays a
   machine solution only per distinct *services-phase* projection and
   shifts everything else analytically,
2. cells are ranked by predicted completion time,
3. only the per-workload top-``k`` frontier runs through the full DES
   (via :meth:`~repro.runner.sweep.SweepRunner.run_prefiltered`),
   confirming the analytic ranking with event-by-event execution.

Because the predictor is exact on unperturbed boots, the frontier the
DES confirms is *identical* to the frontier an exhaustive sweep would
have found — ``run(exhaustive=True)`` proves it by brute force, and the
benchmark harness gates on both the identity and the wall-time cut.

The swept axes are the six features with the richest interaction
surface: ``rcu_booster``, ``preparser``, ``deferred_executor``,
``ondemand_modularizer``, ``defer_startup_tasks`` and
``group_priority_boost`` — 64 combinations per workload per core count.
Core counts stay at 2 and 4: the ``group_priority_boost``-without-
``rcu_booster`` corner livelocks the DES on a single core (the §4.3
priority-inversion pathology), which the predictor reports as an
:class:`~repro.errors.AnalysisError` rather than hanging.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.analysis.report import format_table
from repro.core import BBConfig
from repro.runner import SimJob, SweepRunner
from repro.workloads import (appliance_workload, camera_workload,
                             opensource_tv_workload, phone_workload,
                             wearable_workload)

#: The swept feature axes (order fixes the cell labels).
SWEEP_AXES = ("rcu_booster", "preparser", "deferred_executor",
              "ondemand_modularizer", "defer_startup_tasks",
              "group_priority_boost")

#: Core counts per cell.  Never 1: see the module docstring.
SWEEP_CORES = (2, 4)

#: Frontier size confirmed by the DES, per workload.
FRONTIER_K = 4


@dataclass(frozen=True, slots=True)
class FrontierCell:
    """One DES-confirmed cell of a workload's frontier."""

    rank: int
    features: str  # comma list of enabled swept axes ("-" for none)
    cores: int
    predicted_ms: float
    des_ms: float


@dataclass(frozen=True, slots=True)
class WorkloadSweep:
    """One workload's slice of the design-space sweep."""

    label: str
    cells: int
    frontier: list[FrontierCell]
    log: list[str]


@dataclass(frozen=True, slots=True)
class DesignSpaceResult:
    """The whole pre-filtered sweep (plus the optional exhaustive check).

    Attributes:
        sweeps: Per-workload frontiers and skip statistics.
        cells: Total cells across all workloads.
        des_boots: Cells that actually reached the DES.
        prefilter_wall_s: Wall time of the pre-filtered sweep.
        exhaustive_wall_s: Wall time of the brute-force sweep, when
            ``exhaustive=True``; ``None`` otherwise.
        frontier_identical: Whether the analytic frontier matched the
            exhaustive DES frontier cell for cell (``None`` when the
            exhaustive sweep was skipped).
    """

    sweeps: list[WorkloadSweep]
    cells: int
    des_boots: int
    prefilter_wall_s: float
    exhaustive_wall_s: float | None = None
    frontier_identical: bool | None = None

    @property
    def speedup(self) -> float | None:
        """Exhaustive wall over pre-filtered wall (``None`` if unknown)."""
        if self.exhaustive_wall_s is None or self.prefilter_wall_s <= 0:
            return None
        return self.exhaustive_wall_s / self.prefilter_wall_s


def sweep_jobs(smoke: bool = False) -> list[tuple[str, list[SimJob]]]:
    """The sweep matrix: ``(workload label, jobs)`` per workload.

    Full: 5 workloads x 64 feature combinations x 2 core counts = 640
    cells.  Smoke: 2 workloads x 16 combinations (first four axes) x 2
    core counts = 64 cells.
    """
    if smoke:
        factories = [("tv", opensource_tv_workload),
                     ("camera", camera_workload)]
        axes = SWEEP_AXES[:4]
    else:
        factories = [("tv", opensource_tv_workload),
                     ("camera", camera_workload),
                     ("phone", phone_workload),
                     ("wearable", wearable_workload),
                     ("appliance", appliance_workload)]
        axes = SWEEP_AXES
    groups = []
    for label, factory in factories:
        jobs = []
        for bits in itertools.product((False, True), repeat=len(axes)):
            bb = BBConfig.none()
            for name, value in zip(axes, bits):
                bb = bb.with_feature(name, value)
            for cores in SWEEP_CORES:
                jobs.append(SimJob.boot(factory, bb=bb, cores=cores,
                                        label=f"ds {label}"))
        groups.append((label, jobs))
    return groups


def _cell_features(job: SimJob) -> str:
    enabled = [name for name in SWEEP_AXES
               if job.bb is not None and getattr(job.bb, name)]
    return ",".join(enabled) if enabled else "-"


def run(smoke: bool = False, runner: SweepRunner | None = None,
        exhaustive: bool = False, top_k: int = FRONTIER_K
        ) -> DesignSpaceResult:
    """Run the pre-filtered sweep (and optionally the brute-force check).

    Args:
        smoke: Shrink the matrix to 64 cells for CI.
        runner: Runner for the *frontier* DES boots; defaults to a fresh
            serial one.  The exhaustive check always uses its own fresh
            runner so cache hits cannot flatter the comparison.
        exhaustive: Also DES every cell and verify frontier identity.
        top_k: Frontier size per workload.
    """
    runner = runner if runner is not None else SweepRunner()
    sweeps: list[WorkloadSweep] = []
    total_cells = 0
    des_boots = 0
    outcomes_by_label: dict[str, tuple[list[SimJob], list[int]]] = {}

    prefilter_start = time.perf_counter()
    for label, jobs in sweep_jobs(smoke):
        outcome = runner.run_prefiltered(jobs, top_k=top_k)
        total_cells += len(jobs)
        des_boots += len(outcome.selected)
        frontier = [
            FrontierCell(rank=rank + 1,
                         features=_cell_features(jobs[index]),
                         cores=jobs[index].cores or 0,
                         predicted_ms=outcome.predictions[index]
                         .boot_complete_ns / 1e6,
                         des_ms=outcome.results[index]
                         .boot_complete_ns / 1e6)
            for rank, index in enumerate(outcome.selected)]
        sweeps.append(WorkloadSweep(label=label, cells=len(jobs),
                                    frontier=frontier, log=list(outcome.log)))
        outcomes_by_label[label] = (jobs, list(outcome.selected))
    prefilter_wall = time.perf_counter() - prefilter_start

    exhaustive_wall = None
    identical = None
    if exhaustive:
        identical = True
        exhaustive_start = time.perf_counter()
        with SweepRunner() as brute:
            for label, jobs in sweep_jobs(smoke):
                reports = brute.run(jobs)
                ranked = sorted(range(len(jobs)),
                                key=lambda i: (reports[i].boot_complete_ns, i))
                if ranked[:top_k] != outcomes_by_label[label][1]:
                    identical = False
        exhaustive_wall = time.perf_counter() - exhaustive_start

    return DesignSpaceResult(sweeps=sweeps, cells=total_cells,
                             des_boots=des_boots,
                             prefilter_wall_s=prefilter_wall,
                             exhaustive_wall_s=exhaustive_wall,
                             frontier_identical=identical)


def render(result: DesignSpaceResult) -> str:
    """Per-workload frontier tables plus the sweep-wide statistics."""
    parts = []
    for sweep in result.sweeps:
        rows = [(cell.rank, cell.features, cell.cores,
                 f"{cell.predicted_ms:.1f} ms", f"{cell.des_ms:.1f} ms")
                for cell in sweep.frontier]
        table = format_table(
            ["#", "enabled features", "cores", "predicted", "DES"], rows)
        parts.append(f"Design space — {sweep.label} "
                     f"({sweep.cells} cells)\n{table}\n"
                     + "\n".join(sweep.log))
    # Wall-clock figures appear only in exhaustive mode: the plain render
    # must be deterministic (the bench compares `experiment all` output
    # byte-for-byte across serial and parallel legs).
    summary = (f"total: {result.cells} cells, {result.des_boots} DES boots "
               f"({result.cells - result.des_boots} skipped)")
    if result.exhaustive_wall_s is not None:
        summary += (f"; pre-filtered sweep {result.prefilter_wall_s:.2f} s "
                    f"vs exhaustive DES {result.exhaustive_wall_s:.2f} s "
                    f"({result.speedup:.1f}x), frontier "
                    + ("identical" if result.frontier_identical
                       else "DIVERGED"))
    parts.append(summary)
    return "\n\n".join(parts)
