"""FAULT-MATRIX — boot robustness under seeded fault plans.

§2.5.2 (monitoring and recovery) and §2.5.3/§3.3 (boot-time consistency)
make robustness under partial failure a first-class requirement of CE
boot.  This experiment sweeps the named fault presets
(:mod:`repro.faults.presets`) across seeds, with and without BB, and
reports per preset:

* the completion rate (how many seeds reached boot completion at all),
* the boot-time spread of the completed runs versus the healthy baseline,
* how many completions were *degraded* (out-of-group casualties), and
* the culprit units named for the boots that did not complete.

Every run is an ordinary :class:`~repro.runner.jobs.SimJob` with the
plan embedded, so the matrix dedups, caches, and parallelizes like any
other sweep, and a failed boot is as reproducible as a healthy one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import BootReport
from repro.analysis.report import format_table
from repro.core import BBConfig
from repro.core.degraded import DegradedBootReport
from repro.faults import PRESETS, build_preset
from repro.runner import SimJob, SweepRunner
from repro.workloads.tizen_tv import opensource_tv_workload

#: Seeds swept per preset in the full matrix.
SEEDS = (1, 2, 3)

#: The subset the CI smoke run exercises (one seed, fast presets that
#: cover every injector stream: storage, services, deferred, paths).
SMOKE_PRESETS = ("storage-storm", "flaky-services", "missing-device")
SMOKE_SEEDS = (1,)


@dataclass(frozen=True, slots=True)
class PresetOutcome:
    """Aggregated results of one preset under one BB configuration."""

    preset: str
    total: int
    completed: int
    degraded_completions: int
    boot_ms: tuple[float, ...]  # completed boots only, seed order
    culprits: tuple[str, ...]  # one per non-completed boot, seed order
    injected_events: int

    @property
    def completion_rate(self) -> float:
        """Fraction of seeds that reached boot completion."""
        return self.completed / self.total if self.total else 0.0

    @property
    def spread_ms(self) -> float:
        """max - min boot time over the completed runs."""
        return max(self.boot_ms) - min(self.boot_ms) if self.boot_ms else 0.0

    @property
    def mean_ms(self) -> float:
        """Mean boot time over the completed runs."""
        return sum(self.boot_ms) / len(self.boot_ms) if self.boot_ms else 0.0


@dataclass(frozen=True, slots=True)
class FaultMatrixResult:
    """The full matrix: baseline plus per-preset outcomes, BB and no-BB."""

    baseline_bb_ms: float
    baseline_no_bb_ms: float
    bb: tuple[PresetOutcome, ...]
    no_bb: tuple[PresetOutcome, ...]
    smoke: bool


def _count_events(tally: dict) -> int:
    """Discrete injection events; the ``*_ns`` keys are time totals."""
    return sum(v for k, v in tally.items() if not k.endswith("_ns"))


def _summarize(preset: str, results: list) -> PresetOutcome:
    completed = [r for r in results if isinstance(r, BootReport)]
    failed = [r for r in results if isinstance(r, DegradedBootReport)]
    injected = 0
    for report in completed:
        injected += _count_events(report.injected_faults)
    for report in failed:
        injected += _count_events(report.injected_faults)
    return PresetOutcome(
        preset=preset,
        total=len(results),
        completed=len(completed),
        degraded_completions=sum(1 for r in completed if r.degraded),
        boot_ms=tuple(r.boot_complete_ms for r in completed),
        culprits=tuple(r.culprit_unit or "<unknown>" for r in failed),
        injected_events=injected,
    )


def run(runner: SweepRunner | None = None,
        smoke: bool = False, branch: bool = False) -> FaultMatrixResult:
    """Sweep the fault presets across seeds, BB and no-BB.

    ``branch=True`` (only honored when no ``runner`` is supplied) routes
    the sweep through the checkpoint/fork engine: cells sharing a boot
    prefix run as one recorded prefix plus forked suffixes — same
    results, fewer full boots.
    """
    runner = runner if runner is not None else SweepRunner(branch=branch)
    presets = SMOKE_PRESETS if smoke else tuple(PRESETS)
    seeds = SMOKE_SEEDS if smoke else SEEDS

    jobs = [SimJob.boot(opensource_tv_workload, bb=BBConfig.full(),
                        label="fault-matrix baseline BB"),
            SimJob.boot(opensource_tv_workload, bb=BBConfig.none(),
                        label="fault-matrix baseline no-BB")]
    for preset in presets:
        for config, tag in ((BBConfig.full(), "BB"), (BBConfig.none(), "no-BB")):
            for seed in seeds:
                jobs.append(SimJob.boot(
                    opensource_tv_workload, bb=config,
                    fault_plan=build_preset(preset, seed),
                    label=f"fault-matrix {preset} seed={seed} {tag}"))
    results = runner.run(jobs)

    baseline_bb, baseline_no_bb = results[0], results[1]
    cursor = 2
    bb_outcomes: list[PresetOutcome] = []
    no_bb_outcomes: list[PresetOutcome] = []
    for preset in presets:
        bb_outcomes.append(_summarize(preset, results[cursor:cursor + len(seeds)]))
        cursor += len(seeds)
        no_bb_outcomes.append(_summarize(preset,
                                         results[cursor:cursor + len(seeds)]))
        cursor += len(seeds)
    return FaultMatrixResult(
        baseline_bb_ms=baseline_bb.boot_complete_ms,
        baseline_no_bb_ms=baseline_no_bb.boot_complete_ms,
        bb=tuple(bb_outcomes),
        no_bb=tuple(no_bb_outcomes),
        smoke=smoke,
    )


def _rows(outcomes: tuple[PresetOutcome, ...], baseline_ms: float) -> list:
    rows = []
    for outcome in outcomes:
        if outcome.boot_ms:
            boots = (f"{outcome.mean_ms:.0f} ms "
                     f"({outcome.mean_ms - baseline_ms:+.0f}, "
                     f"spread {outcome.spread_ms:.0f})")
        else:
            boots = "-"
        culprits = ", ".join(sorted(set(outcome.culprits))) or "-"
        rows.append((outcome.preset,
                     f"{outcome.completed}/{outcome.total}",
                     str(outcome.degraded_completions),
                     boots,
                     str(outcome.injected_events),
                     culprits))
    return rows


def render(result: FaultMatrixResult) -> str:
    """Completion-rate and boot-time-spread tables, BB and no-BB."""
    header = ["preset", "completed", "degraded", "boot time vs baseline",
              "faults", "culprits"]
    scope = "smoke subset" if result.smoke else "full matrix"
    out = [f"Fault matrix ({scope}; §2.5.2 / §2.5.3): completion rate and "
           "boot-time spread under seeded fault plans",
           f"\nBB (baseline {result.baseline_bb_ms:.0f} ms)",
           format_table(header, _rows(result.bb, result.baseline_bb_ms)),
           f"\nNo BB (baseline {result.baseline_no_bb_ms:.0f} ms)",
           format_table(header, _rows(result.no_bb, result.baseline_no_bb_ms))]
    completed = sum(o.completed for o in result.bb + result.no_bb)
    total = sum(o.total for o in result.bb + result.no_bb)
    out.append(f"\noverall completion rate: {completed}/{total}; every run "
               "is seeded and byte-reproducible (same plan + seed = same boot)")
    return "\n".join(out)
