"""FIG1 — the overall boot sequence of a TV before BB (Fig. 1).

Figure 1 shows the conventional (pre-BB, but commercially optimized) boot
timeline: bootloader, kernel initialization (0.698 s), init-scheme
initialization (0.195 s), then user-space services and applications up to
the ~8.1 s completion.  This driver runs the no-BB boot and reports the
same segmentation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import BootReport
from repro.analysis.report import format_table
from repro.core import BBConfig, BootSimulation
from repro.quantities import to_msec
from repro.workloads import opensource_tv_workload
from repro.workloads.base import Workload


@dataclass(frozen=True, slots=True)
class Fig1Result:
    """The conventional boot timeline."""

    report: BootReport

    @property
    def segments_ms(self) -> dict[str, float]:
        """Named segments of the timeline, in order, in milliseconds."""
        timings = self.report.kernel_timings
        return {
            "bootloader": to_msec(timings.bootloader_ns),
            "kernel (memory init)": to_msec(timings.meminit_ns),
            "kernel (core + drivers)": to_msec(timings.core_ns
                                               + timings.initcalls_ns),
            "kernel (rootfs mount)": to_msec(timings.rootfs_ns),
            "init scheme initialization": to_msec(self.report.stages.init_init_ns),
            "services & applications": to_msec(self.report.stages.services_ns),
        }


def run(workload: Workload | None = None) -> Fig1Result:
    """Run the conventional (No BB) boot."""
    report = BootSimulation(workload or opensource_tv_workload(),
                            BBConfig.none()).run()
    return Fig1Result(report=report)


def render(result: Fig1Result) -> str:
    """The Fig. 1 timeline as a table."""
    rows = [(name, f"{value:.1f} ms")
            for name, value in result.segments_ms.items()]
    rows.append(("TOTAL (boot completion)",
                 f"{result.report.boot_complete_ms:.1f} ms"))
    return ("Figure 1 — overall booting sequence of a TV (conventional)\n"
            + format_table(["segment", "duration"], rows))
