"""FIG2 — the service dependency graph (Fig. 2).

Figure 2 draws the 136 services of the open-source Tizen TV OS with red
(strong) and green (weak) dependency edges, noting that commercialization
almost doubles the node count.  This driver reports the same statistics
for our generated graphs and exports the Graphviz DOT for visual
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.graph.visualize import Figure2Stats, figure2_stats, to_dot
from repro.workloads import commercial_tv_workload, opensource_tv_workload


@dataclass(frozen=True, slots=True)
class Fig2Result:
    """Statistics for the open-source set and the commercialization fork."""

    opensource: Figure2Stats
    commercial: Figure2Stats
    opensource_dot: str

    @property
    def growth_factor(self) -> float:
        """Service-count growth under commercialization (~2x in §2.5)."""
        return self.commercial.services / self.opensource.services


def run() -> Fig2Result:
    """Compute the Fig. 2 statistics for both service sets."""
    opensource_registry = opensource_tv_workload().fresh_registry()
    commercial_registry = commercial_tv_workload().fresh_registry()
    return Fig2Result(
        opensource=figure2_stats(opensource_registry),
        commercial=figure2_stats(commercial_registry),
        opensource_dot=to_dot(opensource_registry, title="tizen-tv-opensource"),
    )


def render(result: Fig2Result) -> str:
    """The statistics table (the DOT graph is in ``opensource_dot``)."""
    def row(name, getter):
        return (name, getter(result.opensource), getter(result.commercial))

    rows = [
        row("services", lambda s: s.services),
        row("units (incl. targets)", lambda s: s.units),
        row("total declared edges", lambda s: s.edges),
        row("strong (Requires, red)", lambda s: s.strong_edges),
        row("weak (Wants, green)", lambda s: s.weak_edges),
        row("ordering (Before/After)", lambda s: s.ordering_edges),
        row("max fan-in", lambda s: s.max_fan_in),
        row("max fan-out", lambda s: s.max_fan_out),
        row("avg degree", lambda s: f"{s.avg_degree:.2f}"),
    ]
    return ("Figure 2 — service dependency graph statistics\n"
            + format_table(["metric", "open-source", "commercial"], rows)
            + f"\nservice growth factor: {result.growth_factor:.2f}x")
