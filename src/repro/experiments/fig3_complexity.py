"""FIG3 — dependency complexity from a single new service (Fig. 3).

Figure 3 shows how adding one service (``c`` in group *a*, required by
service ``a`` of group *b*, while group *b*'s earlier members must precede
group *a*) fragments group *b* and, pushed further, creates a cycle across
the groups.  This driver builds the scenario, measures fragmentation
before and after, and demonstrates the cycle case through the Service
Analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.graph.analyzer import AnalyzerReport, ServiceAnalyzer
from repro.graph.fragmentation import FragmentationReport, group_fragmentation
from repro.initsys.registry import UnitRegistry
from repro.initsys.units import Unit


def _grouped_registry(with_new_service: bool) -> tuple[UnitRegistry, dict[str, str]]:
    """Two developer groups; optionally the disruptive new service c."""
    units = [
        # group a
        Unit(name="a1.service"),
        Unit(name="a2.service", after=["a1.service"]),
        # group b: b1 -> b2 -> b3 chain
        Unit(name="b1.service"),
        Unit(name="b2.service", after=["b1.service"]),
        Unit(name="b3.service", after=["b2.service"]),
    ]
    groups = {"a1.service": "a", "a2.service": "a",
              "b1.service": "b", "b2.service": "b", "b3.service": "b"}
    if with_new_service:
        # New service c joins group a; it must come after group b's head
        # (platform init) while group b's tail requires it.
        units.append(Unit(name="c.service", after=["b1.service"]))
        units[4] = Unit(name="b3.service", after=["b2.service"],
                        requires=["c.service"])
        groups["c.service"] = "a"
    return UnitRegistry(units), groups


def _cyclic_registry() -> UnitRegistry:
    """The escalated Fig. 3 case: the new dependency closes a cycle."""
    return UnitRegistry([
        Unit(name="a1.service"),
        Unit(name="c.service", after=["b3.service"]),  # c after b's tail
        Unit(name="b1.service"),
        Unit(name="b2.service", after=["b1.service"]),
        Unit(name="b3.service", after=["b2.service"], requires=["c.service"]),
    ])


@dataclass(frozen=True, slots=True)
class Fig3Result:
    """Fragmentation before/after, and the cycle-case analyzer report."""

    before: FragmentationReport
    after: FragmentationReport
    cycle_report: AnalyzerReport

    @property
    def group_b_split(self) -> bool:
        """Did the new service force group b apart?"""
        return self.after.fragments.get("b", 0) > self.before.fragments.get("b", 0)


def run() -> Fig3Result:
    """Build and measure the Fig. 3 scenario."""
    registry_before, groups_before = _grouped_registry(with_new_service=False)
    registry_after, groups_after = _grouped_registry(with_new_service=True)
    return Fig3Result(
        before=group_fragmentation(registry_before, groups_before),
        after=group_fragmentation(registry_after, groups_after),
        cycle_report=ServiceAnalyzer(_cyclic_registry()).analyze(),
    )


def render(result: Fig3Result) -> str:
    """Fragment counts per group, before and after the new service."""
    groups = sorted(set(result.before.fragments) | set(result.after.fragments))
    rows = [(g, result.before.fragments.get(g, 0),
             result.after.fragments.get(g, 0)) for g in groups]
    cycles = (len(result.cycle_report.of_kind("cycle"))
              + len(result.cycle_report.of_kind("ordering-cycle")))
    return ("Figure 3 — group fragmentation from one new service\n"
            + format_table(["group", "fragments before", "fragments after"], rows)
            + f"\nescalated case: analyzer reports {cycles} cycle(s) "
            "across the groups")
