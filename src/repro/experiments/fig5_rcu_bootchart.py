"""FIG5A — bootcharts showing the RCU Booster effect (Fig. 5(a)).

Figure 5(a) compares systemd-bootchart graphs with and without the RCU
Booster: "the boosted case shows earlier launching of a greater number of
tasks; i.e., services in the bottom start earlier".  This driver runs the
two boots (identical except for the RCU Booster), builds both charts, and
quantifies the claim as the number of services launched by a set of
checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.bootchart import BootChart, render_ascii
from repro.core import BBConfig, BootSimulation
from repro.quantities import sec, to_msec
from repro.workloads import opensource_tv_workload
from repro.workloads.base import Workload

#: Timeline checkpoints at which launched-service counts are compared.
CHECKPOINTS_NS = (sec(2), sec(3), sec(4), sec(5), sec(6))


@dataclass(frozen=True, slots=True)
class Fig5Result:
    """Both charts plus the launched-by-checkpoint comparison."""

    conventional: BootChart
    boosted: BootChart

    def launched_at_checkpoints(self) -> list[tuple[float, int, int]]:
        """(checkpoint ms, conventional count, boosted count) rows."""
        return [(to_msec(t), self.conventional.launched_before(t),
                 self.boosted.launched_before(t)) for t in CHECKPOINTS_NS]

    def ready_at_checkpoints(self) -> list[tuple[float, int, int]]:
        """(checkpoint ms, conventional count, boosted count) of services
        fully up — the visible effect of the figure: bars end earlier."""
        return [(to_msec(t), self.conventional.ready_before(t),
                 self.boosted.ready_before(t)) for t in CHECKPOINTS_NS]

    @property
    def boosted_launches_earlier(self) -> bool:
        """The figure's claim, as a predicate over every checkpoint."""
        return all(boosted >= conventional for _, conventional, boosted
                   in self.launched_at_checkpoints())

    @property
    def boosted_ready_earlier(self) -> bool:
        """Services come fully up earlier at every checkpoint."""
        return all(boosted >= conventional for _, conventional, boosted
                   in self.ready_at_checkpoints())


def run(workload: Workload | None = None) -> Fig5Result:
    """Boot twice: RCU Booster off vs on (everything else identical)."""
    workload_factory = workload or opensource_tv_workload()
    conventional = BootSimulation(workload_factory, BBConfig.none()).run()
    boosted = BootSimulation(
        opensource_tv_workload() if workload is None else workload,
        BBConfig.none().with_feature("rcu_booster", True)).run()
    return Fig5Result(conventional=BootChart.from_report(conventional),
                      boosted=BootChart.from_report(boosted))


def render(result: Fig5Result, with_charts: bool = False) -> str:
    """Checkpoint table, optionally with the two ASCII bootcharts."""
    launched = {ms: (c, b) for ms, c, b in result.launched_at_checkpoints()}
    ready = {ms: (c, b) for ms, c, b in result.ready_at_checkpoints()}
    rows = [(f"{ms:.0f} ms", launched[ms][0], launched[ms][1],
             ready[ms][0], ready[ms][1]) for ms in launched]
    text = ("Figure 5(a) — services launched/up by checkpoint "
            "(conventional vs RCU Booster)\n"
            + format_table(["by time", "launched (conv)", "launched (boost)",
                            "up (conv)", "up (boost)"], rows))
    if with_charts:
        text += ("\n\n--- conventional ---\n"
                 + render_ascii(result.conventional, max_rows=25)
                 + "\n\n--- boosted ---\n"
                 + render_ascii(result.boosted, max_rows=25))
    return text
