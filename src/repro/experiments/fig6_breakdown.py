"""FIG6 — the full No-BB vs BB breakdown (Fig. 6), the paper's main table.

The paper attributes the 8.1 s -> 3.5 s reduction to individual
mechanisms:

* (a) kernel: memory init 370 -> 110 ms, rootfs 110 -> 75 ms,
* (b) init initialization 195 -> 71 ms (six deferred tasks, 124 ms),
* (c) RCU Booster 1828 ms, Deferred Executor 496 ms, On-demand
  Modularizer 428 ms,
* (d) Pre-parser 150 + 231 ms, BB Group Isolator + Manager 1101 ms.

The reproduction attributes savings **cumulatively**: starting from the
conventional boot, features are enabled one at a time in deployment order
and each delta is credited to the feature that was just turned on.
(Leave-one-out attribution is also computed by the ablation experiment;
the two differ because the mechanisms overlap — e.g. once the BB Manager
prioritizes the critical chain, module loading barely hurts it.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import BootReport, speedup
from repro.analysis.report import ComparisonTable, format_table
from repro.core import BBConfig, BootSimulation
from repro.runner import SimJob, SweepRunner
from repro.workloads import opensource_tv_workload
from repro.workloads.base import Workload

#: Deployment order used for cumulative attribution, and the paper's
#: Fig. 6 saving for each feature (milliseconds).
PAPER_FEATURE_SAVINGS_MS: tuple[tuple[str, float], ...] = (
    ("deferred_meminit", 260.0),
    ("deferred_journal", 35.0),
    ("defer_startup_tasks", 124.0),
    ("rcu_booster", 1828.0),
    ("deferred_executor", 496.0),
    ("preparser", 381.0),
    ("group_isolation", 0.0),  # reported jointly with the manager below
    ("group_priority_boost", 1101.0),
    ("ondemand_modularizer", 428.0),
    ("static_bb_group", 0.0),  # §5: not separately quantified
)

#: Paper endpoints.
PAPER_NO_BB_MS = 8100.0
PAPER_BB_MS = 3500.0


@dataclass(frozen=True, slots=True)
class Fig6Result:
    """Everything Fig. 6 reports."""

    no_bb: BootReport
    bb: BootReport
    cumulative_savings_ms: dict[str, float]

    @property
    def total_saving_ms(self) -> float:
        return self.no_bb.boot_complete_ms - self.bb.boot_complete_ms

    @property
    def reduction(self) -> float:
        """The headline relative reduction (~0.57 in the paper)."""
        return speedup(self.no_bb.boot_complete_ns, self.bb.boot_complete_ns)

    def bb_group_saving_ms(self) -> float:
        """Isolator + Manager combined (the paper's 1101 ms row)."""
        return (self.cumulative_savings_ms["group_isolation"]
                + self.cumulative_savings_ms["group_priority_boost"])


def run(workload: Workload | None = None,
        runner: SweepRunner | None = None) -> Fig6Result:
    """Run the cumulative feature build-up and the two endpoints."""
    configs = [BBConfig.none()]
    for feature, _ in PAPER_FEATURE_SAVINGS_MS:
        configs.append(configs[-1].with_feature(feature, True))

    if workload is not None:
        # A live Workload instance is not declarative (its factories are
        # closures), so it cannot ride the job runner; boot it directly.
        reports = [BootSimulation(workload, config).run()
                   for config in configs]
    else:
        runner = runner if runner is not None else SweepRunner()
        reports = runner.run([
            SimJob.boot(opensource_tv_workload, bb=config,
                        label=f"fig6 +{feature}")
            for config, feature in zip(
                configs, ("baseline",
                          *(name for name, _ in PAPER_FEATURE_SAVINGS_MS)))])

    no_bb = reports[0]
    savings: dict[str, float] = {}
    previous_ms = no_bb.boot_complete_ms
    for (feature, _), report in zip(PAPER_FEATURE_SAVINGS_MS, reports[1:]):
        savings[feature] = previous_ms - report.boot_complete_ms
        previous_ms = report.boot_complete_ms
    return Fig6Result(no_bb=no_bb, bb=reports[-1],
                      cumulative_savings_ms=savings)


def render(result: Fig6Result) -> str:
    """The Fig. 6 tables: stage comparison + per-feature attribution."""
    stages = ComparisonTable(title="Figure 6 — boot stages (No BB vs BB)")
    stages.add("(a) kernel initialization", result.no_bb.stages.kernel_ns,
               result.bb.stages.kernel_ns)
    stages.add("    memory initialization",
               result.no_bb.kernel_timings.meminit_ns,
               result.bb.kernel_timings.meminit_ns)
    stages.add("    rootfs mount", result.no_bb.kernel_timings.rootfs_ns,
               result.bb.kernel_timings.rootfs_ns)
    stages.add("(b) init initialization", result.no_bb.stages.init_init_ns,
               result.bb.stages.init_init_ns)
    stages.add("(c)+(d) services & applications",
               result.no_bb.stages.services_ns, result.bb.stages.services_ns)
    stages.add("TOTAL", result.no_bb.boot_complete_ns,
               result.bb.boot_complete_ns)

    feature_rows = []
    for feature, paper_ms in PAPER_FEATURE_SAVINGS_MS:
        measured = result.cumulative_savings_ms[feature]
        paper_text = f"{paper_ms:.0f} ms" if paper_ms else "-"
        feature_rows.append((feature, f"{measured:.1f} ms", paper_text))
    feature_rows.append(("BB Group (isolator + manager)",
                         f"{result.bb_group_saving_ms():.1f} ms", "1101 ms"))
    feature_table = format_table(["feature (cumulative)", "measured", "paper"],
                                 feature_rows)
    return (stages.render()
            + f"\n\nreduction: {result.reduction:.1%} "
            f"(paper: ~57%: {PAPER_NO_BB_MS:.0f} -> {PAPER_BB_MS:.0f} ms)\n\n"
            + "Per-feature savings\n" + feature_table)
