"""FIG7 — advancing dbus.service by isolating var.mount (Fig. 7).

§4.2: although administrators forbid it, "service and application
developers have added ordering dependencies between their own services
and var.mount (about a dozen in the final release) so that their services
may be launched as soon as possible".  The experiment manually adds
**only** ``var.mount`` to the BB Group (dbus.service deliberately not
isolated) and observes dbus.service launching at 195 ms instead of 450 ms.

Launch times are measured from the start of service launching (the
bootchart origin), matching the figure's x-axis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.bootchart import BootChart
from repro.core import BBConfig, BootSimulation
from repro.quantities import to_msec
from repro.workloads import opensource_tv_workload
from repro.workloads.base import Workload

#: Paper measurements (ms from the start of service launching).
PAPER_CONVENTIONAL_DBUS_MS = 450.0
PAPER_BOOSTED_DBUS_MS = 195.0


@dataclass(frozen=True, slots=True)
class Fig7Result:
    """dbus/var.mount launch timings under both configurations."""

    conventional_chart: BootChart
    boosted_chart: BootChart
    conventional_origin_ns: int
    boosted_origin_ns: int

    def _relative(self, chart: BootChart, origin_ns: int,
                  unit: str) -> tuple[float, float]:
        bar = chart.bar(unit)
        return (to_msec(bar.start_ns - origin_ns),
                to_msec((bar.ready_ns or bar.end_ns) - origin_ns))

    def conventional_ms(self, unit: str) -> tuple[float, float]:
        """(launch, ready) of ``unit``, ms from the service-launch origin."""
        return self._relative(self.conventional_chart,
                              self.conventional_origin_ns, unit)

    def boosted_ms(self, unit: str) -> tuple[float, float]:
        """(launch, ready) under var.mount isolation."""
        return self._relative(self.boosted_chart, self.boosted_origin_ns, unit)

    @property
    def dbus_advanced_by_ms(self) -> float:
        """How much earlier dbus launches with var.mount isolated."""
        return self.conventional_ms("dbus.service")[0] - \
            self.boosted_ms("dbus.service")[0]

    @property
    def advance_factor(self) -> float:
        """Conventional/boosted launch-time ratio (paper: 450/195 ~ 2.3)."""
        boosted = self.boosted_ms("dbus.service")[0]
        return self.conventional_ms("dbus.service")[0] / max(boosted, 1e-9)


def _service_launch_origin_ns(simulation: BootSimulation) -> int:
    """When the executor began launching jobs (the bootchart origin)."""
    tracer = simulation.sim.tracer
    service_spans = tracer.spans_in("service")
    return min(s.start_ns for s in service_spans)


def run(workload: Workload | None = None) -> Fig7Result:
    """Boot conventionally, then with only var.mount manually isolated."""
    conventional_sim = BootSimulation(workload or opensource_tv_workload(),
                                      BBConfig.none())
    conventional = conventional_sim.run()

    # The paper's partial run both isolates var.mount and "executes BB
    # Group as a topmost job", i.e. the manager prioritizes it too.
    isolation_only = (BBConfig.none()
                      .with_feature("group_isolation", True)
                      .with_feature("group_priority_boost", True))
    boosted_sim = BootSimulation(
        opensource_tv_workload() if workload is None else workload,
        isolation_only, manual_bb_group=("var.mount",))
    boosted = boosted_sim.run()

    return Fig7Result(
        conventional_chart=BootChart.from_report(conventional),
        boosted_chart=BootChart.from_report(boosted),
        conventional_origin_ns=_service_launch_origin_ns(conventional_sim),
        boosted_origin_ns=_service_launch_origin_ns(boosted_sim),
    )


def render(result: Fig7Result) -> str:
    """The Fig. 7 comparison for var.mount (1) and dbus.service (2)."""
    rows = []
    for marker, unit in (("(1)", "var.mount"), ("(2)", "dbus.service")):
        conventional_launch, conventional_ready = result.conventional_ms(unit)
        boosted_launch, boosted_ready = result.boosted_ms(unit)
        rows.append((f"{marker} {unit}",
                     f"{conventional_launch:.0f} / {conventional_ready:.0f} ms",
                     f"{boosted_launch:.0f} / {boosted_ready:.0f} ms"))
    return ("Figure 7 — effect of adding var.mount to the BB Group "
            "(launch / ready, from service-launch start)\n"
            + format_table(["unit", "conventional", "var.mount isolated"], rows)
            + f"\ndbus.service advanced by {result.dbus_advanced_by_ms:.0f} ms "
            f"({result.advance_factor:.1f}x; paper: 450 -> 195 ms, 2.3x)")
