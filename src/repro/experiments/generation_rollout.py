"""GENERATION-ROLLOUT — the boot-time trajectory across releases.

The paper measures one frozen image; a shipped device's boot time is a
*trajectory* across firmware generations, and every OTA update is a
chance to regress it.  This experiment stages three archetypal updates
over the demo fleet through the OTA campaign engine
(:mod:`repro.generations`):

``clean``
    A maintenance release with an unchanged boot profile — the control:
    every device must update, zero rollbacks (no false positives).
``regressed``
    A release that drops the preparser and the deferred executor,
    regressing boot ~24% past the 1.10x gate — the health gate's
    predictor comparison must detect it and roll every updated device
    back, then halt the campaign.
``broken``
    A release shipping a broken boot-critical unit — the degraded trial
    boot must fail health outright and roll back the same way.

Each campaign reports per-wave verdicts, rollback counts and how many
rollbacks the recovery ladder's ``slot-rollback`` rung independently
verified.  Everything is deterministic; the rendered table is a stable
artifact.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.report import format_table
from repro.generations import demo_store, run_rollout

#: The update archetypes staged, in order.
KINDS = ("clean", "regressed", "broken")


@dataclass(slots=True)
class RolloutTrajectory:
    """Campaign reports per update archetype."""

    devices: int
    waves: int
    reports: dict[str, dict[str, Any]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """The gate behaved: no false positives, no missed regressions."""
        clean = self.reports.get("clean", {})
        if clean.get("rollbacks", -1) != 0:
            return False
        for kind in ("regressed", "broken"):
            report = self.reports.get(kind, {})
            if report.get("rollbacks", 0) == 0:
                return False
            if report.get("rollbacks") != sum(
                    wave["rollbacks_verified"] for wave in report["waves"]):
                return False
        return True


def run(smoke: bool = False) -> RolloutTrajectory:
    """Stage all three update archetypes over fresh demo fleets."""
    devices, waves = (6, 2) if smoke else (12, 3)
    trajectory = RolloutTrajectory(devices=devices, waves=waves)
    for kind in KINDS:
        with tempfile.TemporaryDirectory() as tmp:
            store = demo_store(tmp, kind)
            trajectory.reports[kind] = run_rollout(
                store, devices=devices, waves=waves)
    return trajectory


def render(trajectory: RolloutTrajectory) -> str:
    """The rollout-trajectory table."""
    rows = []
    for kind in KINDS:
        report = trajectory.reports[kind]
        verified = sum(wave["rollbacks_verified"]
                       for wave in report["waves"])
        halted = (f"after wave {report['halted_after']}"
                  if report["halted_after"] is not None else "no")
        rows.append((
            kind,
            f"{report['devices_updated']}/{report['devices']}",
            f"{report['healthy']}",
            f"{report['rollbacks']}",
            f"{verified}/{report['rollbacks']}" if report["rollbacks"]
            else "-",
            halted,
        ))
    first = trajectory.reports[KINDS[0]]
    out = [
        "Generation rollout: OTA campaigns over the demo fleet "
        f"({trajectory.devices} devices / {trajectory.waves} waves, "
        f"reference {first['reference_ms']:.3f} ms, gate "
        f"{first['regression_threshold']:.2f}x)",
        format_table(
            ["update", "updated", "healthy", "rollbacks", "verified",
             "halted"], rows),
        ("rollback gate: " + ("correct (clean update rolled back nothing; "
                              "regressed/broken rolled back and verified)"
                              if trajectory.ok else "FAILED")),
    ]
    return "\n".join(out)
