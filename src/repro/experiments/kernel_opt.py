"""T-KERNELOPT — the §2.4 conventional kernel optimization.

Before BB, the authors reduced kernel boot from 6.127 s to 0.698 s by
disabling diagnostic subsystems (debugging, tracing, logging, profiling)
and aggressively modularizing drivers out of the kernel boot path.  This
driver sweeps those steps one at a time on the UE48H6200 preset.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.report import format_table
from repro.kernel.config import DebugFeature, KernelConfig
from repro.quantities import to_msec
from repro.runner import SimJob, SweepRunner

#: Paper endpoints (ms).
PAPER_UNOPTIMIZED_MS = 6127.0
PAPER_OPTIMIZED_MS = 698.0


@dataclass(frozen=True, slots=True)
class KernelOptResult:
    """Kernel boot time after each optimization step."""

    steps: tuple[tuple[str, int], ...]  # (step name, kernel boot ns)

    @property
    def unoptimized_ns(self) -> int:
        return self.steps[0][1]

    @property
    def optimized_ns(self) -> int:
        return self.steps[-1][1]


def run(runner: SweepRunner | None = None) -> KernelOptResult:
    """Sweep from the unoptimized kernel to the commercial baseline."""
    runner = runner if runner is not None else SweepRunner()
    names: list[str] = []
    jobs: list[SimJob] = []
    config = KernelConfig.unoptimized()
    names.append("unoptimized (all diagnostics, eager drivers)")
    jobs.append(SimJob.kernel(config, label=names[-1]))
    remaining = set(config.debug_features)
    for feature in (DebugFeature.DEBUGGING, DebugFeature.TRACING,
                    DebugFeature.LOGGING, DebugFeature.PROFILING):
        remaining.discard(feature)
        config = replace(config, debug_features=frozenset(remaining))
        names.append(f"disable {feature.value}")
        jobs.append(SimJob.kernel(config, label=names[-1]))
    config = replace(config, drivers_built_in_and_eager=False)
    names.append("modularize drivers out of boot path")
    jobs.append(SimJob.kernel(config, label=names[-1]))
    totals = runner.run(jobs)
    return KernelOptResult(steps=tuple(zip(names, totals)))


def render(result: KernelOptResult) -> str:
    """Step-by-step kernel boot-time table."""
    rows = [(name, f"{to_msec(ns):.0f} ms") for name, ns in result.steps]
    return ("Section 2.4 — conventional kernel optimization "
            f"(paper: {PAPER_UNOPTIMIZED_MS:.0f} -> {PAPER_OPTIMIZED_MS:.0f} ms)\n"
            + format_table(["optimization step", "kernel boot"], rows))
