"""T-PORTABILITY — BB across device classes (§4).

"In addition to the smart TV sets, BB has been applied to diverse
devices, including mobile phones (Samsung Z1 and Z3), wearable devices
(Gear series), digital cameras (NX series), and other home appliances
(air conditioners, refrigerators, and robotic vacuum cleaners).
Therefore, BB can be seamlessly and easily applied to a wide range of
consumer electronics."

Each device class is a workload on its own hardware preset; the claim
asserted is simply that BB helps everywhere — nothing about the BB
machinery is TV-specific.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.metrics import speedup
from repro.analysis.report import format_table
from repro.core import BBConfig
from repro.runner import SimJob, SweepRunner
from repro.workloads import (camera_workload, opensource_tv_workload,
                             phone_workload)
from repro.workloads.appliance import appliance_workload
from repro.workloads.base import Workload
from repro.workloads.wearable import wearable_workload

DEVICE_CLASSES: tuple[tuple[str, Callable[[], Workload]], ...] = (
    ("smart TV (UE48H6200)", opensource_tv_workload),
    ("phone (Z-series-like)", phone_workload),
    ("camera (NX300-like)", camera_workload),
    ("wearable (Gear-like)", wearable_workload),
    ("appliance (smart fridge)", appliance_workload),
)


@dataclass(frozen=True, slots=True)
class PortabilityResult:
    """Per-device boot times and BB reductions."""

    rows: tuple[tuple[str, float, float], ...]  # (device, no-BB ms, BB ms)

    def reduction(self, device: str) -> float:
        """BB's relative reduction for one device class."""
        for name, no_bb, bb in self.rows:
            if name == device:
                return speedup(round(no_bb * 1e6), round(bb * 1e6))
        raise KeyError(device)

    @property
    def helps_everywhere(self) -> bool:
        """BB strictly faster on every device class."""
        return all(bb < no_bb for _, no_bb, bb in self.rows)


def run(runner: SweepRunner | None = None) -> PortabilityResult:
    """Boot every device class without and with BB."""
    runner = runner if runner is not None else SweepRunner()
    jobs = []
    for name, factory in DEVICE_CLASSES:
        jobs.append(SimJob.boot(factory, bb=BBConfig.none(),
                                label=f"{name} no-BB"))
        jobs.append(SimJob.boot(factory, bb=BBConfig.full(),
                                label=f"{name} BB"))
    reports = runner.run(jobs)
    rows = []
    for index, (name, _) in enumerate(DEVICE_CLASSES):
        no_bb, bb = reports[2 * index], reports[2 * index + 1]
        rows.append((name, no_bb.boot_complete_ms, bb.boot_complete_ms))
    return PortabilityResult(rows=tuple(rows))


def render(result: PortabilityResult) -> str:
    """The cross-device table."""
    rows = [(name, f"{no_bb:.0f} ms", f"{bb:.0f} ms",
             f"{(1 - bb / no_bb):.0%}")
            for name, no_bb, bb in result.rows]
    return ("Section 4 — BB across device classes\n"
            + format_table(["device", "No BB", "BB", "reduction"], rows))
