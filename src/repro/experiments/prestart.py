"""T-PRESTART — the §5 pre-link / pre-fork / static-build comparison.

Quantifies the paper's discussion: for the seven early-boot BB-Group
processes, static building beats pre-link (which has nothing warm to
reuse that early and weakens address randomization) and pre-fork (whose
pool setup costs more than the handful of forks it saves); for the bulk
of ordinary services later in the boot, pre-link's saving is real.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.core.prestart import (PreforkModel, PrelinkModel,
                                 static_build_saving_ns)
from repro.hw.presets import emmc_ue48h6200
from repro.hw.storage import AccessPattern
from repro.initsys.units import replace_unit
from repro.quantities import to_msec
from repro.workloads.tizen_tv import PAPER_BB_GROUP, build_tv_registry


@dataclass(frozen=True, slots=True)
class PrestartResult:
    """Per-mechanism savings for the BB Group vs the ordinary services."""

    static_group_ms: float
    prelink_group_ms: float
    prefork_group_net_ms: float
    prelink_others_ms: float

    @property
    def static_wins_for_group(self) -> bool:
        """§5's conclusion for the BB Group."""
        return (self.static_group_ms >= self.prelink_group_ms
                and self.prefork_group_net_ms < self.static_group_ms)


def run() -> PrestartResult:
    """Evaluate the three mechanisms on the TV workload."""
    registry = build_tv_registry()
    storage = emmc_ue48h6200()
    # Evaluate on dynamically-built units (BB's static flag not applied).
    group = [replace_unit(registry.get(n)) for n in sorted(PAPER_BB_GROUP)]
    others = [replace_unit(registry.get(n)) for n in registry.names
              if n not in PAPER_BB_GROUP and n != "multi-user.target"]

    prelink = PrelinkModel()
    prefork = PreforkModel()

    def exec_read_ns(unit) -> int:
        return storage.read_time_ns(unit.cost.exec_bytes, AccessPattern.RANDOM)

    # BB-Group processes launch first: no preceding process shares libs.
    prelink_group = sum(prelink.launch_saving_ns(u, preceding_same_libs=False)
                        for u in group)
    # Ordinary services launch after dozens of others mapped the common
    # libraries; half find them warm already.
    prelink_others = sum(
        prelink.launch_saving_ns(u, preceding_same_libs=(i % 2 == 0))
        for i, u in enumerate(others))
    prefork_group = prefork.net_benefit_ns(group, exec_read_ns)
    static_group = static_build_saving_ns(group)
    return PrestartResult(
        static_group_ms=to_msec(static_group),
        prelink_group_ms=to_msec(prelink_group),
        prefork_group_net_ms=to_msec(prefork_group),
        prelink_others_ms=to_msec(prelink_others),
    )


def render(result: PrestartResult) -> str:
    """The §5 mechanism-comparison table."""
    rows = [
        ("static build (BB's choice)", f"{result.static_group_ms:.2f} ms",
         "no setup, no security cost"),
        ("pre-link", f"{result.prelink_group_ms:.2f} ms",
         "weakens ASLR; nothing warm this early"),
        ("pre-fork (net of pool setup)", f"{result.prefork_group_net_ms:.2f} ms",
         "pool costs more than 7 services save"),
    ]
    return ("Section 5 — launch acceleration for the BB Group\n"
            + format_table(["mechanism", "saving (BB Group)", "note"], rows)
            + f"\n(for the other {''}services, pre-link would save "
            f"{result.prelink_others_ms:.1f} ms — real, but off the boot-"
            "critical path)")
