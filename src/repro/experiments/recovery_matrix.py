"""RECOVERY-MATRIX — where the escalation ladder converges, per fault.

The paper's framing (§2.5.2, §4) is that a CE device must *always* reach
a usable state: restart policies and ``OnFailure=`` handle transient
faults, and the hibernation snapshot falls back to a full boot when its
image is torn.  This experiment drives every named fault preset
(:mod:`repro.faults.presets`) through the
:class:`~repro.recovery.BootSupervisor` ladder across seeds and reports,
per preset:

* whether the ladder converged at all (it must — that is the point),
* the rung it converged at (transients stop at ``restart``, lost devices
  escalate to ``rescue``),
* the cumulative recovery time (failed boots + reboot overheads + the
  converging boot), and
* how many units were restarted or masked along the way.

Every run is a cached, fingerprinted
:class:`~repro.runner.jobs.SimJob`, so the matrix dedups and
parallelizes like any other sweep; the policy embeds a deliberately
corrupt snapshot so every run also exercises the snapshot-integrity
fail-over into the full-boot chain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.core import BBConfig
from repro.faults import PRESETS, build_preset
from repro.recovery import RecoveryPolicy, SnapshotPolicy
from repro.runner import SimJob, SweepRunner
from repro.workloads.tizen_tv import opensource_tv_workload

#: Seeds swept per preset in the full matrix.
SEEDS = (1, 2, 3)

#: The CI smoke subset: one seed, one preset per convergence depth
#: (as-configured, restart, rescue).
SMOKE_PRESETS = ("flaky-services", "transient-storage-burst", "missing-device")
SMOKE_SEEDS = (1,)


def recovery_policy(preset: str, seed: int) -> RecoveryPolicy:
    """The matrix policy: full BB base boot behind a torn snapshot."""
    return RecoveryPolicy(label=f"matrix-{preset}", seed=seed,
                          base_bb=BBConfig.full(),
                          snapshot=SnapshotPolicy(corrupt_rate=1.0))


@dataclass(frozen=True, slots=True)
class PresetRecovery:
    """One preset's ladder outcomes across the swept seeds."""

    preset: str
    seeds: tuple[int, ...]
    converged: tuple[bool, ...]
    rungs: tuple[str, ...]  # "-" when the ladder was exhausted
    total_ms: tuple[float, ...]
    restarted_units: tuple[int, ...]
    masked_units: tuple[int, ...]

    @property
    def all_converged(self) -> bool:
        return all(self.converged)


@dataclass(frozen=True, slots=True)
class RecoveryMatrixResult:
    """The full matrix, one row per preset."""

    presets: tuple[PresetRecovery, ...]
    smoke: bool

    @property
    def all_converged(self) -> bool:
        """The robustness acceptance bar: no preset may defeat the ladder."""
        return all(p.all_converged for p in self.presets)


def run(runner: SweepRunner | None = None,
        smoke: bool = False, branch: bool = False) -> RecoveryMatrixResult:
    """Drive every preset through the recovery ladder across seeds.

    ``branch=True`` (only honored when no ``runner`` is supplied) enables
    checkpoint/fork branching on the internal runner.  Recovery jobs are
    structurally non-branchable (the supervisor re-boots), so this is
    plumbing parity with the fault matrix: branchable boot jobs mixed
    into the same runner benefit, recovery jobs transparently fall back.
    """
    runner = runner if runner is not None else SweepRunner(branch=branch)
    presets = SMOKE_PRESETS if smoke else tuple(PRESETS)
    seeds = SMOKE_SEEDS if smoke else SEEDS

    jobs = [SimJob.recover(opensource_tv_workload,
                           policy=recovery_policy(preset, seed),
                           fault_plan=build_preset(preset, seed),
                           label=f"recovery-matrix {preset} seed={seed}")
            for preset in presets for seed in seeds]
    results = runner.run(jobs)

    rows: list[PresetRecovery] = []
    cursor = 0
    for preset in presets:
        outcomes = results[cursor:cursor + len(seeds)]
        cursor += len(seeds)
        rows.append(PresetRecovery(
            preset=preset,
            seeds=tuple(seeds),
            converged=tuple(o.converged for o in outcomes),
            rungs=tuple(o.rung or "-" for o in outcomes),
            total_ms=tuple(o.total_recovery_ns / 1e6 for o in outcomes),
            restarted_units=tuple(len(o.restart_history) for o in outcomes),
            masked_units=tuple(len(o.masked_units) for o in outcomes)))
    return RecoveryMatrixResult(presets=tuple(rows), smoke=smoke)


def render(result: RecoveryMatrixResult) -> str:
    """Per-preset convergence table plus the overall verdict."""
    header = ["preset", "converged", "rung(s)", "recovery time",
              "restarted", "masked"]
    rows = []
    for row in result.presets:
        rungs = sorted(set(row.rungs))
        mean_ms = sum(row.total_ms) / len(row.total_ms)
        rows.append((
            row.preset,
            f"{sum(row.converged)}/{len(row.converged)}",
            ", ".join(rungs),
            f"{mean_ms:.0f} ms mean "
            f"({min(row.total_ms):.0f}-{max(row.total_ms):.0f})",
            str(max(row.restarted_units)),
            str(max(row.masked_units)),
        ))
    scope = "smoke subset" if result.smoke else "full matrix"
    verdict = ("every fault preset converges at some rung"
               if result.all_converged
               else "LADDER EXHAUSTED for at least one preset")
    return "\n".join([
        f"Recovery matrix ({scope}; §2.5.2 / §4): escalation-ladder "
        "convergence under seeded fault plans",
        "(each run first fails over from a deliberately corrupt "
        "hibernation snapshot to the full-boot chain)",
        format_table(header, rows),
        f"\nverdict: {verdict}; every run is seeded and byte-reproducible",
    ])
