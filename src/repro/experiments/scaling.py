"""T-SCALING — boot time vs platform size (§2.5 / §3.3 extended).

The paper gives two points on the growth curve: 136 services (the
open-source set) and the commercialization fork that "virtually doubles
the number of services".  This sweep fills in the curve: the same TV
structure scaled from small to beyond-commercial size, booted with and
without BB.  The conventional boot grows roughly linearly with platform
size; BB's completion time stays nearly flat because the BB Group — the
only thing on its critical path — does not grow.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.core import BBConfig
from repro.runner import SimJob, SweepRunner
from repro.workloads.tizen_tv import TvWorkloadParams, opensource_tv_workload

#: Scale factors applied to the variable parts of the TV service set.
SCALE_FACTORS = (0.5, 1.0, 1.5, 2.0, 2.5)


def scaled_params(factor: float, seed: int = 2016) -> TvWorkloadParams:
    """The TV workload's structural counts scaled by ``factor``."""
    base = TvWorkloadParams(seed=seed)
    return TvWorkloadParams(
        seed=seed,
        infra_services=max(1, round(base.infra_services * factor)),
        middleware_services=max(1, round(base.middleware_services * factor)),
        app_services=max(1, round(base.app_services * factor)),
        noise_before_var=max(1, round(base.noise_before_var * factor)),
        noise_before_dbus=max(1, round(base.noise_before_dbus * factor)),
        noise_before_fasttv=max(1, round(base.noise_before_fasttv * factor)),
        boot_module_count=max(4, round(base.boot_module_count * factor)),
    )


@dataclass(frozen=True, slots=True)
class ScalingResult:
    """One row per scale factor."""

    rows: tuple[tuple[float, int, float, float], ...]
    # (factor, service count, no-BB ms, BB ms)

    @property
    def no_bb_growth(self) -> float:
        """Conventional boot-time ratio, largest/smallest platform."""
        return self.rows[-1][2] / self.rows[0][2]

    @property
    def bb_growth(self) -> float:
        """BB boot-time ratio, largest/smallest platform."""
        return self.rows[-1][3] / self.rows[0][3]


def run(factors: tuple[float, ...] = SCALE_FACTORS,
        runner: SweepRunner | None = None) -> ScalingResult:
    """Sweep the platform size under both configurations."""
    runner = runner if runner is not None else SweepRunner()
    jobs = []
    for factor in factors:
        params = scaled_params(factor)
        jobs.append(SimJob.boot(opensource_tv_workload, params,
                                bb=BBConfig.none(),
                                label=f"scaling {factor:.1f}x no-BB"))
        jobs.append(SimJob.boot(opensource_tv_workload, params,
                                bb=BBConfig.full(),
                                label=f"scaling {factor:.1f}x BB"))
    reports = runner.run(jobs)
    rows = []
    for index, factor in enumerate(factors):
        no_bb, bb = reports[2 * index], reports[2 * index + 1]
        services = len(opensource_tv_workload(
            scaled_params(factor)).fresh_registry()) - 1  # minus the target
        rows.append((factor, services, no_bb.boot_complete_ms,
                     bb.boot_complete_ms))
    return ScalingResult(rows=tuple(rows))


def render(result: ScalingResult) -> str:
    """The scaling series."""
    rows = [(f"{factor:.1f}x", services, f"{no_bb:.0f} ms", f"{bb:.0f} ms",
             f"{(1 - bb / no_bb):.0%}")
            for factor, services, no_bb, bb in result.rows]
    return ("Platform-size scaling sweep (No BB vs BB)\n"
            + format_table(["scale", "services", "No BB", "BB", "reduction"],
                           rows)
            + f"\ngrowth largest/smallest: No BB {result.no_bb_growth:.2f}x, "
            f"BB {result.bb_growth:.2f}x — the BB Group does not grow, so "
            "neither does BB's boot")
