"""T-SOCKETS — socket activation vs readiness ordering (§2.5.2).

systemd "removes run-levels, which enables execution of more tasks in
parallel"; the mechanism behind much of that parallelism is socket
activation: a client of D-Bus does not order itself ``After=dbus.service``
(waiting for the daemon to finish initializing) — it requires only
``dbus.socket`` and connects; the kernel buffers the connect until the
daemon is up, so client and daemon initialize **in parallel** and
synchronize only at the first IPC call.

The experiment builds the same client/daemon workload both ways and
measures how much earlier the clients are up with activation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.hw.presets import emmc_ue48h6200
from repro.initsys.executor import JobExecutor, PathRegistry
from repro.initsys.registry import UnitRegistry
from repro.initsys.transaction import Transaction
from repro.initsys.units import ServiceType, SimCost, Unit
from repro.kernel.rcu import RCUSubsystem
from repro.quantities import KiB, msec, to_msec
from repro.sim import Simulator

#: Shape of the micro-workload: one slow daemon, several clients.
DAEMON_INIT_MS = 200
CLIENT_COUNT = 6
CLIENT_INIT_MS = 80


def _build_registry(socket_activated: bool) -> UnitRegistry:
    registry = UnitRegistry()
    client_names = [f"client-{i}.service" for i in range(CLIENT_COUNT)]
    registry.add(Unit(name="goal.target",
                      requires=["daemon.service"] + client_names))
    registry.add(Unit(name="daemon.socket", service_type=ServiceType.ONESHOT,
                      provides_paths=["/run/daemon.socket"],
                      cost=SimCost(init_cpu_ns=msec(1), exec_bytes=KiB(4))))
    registry.add(Unit(name="daemon.service", service_type=ServiceType.NOTIFY,
                      requires=["daemon.socket"], after=["daemon.socket"],
                      cost=SimCost(init_cpu_ns=msec(DAEMON_INIT_MS),
                                   exec_bytes=KiB(300), processes=2)))
    for name in client_names:
        if socket_activated:
            # Requires only the socket; the first IPC call blocks on the
            # daemon's readiness (kernel-buffered connect).
            registry.add(Unit(name=name, service_type=ServiceType.NOTIFY,
                              requires=["daemon.socket"],
                              after=["daemon.socket"],
                              ipc_targets=["daemon.service"],
                              cost=SimCost(init_cpu_ns=msec(CLIENT_INIT_MS),
                                           exec_bytes=KiB(150))))
        else:
            # Conventional ordering: wait for the daemon to be fully up.
            registry.add(Unit(name=name, service_type=ServiceType.NOTIFY,
                              requires=["daemon.service"],
                              after=["daemon.service"],
                              cost=SimCost(init_cpu_ns=msec(CLIENT_INIT_MS),
                                           exec_bytes=KiB(150))))
    return registry


@dataclass(frozen=True, slots=True)
class SocketActivationResult:
    """Client readiness under both wirings."""

    ordered_all_up_ms: float
    activated_all_up_ms: float
    ordered_first_client_ms: float
    activated_first_client_ms: float

    @property
    def all_up_speedup_ms(self) -> float:
        return self.ordered_all_up_ms - self.activated_all_up_ms


def _run(socket_activated: bool) -> tuple[float, float]:
    sim = Simulator(cores=4)
    storage = emmc_ue48h6200().attach(sim)
    registry = _build_registry(socket_activated)
    txn = Transaction(registry, ["goal.target"])
    executor = JobExecutor(sim, txn, storage, RCUSubsystem(sim),
                           PathRegistry(sim))
    executor.start_all()
    sim.run()
    client_ready = [txn.job(f"client-{i}.service").ready_at_ns
                    for i in range(CLIENT_COUNT)]
    return to_msec(max(client_ready)), to_msec(min(client_ready))


def run() -> SocketActivationResult:
    """Boot the micro-workload both ways."""
    ordered_all, ordered_first = _run(socket_activated=False)
    activated_all, activated_first = _run(socket_activated=True)
    return SocketActivationResult(
        ordered_all_up_ms=ordered_all,
        activated_all_up_ms=activated_all,
        ordered_first_client_ms=ordered_first,
        activated_first_client_ms=activated_first,
    )


def render(result: SocketActivationResult) -> str:
    """The comparison table."""
    rows = [
        ("first client up", f"{result.ordered_first_client_ms:.0f} ms",
         f"{result.activated_first_client_ms:.0f} ms"),
        ("all clients up", f"{result.ordered_all_up_ms:.0f} ms",
         f"{result.activated_all_up_ms:.0f} ms"),
    ]
    return (f"Socket activation vs readiness ordering "
            f"({CLIENT_COUNT} clients of a {DAEMON_INIT_MS} ms daemon)\n"
            + format_table(["milestone", "After=daemon.service",
                            "socket-activated"], rows)
            + f"\nactivation brings all clients up "
            f"{result.all_up_speedup_ms:.0f} ms earlier: client and daemon "
            "initialization overlap, synchronizing only at the first IPC")
