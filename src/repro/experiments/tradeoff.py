"""T-TRADEOFF — the §4.3 performance trade-offs.

Two costs BB accepts:

1. **Deferred-task launch overhead.**  Applications that depend on a
   deferred task pay a one-time extra delay when they first trigger it:
   "less than 15 ms on average and the standard deviation less than 1.5%",
   and no delay on subsequent launches.
2. **RCU Booster CPU overhead.**  With no contention, the boosted path
   costs more CPU per ``synchronize_rcu`` than the conventional one
   (barriers, forced quiescent states, context switches) — which is why
   the Boot-up Engine turns it off at boot completion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.core import ApplicationLaunch, BBConfig, BootSimulation
from repro.core.deferred import LaunchReport, launch_sequence
from repro.kernel.rcu import RCUMode, RCUSubsystem
from repro.quantities import to_msec
from repro.sim import Simulator
from repro.workloads import opensource_tv_workload

#: Apps that depend on one deferred driver each (media player on USB,
#: network app on WiFi, remote app on Bluetooth, stream app on Ethernet).
DEFERRED_DEPENDENT_APPS = (
    ApplicationLaunch("media-player", needed_drivers=("usb_drv",)),
    ApplicationLaunch("screen-share", needed_drivers=("wifi_drv",)),
    ApplicationLaunch("game-remote", needed_drivers=("bt_drv",)),
    ApplicationLaunch("iptv-stream", needed_drivers=("eth_drv",)),
)

#: Device settle times the apps would pay under ANY boot scheme (the
#: hardware itself must come up); excluded from the BB-attributable
#: overhead exactly as the paper excludes device bring-up.
DRIVER_SETTLE_MS = {"usb_drv": 40.0, "wifi_drv": 55.0, "bt_drv": 30.0,
                    "eth_drv": 35.0}


@dataclass(frozen=True, slots=True)
class TradeoffResult:
    """Both §4.3 measurements."""

    first_launches: list[LaunchReport]
    second_launches: list[LaunchReport]
    baseline_latency_ns: int
    rcu_conventional_cpu_ns: int
    rcu_boosted_cpu_ns: int

    def overheads_ms(self) -> list[float]:
        """BB-attributable first-launch overhead per app (ms), excluding
        the hardware settle the app pays in any scheme."""
        result = []
        for report in self.first_launches:
            overhead = to_msec(report.latency_ns - self.baseline_latency_ns)
            settle = sum(DRIVER_SETTLE_MS[d] for d in report.demand_loaded)
            result.append(overhead - settle)
        return result

    @property
    def mean_overhead_ms(self) -> float:
        values = self.overheads_ms()
        return sum(values) / len(values)

    @property
    def stddev_overhead_ms(self) -> float:
        values = self.overheads_ms()
        mean = self.mean_overhead_ms
        return math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))

    @property
    def second_launch_overhead_ms(self) -> float:
        """Average extra latency on the second launch (should be ~0)."""
        second_mean = sum(r.latency_ns for r in self.second_launches) / \
            len(self.second_launches)
        return to_msec(round(second_mean) - self.baseline_latency_ns)

    @property
    def rcu_uncontended_cpu_ratio(self) -> float:
        """Boosted/conventional CPU per uncontended synchronize_rcu."""
        return self.rcu_boosted_cpu_ns / self.rcu_conventional_cpu_ns


def _rcu_uncontended_cpu(mode: RCUMode) -> int:
    sim = Simulator(cores=1, switch_cost_ns=0)
    rcu = RCUSubsystem(sim)
    rcu.set_mode(mode)

    def caller():
        yield from rcu.synchronize_rcu()

    process = sim.spawn(caller(), name="caller")
    sim.run()
    return process.cpu_time_ns


def run() -> TradeoffResult:
    """Boot with full BB, then launch the deferred-dependent apps twice."""
    simulation = BootSimulation(opensource_tv_workload(), BBConfig.full())
    simulation.run()
    sim = simulation.sim
    bootup = simulation.booster.bootup_engine
    storage = simulation.platform.storage

    baseline_app = ApplicationLaunch("plain-app")
    sequence = [baseline_app] + list(DEFERRED_DEPENDENT_APPS) \
        + list(DEFERRED_DEPENDENT_APPS)
    reports, runner = launch_sequence(sim, storage, bootup, sequence)
    sim.spawn(runner, name="app-launcher")
    sim.run()

    count = len(DEFERRED_DEPENDENT_APPS)
    return TradeoffResult(
        first_launches=reports[1:1 + count],
        second_launches=reports[1 + count:],
        baseline_latency_ns=reports[0].latency_ns,
        rcu_conventional_cpu_ns=_rcu_uncontended_cpu(RCUMode.CONVENTIONAL),
        rcu_boosted_cpu_ns=_rcu_uncontended_cpu(RCUMode.BOOSTED),
    )


def render(result: TradeoffResult) -> str:
    """The §4.3 summary table."""
    rows = []
    for report, overhead in zip(result.first_launches, result.overheads_ms()):
        rows.append((report.app, ", ".join(report.demand_loaded),
                     f"{overhead:.2f} ms"))
    table = format_table(["app (first launch)", "demand-loaded", "BB overhead"],
                         rows)
    return ("Section 4.3 — performance trade-offs\n" + table
            + f"\nmean overhead {result.mean_overhead_ms:.2f} ms "
            f"(paper: < 15 ms), stddev {result.stddev_overhead_ms:.3f} ms\n"
            f"second-launch overhead {result.second_launch_overhead_ms:.2f} ms "
            "(paper: none)\n"
            f"uncontended RCU CPU: boosted/conventional = "
            f"{result.rcu_uncontended_cpu_ratio:.1f}x (why boosting is "
            "disabled after boot)")
