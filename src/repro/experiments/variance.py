"""T-VARIANCE — boot-time consistency across instances (§2.5.3 / §3.3).

§2.5.3 complains that "the complicated dependency structure with
non-determinism and dynamicity result in a boot time that varies among
instances"; §3.3 promises that "with BB Group, system administrators can
maintain a consistent booting time with on-going development of other OS
services".  The experiment boots many perturbed instances of the TV
(per-instance ±30 % service-latency variation, structure unchanged) with
and without BB and compares the spread: BB's isolated critical chain
makes the boot time far less sensitive to everything else's noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.core import BBConfig
from repro.runner import SimJob, SweepRunner
from repro.workloads.tizen_tv import perturbed_tv_workload


@dataclass(frozen=True, slots=True)
class VarianceResult:
    """Boot-time distributions over perturbed instances."""

    no_bb_ms: tuple[float, ...]
    bb_ms: tuple[float, ...]

    @staticmethod
    def _mean(values: tuple[float, ...]) -> float:
        return sum(values) / len(values)

    @staticmethod
    def _stddev(values: tuple[float, ...]) -> float:
        mean = sum(values) / len(values)
        return math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))

    @property
    def no_bb_mean_ms(self) -> float:
        return self._mean(self.no_bb_ms)

    @property
    def bb_mean_ms(self) -> float:
        return self._mean(self.bb_ms)

    @property
    def no_bb_stddev_ms(self) -> float:
        return self._stddev(self.no_bb_ms)

    @property
    def bb_stddev_ms(self) -> float:
        return self._stddev(self.bb_ms)

    @property
    def no_bb_cv(self) -> float:
        """Coefficient of variation of the conventional boot."""
        return self.no_bb_stddev_ms / self.no_bb_mean_ms

    @property
    def bb_cv(self) -> float:
        """Coefficient of variation of the BB boot."""
        return self.bb_stddev_ms / self.bb_mean_ms

    @property
    def spread_reduction(self) -> float:
        """How much tighter the BB distribution is (absolute stddev ratio)."""
        return self.no_bb_stddev_ms / max(self.bb_stddev_ms, 1e-9)


def run(instances: int = 10, spread: float = 0.3,
        runner: SweepRunner | None = None) -> VarianceResult:
    """Boot ``instances`` perturbed TVs under both configurations."""
    runner = runner if runner is not None else SweepRunner()
    jobs = []
    for instance in range(instances):
        jobs.append(SimJob.boot(perturbed_tv_workload, instance, spread,
                                bb=BBConfig.none(),
                                label=f"variance #{instance} no-BB"))
        jobs.append(SimJob.boot(perturbed_tv_workload, instance, spread,
                                bb=BBConfig.full(),
                                label=f"variance #{instance} BB"))
    reports = runner.run(jobs)
    no_bb = tuple(r.boot_complete_ms for r in reports[0::2])
    bb = tuple(r.boot_complete_ms for r in reports[1::2])
    return VarianceResult(no_bb_ms=no_bb, bb_ms=bb)


def render(result: VarianceResult) -> str:
    """The consistency comparison table."""
    rows = [
        ("mean", f"{result.no_bb_mean_ms:.0f} ms", f"{result.bb_mean_ms:.0f} ms"),
        ("std deviation", f"{result.no_bb_stddev_ms:.0f} ms",
         f"{result.bb_stddev_ms:.0f} ms"),
        ("coefficient of variation", f"{result.no_bb_cv:.1%}",
         f"{result.bb_cv:.1%}"),
        ("min .. max",
         f"{min(result.no_bb_ms):.0f} .. {max(result.no_bb_ms):.0f} ms",
         f"{min(result.bb_ms):.0f} .. {max(result.bb_ms):.0f} ms"),
    ]
    return (f"Boot-time consistency over {len(result.no_bb_ms)} perturbed "
            "instances (§2.5.3 / §3.3)\n"
            + format_table(["statistic", "No BB", "BB"], rows)
            + f"\nBB tightens the spread {result.spread_reduction:.1f}x")
