"""Deterministic fault injection for simulated boots.

Declare what goes wrong with a :class:`FaultPlan` (pure data, picklable,
fingerprinted), compile it into a :class:`BootFaultInjector` per run, and
pass the plan to :class:`~repro.core.bb.BootSimulation` (or embed it in a
:class:`~repro.runner.jobs.SimJob`).  See ``docs/faults.md``.
"""

from repro.faults.fleet import FleetFaultInjector, FleetFaultPlan
from repro.faults.injector import BootFaultInjector, InjectedStats, ServiceDecision
from repro.faults.plan import (DeferredFault, FaultPlan, ModuleFault,
                               PathFault, ServiceFault, SettleFault,
                               StorageFault)
from repro.faults.presets import PRESETS, build_preset

__all__ = [
    "BootFaultInjector",
    "DeferredFault",
    "FaultPlan",
    "FleetFaultInjector",
    "FleetFaultPlan",
    "InjectedStats",
    "ModuleFault",
    "PRESETS",
    "PathFault",
    "ServiceDecision",
    "ServiceFault",
    "SettleFault",
    "StorageFault",
    "build_preset",
]
