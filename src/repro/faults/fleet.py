"""Deterministic service-layer chaos: seeded faults for the fleet tier.

:class:`~repro.faults.plan.FaultPlan` breaks the *simulated device*;
:class:`FleetFaultPlan` breaks the *service around it* — worker children
killed mid-campaign, client connections cut after N frames, the whole
process power-cut at an exact write-ahead-journal offset.  Same idiom as
the boot plans: the plan is pure validated data, ``compile()`` yields a
per-service-lifetime injector, and every probabilistic decision is a
pure function of ``(seed, decision point)`` — two services compiled from
the same plan fail identically, which is what lets the ``fleet-crash``
verify group assert byte-identical recovery instead of "usually works".

Fault surfaces:

* ``kill_worker_batches`` / ``kill_worker_rate`` — the shard child is
  ``os._exit``'d before the chosen dispatch, so the service sees the
  exact ``BrokenProcessPool`` a real mid-batch worker death produces and
  must requeue/quarantine.
* ``drop_connection_after_frames`` / ``drop_connection_rate`` — the
  server aborts the transport (RST, not FIN) before sending the chosen
  frame, exercising the client's timeout/backoff/resubmission path.
* ``crash_at_journal_offset`` — ``os._exit(137)`` the instant the N-th
  journal append is durable: the power cut the journal exists for.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError


def _draw(seed: int, kind: str, index: Any) -> float:
    """A uniform [0, 1) variate that is a pure function of its inputs."""
    digest = hashlib.sha256(f"{seed}:{kind}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def _check_rate(name: str, value: float) -> None:
    if not isinstance(value, (int, float)) or not 0.0 <= value <= 1.0:
        raise ConfigurationError(
            f"{name} must be a probability in [0, 1], got {value!r}")


def _check_offset(name: str, value: int | None) -> None:
    if value is None:
        return
    if not isinstance(value, int) or value < 1:
        raise ConfigurationError(
            f"{name} must be an int >= 1 or None, got {value!r}")


@dataclass(frozen=True, slots=True)
class FleetFaultPlan:
    """What goes wrong around the fleet service, as pure data.

    Attributes:
        seed: Master seed for every rate-based draw.
        kill_worker_batches: 1-based global dispatch indices whose shard
            child is killed before the batch runs (deterministic hits).
        kill_worker_rate: Per-dispatch probability of the same.
        drop_connection_after_frames: Abort the first connection that is
            about to send this many frames (fires once per service).
        drop_connection_rate: Per-frame probability of an abort.
        crash_at_journal_offset: Power-cut the service process right
            after this journal append becomes durable.
    """

    seed: int = 0
    kill_worker_batches: tuple[int, ...] = ()
    kill_worker_rate: float = 0.0
    drop_connection_after_frames: int | None = None
    drop_connection_rate: float = 0.0
    crash_at_journal_offset: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int):
            raise ConfigurationError(f"seed must be an int, "
                                     f"got {self.seed!r}")
        if (not isinstance(self.kill_worker_batches, tuple)
                or not all(isinstance(b, int) and b >= 1
                           for b in self.kill_worker_batches)):
            raise ConfigurationError(
                f"kill_worker_batches must be a tuple of ints >= 1, "
                f"got {self.kill_worker_batches!r}")
        _check_rate("kill_worker_rate", self.kill_worker_rate)
        _check_rate("drop_connection_rate", self.drop_connection_rate)
        _check_offset("drop_connection_after_frames",
                      self.drop_connection_after_frames)
        _check_offset("crash_at_journal_offset",
                      self.crash_at_journal_offset)

    @property
    def empty(self) -> bool:
        return (not self.kill_worker_batches
                and self.kill_worker_rate == 0.0
                and self.drop_connection_after_frames is None
                and self.drop_connection_rate == 0.0
                and self.crash_at_journal_offset is None)

    def compile(self) -> "FleetFaultInjector":
        """One injector per service lifetime (it holds fire-once state)."""
        return FleetFaultInjector(self)

    def describe(self) -> str:
        if self.empty:
            return "no service faults"
        parts = []
        if self.kill_worker_batches:
            parts.append(f"kill worker at dispatch "
                         f"{list(self.kill_worker_batches)}")
        if self.kill_worker_rate:
            parts.append(f"kill worker p={self.kill_worker_rate}")
        if self.drop_connection_after_frames is not None:
            parts.append(f"drop connection after "
                         f"{self.drop_connection_after_frames} frames")
        if self.drop_connection_rate:
            parts.append(f"drop connection p={self.drop_connection_rate}")
        if self.crash_at_journal_offset is not None:
            parts.append(f"crash at journal append "
                         f"{self.crash_at_journal_offset}")
        return f"seed={self.seed}: " + ", ".join(parts)

    # ------------------------------------------------------------ wire form

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "kill_worker_batches": list(self.kill_worker_batches),
            "kill_worker_rate": self.kill_worker_rate,
            "drop_connection_after_frames":
                self.drop_connection_after_frames,
            "drop_connection_rate": self.drop_connection_rate,
            "crash_at_journal_offset": self.crash_at_journal_offset,
        }

    @classmethod
    def from_dict(cls, document: dict[str, Any]) -> "FleetFaultPlan":
        """Build a plan from ``--chaos`` JSON; unknown keys are typos."""
        if not isinstance(document, dict):
            raise ConfigurationError(
                f"chaos plan must be a JSON object, got {document!r}")
        known = {"seed", "kill_worker_batches", "kill_worker_rate",
                 "drop_connection_after_frames", "drop_connection_rate",
                 "crash_at_journal_offset"}
        unknown = set(document) - known
        if unknown:
            raise ConfigurationError(
                f"unknown chaos plan keys: {sorted(unknown)}")
        batches = document.get("kill_worker_batches", ())
        if isinstance(batches, list):
            batches = tuple(batches)
        return cls(
            seed=document.get("seed", 0),
            kill_worker_batches=batches,
            kill_worker_rate=document.get("kill_worker_rate", 0.0),
            drop_connection_after_frames=document.get(
                "drop_connection_after_frames"),
            drop_connection_rate=document.get("drop_connection_rate", 0.0),
            crash_at_journal_offset=document.get("crash_at_journal_offset"),
        )


@dataclass(slots=True)
class FleetFaultInjector:
    """Compiled decision maker for one service lifetime.

    Attributes:
        plan: The immutable plan this injector draws from.
        worker_kills: Shard children killed so far.
        connection_drops: Transports aborted so far.
    """

    plan: FleetFaultPlan
    worker_kills: int = 0
    connection_drops: int = 0
    _dropped_once: bool = field(default=False, repr=False)

    def kill_worker(self, batch_index: int) -> bool:
        """Should the shard child die before global dispatch N (1-based)?"""
        plan = self.plan
        hit = batch_index in plan.kill_worker_batches
        if not hit and plan.kill_worker_rate > 0.0:
            hit = (_draw(plan.seed, "kill-worker", batch_index)
                   < plan.kill_worker_rate)
        if hit:
            self.worker_kills += 1
        return hit

    def drop_connection(self, connection_index: int,
                        frame_index: int) -> bool:
        """Should the transport abort instead of sending this frame?

        ``drop_connection_after_frames`` fires exactly once per service
        (the first connection to reach the threshold), so a retrying
        client cannot be starved forever by a deterministic cut.
        """
        plan = self.plan
        hit = False
        after = plan.drop_connection_after_frames
        if after is not None and not self._dropped_once and frame_index >= after:
            self._dropped_once = True
            hit = True
        elif plan.drop_connection_rate > 0.0:
            hit = (_draw(plan.seed, f"drop-connection:{connection_index}",
                         frame_index) < plan.drop_connection_rate)
        if hit:
            self.connection_drops += 1
        return hit
