"""Compiled fault injectors.

:class:`BootFaultInjector` turns a declarative :class:`FaultPlan` into the
concrete per-decision answers the simulation hooks ask for: "does this
storage request spike?", "does attempt 3 of ``netcfg.service`` crash?",
"how long does ``tuner.service`` really settle?".

Determinism is the whole point.  Every probabilistic answer is drawn from
``sha256(seed, stream-name, stable-key)`` — *never* from shared RNG state
— so the answer for (unit=``x``, attempt=2) is the same regardless of what
other draws happened first, what process asked, or how many workers a
sweep used.  The only per-run mutable state is the storage request
counter (request order inside one simulated boot is itself deterministic)
and the :class:`InjectedStats` tally.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields
from fnmatch import fnmatchcase
from typing import TYPE_CHECKING

from repro.faults.plan import FaultPlan

if TYPE_CHECKING:
    pass


@dataclass(slots=True)
class InjectedStats:
    """Tally of faults actually injected during one run.

    Attributes mirror the spec categories; ``deferred_retries`` and
    ``deferred_giveups`` are filled in by the manager's retry wrapper
    rather than the injector itself.
    """

    storage_spikes: int = 0
    storage_errors: int = 0
    storage_extra_ns: int = 0
    service_failures: int = 0
    service_hangs: int = 0
    module_failures: int = 0
    module_extra_ns: int = 0
    paths_delayed: int = 0
    paths_blocked: int = 0
    settle_extra_ns: int = 0
    deferred_failures: int = 0
    deferred_retries: int = 0
    deferred_giveups: int = 0

    def total_events(self) -> int:
        """Count of discrete injected events (latency totals excluded)."""
        return (self.storage_spikes + self.storage_errors
                + self.service_failures + self.service_hangs
                + self.module_failures + self.paths_delayed
                + self.paths_blocked + self.deferred_failures)

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view for reports and JSON export."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True, slots=True)
class ServiceDecision:
    """The injector's verdict for one start attempt of one unit."""

    fail: bool = False
    hang_ns: int = 0


class BootFaultInjector:
    """Answers the simulation's fault questions for one boot.

    Compile one per run (:meth:`FaultPlan.compile`): the storage request
    counter and stats tally are per-run state.
    """

    def __init__(self, plan: FaultPlan,
                 attempt_offsets: dict[str, int] | None = None):
        self.plan = plan
        self.stats = InjectedStats()
        self._storage_requests = 0
        # Start attempts already made in previous boots of a supervised
        # recovery run (see FaultPlan.compile): service decisions are
        # addressed by offset + attempt, so transient faults keep clearing
        # across reboots.
        self.attempt_offsets: dict[str, int] = dict(attempt_offsets or {})
        self.blocked_paths: frozenset[str] = frozenset(
            spec.path for spec in plan.paths if spec.missing)

    # ------------------------------------------------------------- drawing

    def _draw(self, stream: str, *key: object) -> float:
        """A uniform [0, 1) variate addressed by (seed, stream, key).

        sha256 of the textual key: stable across processes and Python
        hash randomization, and independent of draw order.
        """
        digest = hashlib.sha256(
            repr((self.plan.seed, stream, key)).encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64

    # ------------------------------------------------------------- storage

    def storage_extra_ns(self, nbytes: int, is_write: bool) -> int:
        """Extra channel-hold time for the next storage request."""
        index = self._storage_requests
        self._storage_requests += 1
        extra = 0
        for spec_index, spec in enumerate(self.plan.storage):
            if is_write and not spec.affect_writes:
                continue
            if (spec.spike_rate
                    and self._draw("storage-spike", spec_index, index)
                    < spec.spike_rate):
                extra += spec.spike_ns
                self.stats.storage_spikes += 1
            if (spec.error_rate
                    and self._draw("storage-error", spec_index, index)
                    < spec.error_rate):
                extra += spec.error_retry_ns
                self.stats.storage_errors += 1
        self.stats.storage_extra_ns += extra
        return extra

    # ------------------------------------------------------------ services

    def service_decision(self, unit: str, attempt: int) -> ServiceDecision:
        """Whether start ``attempt`` (1-based) of ``unit`` crashes or hangs."""
        fail = False
        hang_ns = 0
        attempt += self.attempt_offsets.get(unit, 0)
        for spec_index, spec in enumerate(self.plan.services):
            if not fnmatchcase(unit, spec.unit):
                continue
            if attempt <= spec.fail_attempts:
                fail = True
            elif (spec.fail_rate
                    and self._draw("service-fail", spec_index, unit, attempt)
                    < spec.fail_rate):
                fail = True
            if (spec.hang_ns
                    and self._draw("service-hang", spec_index, unit, attempt)
                    < spec.hang_rate):
                hang_ns = max(hang_ns, spec.hang_ns)
        if fail:
            self.stats.service_failures += 1
        if hang_ns:
            self.stats.service_hangs += 1
        return ServiceDecision(fail=fail, hang_ns=hang_ns)

    # ------------------------------------------------------------- modules

    def module_decision(self, module: str) -> tuple[bool, int]:
        """(load fails, extra load latency) for kernel module ``module``."""
        fail = False
        extra = 0
        for spec_index, spec in enumerate(self.plan.modules):
            if not fnmatchcase(module, spec.module):
                continue
            if (spec.fail_rate
                    and self._draw("module-fail", spec_index, module)
                    < spec.fail_rate):
                fail = True
            extra += spec.extra_latency_ns
        if fail:
            self.stats.module_failures += 1
        if extra and not fail:
            self.stats.module_extra_ns += extra
        return fail, extra

    # --------------------------------------------------------------- paths

    def late_paths(self) -> tuple[tuple[str, int], ...]:
        """(path, delay_ns) pairs to provide late, in spec order."""
        return tuple((spec.path, spec.delay_ns) for spec in self.plan.paths
                     if not spec.missing and spec.delay_ns > 0)

    def path_blocked(self, path: str) -> bool:
        """Whether every provide of ``path`` is suppressed this boot."""
        return path in self.blocked_paths

    # -------------------------------------------------------------- settle

    def settle_ns(self, unit: str, attempt: int, base_ns: int) -> int:
        """Effective hardware-settle time for ``unit`` this attempt."""
        if not base_ns:
            return base_ns
        effective = float(base_ns)
        touched = False
        for spec_index, spec in enumerate(self.plan.settles):
            if not fnmatchcase(unit, spec.unit):
                continue
            effective *= spec.multiplier
            if spec.jitter:
                # u in [-1, 1], addressed by (spec, unit, attempt).
                u = 2.0 * self._draw("settle", spec_index, unit, attempt) - 1.0
                effective *= 1.0 + spec.jitter * u
            touched = True
        if not touched:
            return base_ns
        result = max(0, int(effective))
        self.stats.settle_extra_ns += result - base_ns
        return result

    # ------------------------------------------------------------ deferred

    def deferred_fails(self, task: str, attempt: int) -> bool:
        """Whether ``attempt`` (1-based) of deferred task ``task`` fails."""
        for spec_index, spec in enumerate(self.plan.deferred):
            if not fnmatchcase(task, spec.task):
                continue
            if attempt <= spec.fail_attempts:
                self.stats.deferred_failures += 1
                return True
            if (spec.fail_rate
                    and self._draw("deferred-fail", spec_index, task, attempt)
                    < spec.fail_rate):
                self.stats.deferred_failures += 1
                return True
        return False
