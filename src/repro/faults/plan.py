"""Declarative, seeded fault plans.

A :class:`FaultPlan` is a picklable value describing *what can go wrong*
during one boot: storage read errors and latency spikes, service start
failures and hangs, kernel-module load failures, missing or late device
paths, and peripheral settle flakiness.  Plans are pure data — frozen
dataclasses of ints, floats, and glob patterns — so they

* pickle across worker processes like any other :class:`SimJob` field,
* encode canonically (see :func:`repro.runner.jobs.canonical_repr`) and
  therefore participate in job fingerprints: a faulted run is cached and
  deduplicated exactly like a healthy one,
* are reproducible: every probabilistic decision an injector makes is
  drawn from a stream derived *only* from ``plan.seed`` and the stable
  identity of the decision point (unit name, attempt number, request
  index), never from global RNG state or iteration order.

The paper motivates this twice: §2.5.2's monitoring-and-recovery story
assumes services *do* fail during boot, and §2.5.3/§3.3 promise boot-time
consistency under exactly this kind of perturbation.  Compile a plan into
live hooks with :meth:`FaultPlan.compile` (see
:mod:`repro.faults.injector`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


def _check_rate(value: float, label: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{label} must be in [0, 1], got {value!r}")


def _check_non_negative(value: int, label: str) -> None:
    if value < 0:
        raise ConfigurationError(f"{label} cannot be negative: {value!r}")


@dataclass(frozen=True, slots=True)
class StorageFault:
    """Storage-channel misbehaviour, applied per request.

    Attributes:
        spike_rate: Probability a request suffers a latency spike.
        spike_ns: Added latency of one spike (device-side stall; it holds
            the flash channel, so queued requests feel it too).
        error_rate: Probability a request hits a read/write error.  Errors
            are modelled as firmware-level retries: the transfer succeeds
            after paying ``error_retry_ns`` plus a full re-transfer.
        error_retry_ns: Error-recovery penalty per failed attempt.
        affect_writes: Whether writes are also eligible (reads always are).
    """

    spike_rate: float = 0.0
    spike_ns: int = 5_000_000
    error_rate: float = 0.0
    error_retry_ns: int = 2_000_000
    affect_writes: bool = False

    def __post_init__(self) -> None:
        _check_rate(self.spike_rate, "StorageFault.spike_rate")
        _check_rate(self.error_rate, "StorageFault.error_rate")
        _check_non_negative(self.spike_ns, "StorageFault.spike_ns")
        _check_non_negative(self.error_retry_ns, "StorageFault.error_retry_ns")


@dataclass(frozen=True, slots=True)
class ServiceFault:
    """Start-job misbehaviour for units matching a glob pattern.

    Generalizes the old per-unit ``failures_before_success`` knob: the
    injector decides per (unit, attempt) whether the start crashes before
    signalling readiness, and can additionally stall the attempt.

    Attributes:
        unit: Glob pattern over unit names (``fnmatch`` syntax).
        fail_attempts: The first N attempts crash deterministically.
        fail_rate: Additional per-attempt crash probability (applied to
            attempts beyond ``fail_attempts``).
        hang_ns: Stall inserted before the unit signals readiness — long
            stalls trip the unit's ``JobTimeoutSec`` watchdog if it has one.
        hang_rate: Probability an attempt hangs (1.0 = every attempt).
    """

    unit: str
    fail_attempts: int = 0
    fail_rate: float = 0.0
    hang_ns: int = 0
    hang_rate: float = 1.0

    def __post_init__(self) -> None:
        if not self.unit:
            raise ConfigurationError("ServiceFault.unit pattern cannot be empty")
        _check_non_negative(self.fail_attempts, "ServiceFault.fail_attempts")
        _check_non_negative(self.hang_ns, "ServiceFault.hang_ns")
        _check_rate(self.fail_rate, "ServiceFault.fail_rate")
        _check_rate(self.hang_rate, "ServiceFault.hang_rate")


@dataclass(frozen=True, slots=True)
class ModuleFault:
    """Kernel-module load misbehaviour for modules matching a glob.

    Attributes:
        module: Glob pattern over module names.
        fail_rate: Probability the load fails (the kmod worker pays the
            full load cost, marks the module failed, and never provides
            its device node).
        extra_latency_ns: Added load latency for matching modules that do
            load (slow firmware download, bus contention).
    """

    module: str
    fail_rate: float = 1.0
    extra_latency_ns: int = 0

    def __post_init__(self) -> None:
        if not self.module:
            raise ConfigurationError("ModuleFault.module pattern cannot be empty")
        _check_rate(self.fail_rate, "ModuleFault.fail_rate")
        _check_non_negative(self.extra_latency_ns,
                            "ModuleFault.extra_latency_ns")


@dataclass(frozen=True, slots=True)
class PathFault:
    """A device/filesystem path that appears late — or never.

    Attributes:
        path: Exact simulated path (``/dev/tuner_drv``).
        delay_ns: Provide the path this long after init starts (0 with
            ``missing=False`` is a no-op).
        missing: Suppress every provide of the path for the whole boot;
            units waiting on it block until a watchdog or the boot is
            diagnosed as wedged.
    """

    path: str
    delay_ns: int = 0
    missing: bool = False

    def __post_init__(self) -> None:
        if not self.path:
            raise ConfigurationError("PathFault.path cannot be empty")
        _check_non_negative(self.delay_ns, "PathFault.delay_ns")


@dataclass(frozen=True, slots=True)
class SettleFault:
    """Peripheral settle flakiness for units matching a glob.

    Attributes:
        unit: Glob pattern over unit names.
        multiplier: Deterministic scale on ``hw_settle_ns``.
        jitter: Extra per-(unit, attempt) variation: the effective settle
            is ``base * multiplier * (1 + jitter * u)`` with ``u`` drawn
            uniformly from [-1, 1].
    """

    unit: str = "*"
    multiplier: float = 1.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if not self.unit:
            raise ConfigurationError("SettleFault.unit pattern cannot be empty")
        if self.multiplier < 0.0:
            raise ConfigurationError("SettleFault.multiplier cannot be negative")
        _check_rate(self.jitter, "SettleFault.jitter")


@dataclass(frozen=True, slots=True)
class DeferredFault:
    """Post-completion deferred-task misbehaviour.

    Deferred work retries with bounded backoff (§2.5.2 recovery applies
    after boot completion too); this spec makes attempts fail.

    Attributes:
        task: Glob pattern over deferred-task names.
        fail_attempts: The first N attempts fail deterministically.
        fail_rate: Additional per-attempt failure probability.
    """

    task: str = "*"
    fail_attempts: int = 0
    fail_rate: float = 0.0

    def __post_init__(self) -> None:
        if not self.task:
            raise ConfigurationError("DeferredFault.task pattern cannot be empty")
        _check_non_negative(self.fail_attempts, "DeferredFault.fail_attempts")
        _check_rate(self.fail_rate, "DeferredFault.fail_rate")


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A seeded bundle of fault specs for one boot.

    Attributes:
        seed: Root of every probabilistic decision the compiled injector
            makes.  Same seed + same specs ⇒ identical injections,
            regardless of process, worker count, or cache state.
        storage / services / modules / paths / settles / deferred: The
            spec tuples (empty tuples inject nothing).
        label: Human-facing tag; carried along but semantically inert
            (it *does* enter the fingerprint — two identically-specced
            plans with different labels are still the same faults, but
            keeping the encoding total beats special-casing).
    """

    seed: int = 0
    storage: tuple[StorageFault, ...] = ()
    services: tuple[ServiceFault, ...] = ()
    modules: tuple[ModuleFault, ...] = ()
    paths: tuple[PathFault, ...] = ()
    settles: tuple[SettleFault, ...] = ()
    deferred: tuple[DeferredFault, ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        for spec_field, expected in (("storage", StorageFault),
                                     ("services", ServiceFault),
                                     ("modules", ModuleFault),
                                     ("paths", PathFault),
                                     ("settles", SettleFault),
                                     ("deferred", DeferredFault)):
            specs = getattr(self, spec_field)
            if not isinstance(specs, tuple):
                raise ConfigurationError(
                    f"FaultPlan.{spec_field} must be a tuple, got "
                    f"{type(specs).__name__}")
            for spec in specs:
                if not isinstance(spec, expected):
                    raise ConfigurationError(
                        f"FaultPlan.{spec_field} entries must be "
                        f"{expected.__name__}, got {type(spec).__name__}")

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return not (self.storage or self.services or self.modules
                    or self.paths or self.settles or self.deferred)

    def spec_count(self) -> int:
        """Total number of fault specs across all categories."""
        return (len(self.storage) + len(self.services) + len(self.modules)
                + len(self.paths) + len(self.settles) + len(self.deferred))

    def compile(self, attempt_offsets: "dict[str, int] | None" = None,
                ) -> "BootFaultInjector":
        """Build the live injector for one simulation run.

        Injectors hold per-run mutable state (request counters, stats),
        so compile a fresh one per boot.

        Args:
            attempt_offsets: Per-unit count of start attempts already made
                in *previous* boots of the same supervised recovery run.
                The injector adds the offset to each attempt number, so a
                transient fault that clears after N attempts keeps
                clearing across supervisor reboots instead of resetting —
                escalation-aware replay.
        """
        from repro.faults.injector import BootFaultInjector

        return BootFaultInjector(self, attempt_offsets=attempt_offsets)

    def describe(self) -> str:
        """One-line human summary (CLI and experiment tables)."""
        parts = []
        for spec_field in ("storage", "services", "modules", "paths",
                           "settles", "deferred"):
            specs = getattr(self, spec_field)
            if specs:
                parts.append(f"{len(specs)} {spec_field}")
        body = ", ".join(parts) if parts else "no faults"
        name = self.label or "fault-plan"
        return f"{name}(seed={self.seed}: {body})"


#: Every spec type, for introspection and serialization helpers.
SPEC_TYPES = (StorageFault, ServiceFault, ModuleFault, PathFault,
              SettleFault, DeferredFault)
