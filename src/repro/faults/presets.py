"""Named fault-plan presets for the TV workload family.

Each preset is a function ``(seed) -> FaultPlan`` capturing one failure
regime worth studying; the fault-matrix experiment sweeps them across
seeds and BB configurations.  Presets are *plans*, not injectors — pure
data, safe to embed in :class:`~repro.runner.jobs.SimJob`.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.faults.plan import (DeferredFault, FaultPlan, ModuleFault,
                               PathFault, ServiceFault, SettleFault,
                               StorageFault)
from repro.quantities import msec


def storage_storm(seed: int = 0) -> FaultPlan:
    """Aging eMMC: frequent latency spikes plus occasional read retries."""
    return FaultPlan(seed=seed, label="storage-storm", storage=(
        StorageFault(spike_rate=0.10, spike_ns=msec(3),
                     error_rate=0.03, error_retry_ns=msec(2)),))


def flaky_services(seed: int = 0) -> FaultPlan:
    """Out-of-group services crash at start; deferred work needs retries.

    None of these units is required by the completion units, so boot must
    still complete — degraded, with the casualties in the report.
    """
    return FaultPlan(
        seed=seed, label="flaky-services",
        services=(ServiceFault(unit="app-*.service", fail_rate=0.30),
                  ServiceFault(unit="vendor-*.service", fail_rate=0.20),
                  ServiceFault(unit="middleware-*.service", fail_rate=0.10)),
        deferred=(DeferredFault(task="*", fail_attempts=1),))


def late_devices(seed: int = 0) -> FaultPlan:
    """Broadcast-path device nodes appear hundreds of ms late."""
    return FaultPlan(seed=seed, label="late-devices", paths=(
        PathFault(path="/dev/tuner_drv", delay_ns=msec(700)),
        PathFault(path="/dev/demux_drv", delay_ns=msec(450)),))


def missing_device(seed: int = 0) -> FaultPlan:
    """The AV device never appears: the boot wedges on ``fasttv.service``."""
    return FaultPlan(seed=seed, label="missing-device", paths=(
        PathFault(path="/dev/av_drv", missing=True),))


def broken_tuner(seed: int = 0) -> FaultPlan:
    """The tuner daemon crashes on every attempt — an in-group casualty,
    so completion fails with the tuner named as culprit."""
    return FaultPlan(seed=seed, label="broken-tuner", services=(
        ServiceFault(unit="tuner.service", fail_attempts=99),))


def module_roulette(seed: int = 0) -> FaultPlan:
    """Bulk kmod loading misbehaves: anonymous drivers fail to load and
    every module pays extra bus latency (named broadcast drivers still
    load, so boot completes)."""
    return FaultPlan(seed=seed, label="module-roulette", modules=(
        ModuleFault(module="drv_*", fail_rate=0.10),
        ModuleFault(module="*", fail_rate=0.0, extra_latency_ns=msec(1))))


def transient_storage_burst(seed: int = 0) -> FaultPlan:
    """A storage-driven burst that clears after a few attempts.

    ``var.mount`` crashes on its first four start attempts (a filesystem
    check stumbling over a dirty journal) while the storage channel pays
    mild error-retry penalties.  An unsupervised boot fails — the default
    mount has ``Restart=no``, so the requirement failure propagates to
    everything needing ``/var`` — but any rung that retries the unit
    (in-boot restarts, or supervisor reboots with attempt carryover)
    clears the fault and completes the boot.
    """
    return FaultPlan(
        seed=seed, label="transient-storage-burst",
        services=(ServiceFault(unit="var.mount", fail_attempts=4),),
        storage=(StorageFault(error_rate=0.05, error_retry_ns=msec(1)),))


def settle_jitter(seed: int = 0) -> FaultPlan:
    """Peripherals settle slower and noisier than the datasheet says."""
    return FaultPlan(seed=seed, label="settle-jitter", settles=(
        SettleFault(unit="*", multiplier=1.3, jitter=0.5),))


#: Name -> builder, in presentation order.
PRESETS: dict[str, Callable[[int], FaultPlan]] = {
    "storage-storm": storage_storm,
    "flaky-services": flaky_services,
    "late-devices": late_devices,
    "missing-device": missing_device,
    "broken-tuner": broken_tuner,
    "module-roulette": module_roulette,
    "settle-jitter": settle_jitter,
    "transient-storage-burst": transient_storage_burst,
}


def build_preset(name: str, seed: int = 0) -> FaultPlan:
    """Build a named preset plan.

    Raises:
        ConfigurationError: For an unknown preset name.
    """
    try:
        builder = PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown fault preset {name!r}; choose from "
            f"{', '.join(PRESETS)}") from None
    return builder(seed)
