"""Fleet-scale async boot service: queue, worker shards, streaming results.

The runner tier (:mod:`repro.runner`) answers "run this batch"; the
fleet tier answers "keep running whatever the fleet sends".  It is a
long-running asyncio service built from four layers:

- :mod:`repro.fleet.protocol` — the JSON-lines wire format and the
  spec-to-:class:`~repro.runner.jobs.SimJob` translation;
- :mod:`repro.fleet.resources` — /proc-based CPU/RSS sampling and the
  :class:`ResourcePolicy` auto-scale rules;
- :mod:`repro.fleet.workers` — the elastic :class:`WorkerPool` of
  single-process shards that execute batches through ordinary
  :class:`~repro.runner.sweep.SweepRunner` instances;
- :mod:`repro.fleet.service` / :mod:`repro.fleet.client` — the TCP
  server (scheduler + dispatch + streaming delivery) and its client.

Durability rides below all of it: :mod:`repro.fleet.journal` is the
write-ahead job journal a restarted service resumes unfinished
submissions from, and :class:`~repro.fleet.client.RetryPolicy` +
:meth:`FleetClient.submit_with_retry` make clients ride out the restart.

:mod:`repro.fleet.campaign` drives the whole stack: a 10k+-job device
matrix streamed through the service and byte-compared against a serial
replay (in-process, or against an external service with crash-safe
chunked submission).  ``repro fleet serve|submit|status|campaign`` is
the CLI.
"""

from repro.fleet.campaign import (CampaignResult, build_specs,
                                  canonical_campaign_bytes, run_external)
from repro.fleet.campaign import run as run_campaign
from repro.fleet.client import (FleetClient, RetryPolicy,
                                SubmissionOutcome, backoff_schedule)
from repro.fleet.journal import JobJournal
from repro.fleet.protocol import (WORKLOAD_FACTORIES, job_from_spec,
                                  submission_key)
from repro.fleet.resources import ProcessSampler, ResourcePolicy, ResourceSample
from repro.fleet.service import FleetService
from repro.fleet.workers import WorkerPool, WorkerShard

__all__ = [
    "CampaignResult",
    "FleetClient",
    "FleetService",
    "JobJournal",
    "ProcessSampler",
    "ResourcePolicy",
    "ResourceSample",
    "RetryPolicy",
    "SubmissionOutcome",
    "WORKLOAD_FACTORIES",
    "WorkerPool",
    "WorkerShard",
    "backoff_schedule",
    "build_specs",
    "canonical_campaign_bytes",
    "job_from_spec",
    "run_campaign",
    "run_external",
    "submission_key",
]
