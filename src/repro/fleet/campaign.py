"""The fleet campaign: 10k+ boot jobs through the service, verified.

This is the deployment-shaped experiment the paper implies but never
shows: a whole fleet of consumer-electronics devices — heterogeneous
workload profiles x BB configurations x fault plans, most devices
identical to thousands of siblings — booted through the async service
instead of one batch sweep.  The campaign:

1. builds a device matrix (:func:`build_specs`) whose ``repeat`` counts
   model fleet popularity (one TV model ships millions of units),
2. boots an in-process :class:`~repro.fleet.service.FleetService` on an
   ephemeral port, submits everything over TCP, and streams results,
3. replays every **unique** job through a fresh serial
   :class:`~repro.runner.sweep.SweepRunner` and byte-compares the
   canonical encodings — the fleet-vs-serial identity oracle — and
4. reports sustained throughput (jobs/minute) for the floor gate in
   ``make fleet-smoke``.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.report import format_table
from repro.errors import FleetError
from repro.fleet.client import FleetClient, RetryPolicy
from repro.fleet.resources import ResourcePolicy
from repro.fleet.service import FleetService
from repro.runner.branch import canonical_bytes
from repro.runner.sweep import SweepRunner
from repro.fleet.protocol import job_from_spec

#: Fault presets that model field failures worth sweeping at fleet scale.
_FAULT_PRESETS = ("flaky-services", "storage-storm", "missing-device")


def build_specs(smoke: bool = False,
                total_jobs: int | None = None) -> list[dict[str, Any]]:
    """The campaign device matrix as wire specs.

    Full matrix: 6 workload profiles x {full, none} BB x (healthy + 3
    fault presets x 2 seeds) = 84 unique boots; smoke: 2 profiles x 2 BB
    x (healthy + 1 preset) = 8 unique.  ``repeat`` counts spread
    ``total_jobs`` (default 10,080) across the cells with a deliberate
    skew — earlier cells model popular device models — so the stream is
    dominated by single-flight/cache traffic exactly like a real fleet.
    """
    workloads = ("tv", "camera") if smoke else (
        "tv", "tv-commercial", "camera", "phone", "wearable", "appliance")
    presets = _FAULT_PRESETS[:1] if smoke else _FAULT_PRESETS
    seeds = (1,) if smoke else (1, 2)
    if total_jobs is None:
        total_jobs = 10_080

    cells: list[dict[str, Any]] = []
    for workload in workloads:
        for bb in ("full", "none"):
            cells.append({"kind": "boot", "workload": workload, "bb": bb,
                          "label": f"{workload}/{bb}/healthy"})
            for preset in presets:
                for seed in seeds:
                    cells.append({
                        "kind": "boot", "workload": workload, "bb": bb,
                        "fault": {"preset": preset, "seed": seed},
                        "label": f"{workload}/{bb}/{preset}#{seed}",
                    })

    # Zipf-ish popularity skew: cell i ships proportionally to 1/(i+1),
    # scaled so the campaign totals ``total_jobs``.
    weights = [1.0 / (index + 1) for index in range(len(cells))]
    scale = total_jobs / sum(weights)
    repeats = [max(1, round(weight * scale)) for weight in weights]
    deficit = total_jobs - sum(repeats)
    repeats[0] = max(1, repeats[0] + deficit)
    for cell, repeat in zip(cells, repeats):
        cell["repeat"] = repeat
    return cells


@dataclass(slots=True)
class CampaignResult:
    """What one fleet campaign measured.

    Attributes:
        total_jobs: Tickets submitted (after ``repeat`` expansion).
        unique_jobs: Distinct fingerprints in the matrix.
        executed: Unique jobs the shards actually simulated.
        cache_hits: Tickets answered from the cache at submit time.
        coalesced: Tickets that rode an in-flight execution
            (single-flight dedup).
        wall_s: Submit-to-done wall time.
        jobs_per_min: Sustained delivery throughput.
        identical: Every fleet result byte-matched its serial replay.
        mismatches: Human-readable identity violations (empty = pass).
        serial_wall_s: Wall time of the serial replay of unique jobs.
        peak_workers: Largest shard count the pool reached.
        scaled_up / scaled_down: Auto-scale events observed.
        smoke: Whether this was the CI-sized matrix.
        status: The service's final status snapshot.
        provenance: ``"fresh"`` for an uninterrupted campaign,
            ``"resumed"`` when the service recovered journaled work or
            the client retried through a restart.
        resumed_jobs: Submissions the service's journal resumed.
        client_retries: Transport attempts beyond the first across all
            submissions (see ``SubmissionOutcome.attempts``).
        requeued: Fingerprints requeued after shard crashes.
        quarantined: Fingerprints quarantined by the service.
    """

    total_jobs: int
    unique_jobs: int
    executed: int
    cache_hits: int
    coalesced: int
    wall_s: float
    jobs_per_min: float
    identical: bool
    mismatches: list[str] = field(default_factory=list)
    serial_wall_s: float = 0.0
    peak_workers: int = 0
    scaled_up: int = 0
    scaled_down: int = 0
    smoke: bool = False
    status: dict[str, Any] = field(default_factory=dict)
    provenance: str = "fresh"
    resumed_jobs: int = 0
    client_retries: int = 0
    requeued: int = 0
    quarantined: int = 0


async def _run_campaign(specs: list[dict[str, Any]],
                        policy: ResourcePolicy,
                        batch_size: int,
                        journal_dir: str | None = None
                        ) -> tuple[Any, dict[str, Any]]:
    service = FleetService(port=0, policy=policy, batch_size=batch_size,
                           journal_dir=journal_dir)
    host, port = await service.start()
    try:
        async with FleetClient(host, port) as client:
            started = time.perf_counter()
            outcome = await client.submit(specs)
            wall_s = time.perf_counter() - started
            status = await client.status()
        await service.drain()
        return (outcome, wall_s), status
    finally:
        if not service.draining:
            await service.stop()


def run(smoke: bool = False, total_jobs: int | None = None,
        max_workers: int | None = None,
        batch_size: int = 16,
        journal_dir: str | None = None) -> CampaignResult:
    """Run the campaign end to end; see :class:`CampaignResult`.

    The identity oracle replays every unique fingerprint through a
    fresh serial ``SweepRunner`` (separate caches, separate processes)
    and compares canonical bytes against the streamed payloads.
    """
    from repro.runner.schedule import resolve_worker_count

    specs = build_specs(smoke=smoke, total_jobs=total_jobs)
    policy = ResourcePolicy(
        min_workers=1,
        max_workers=resolve_worker_count(max_workers))
    (outcome, wall_s), status = asyncio.run(
        _run_campaign(specs, policy, batch_size, journal_dir))

    # ---------------------------------------------------- identity oracle
    unique: dict[str, Any] = {}
    for spec in specs:
        job, _ = job_from_spec(spec)
        unique.setdefault(job.fingerprint(), job)
    serial_started = time.perf_counter()
    with SweepRunner(jobs=1) as serial_runner:
        serial_results = serial_runner.run(list(unique.values()))
    serial_wall_s = time.perf_counter() - serial_started
    serial_bytes = {fingerprint: canonical_bytes(result)
                    for fingerprint, result
                    in zip(unique, serial_results)}

    mismatches: list[str] = []
    for index, message in sorted(outcome.errors.items()):
        mismatches.append(f"job {index}: streamed error: {message}")
    for index, (fingerprint, payload) in enumerate(
            zip(outcome.fingerprints, outcome.payloads)):
        expected = serial_bytes.get(fingerprint)
        if expected is None:
            mismatches.append(f"job {index}: fleet fingerprint "
                              f"{fingerprint[:12]} absent from the "
                              f"serial replay")
        elif payload != expected:
            mismatches.append(f"job {index}: fleet payload differs from "
                              f"the serial replay ({fingerprint[:12]})")
    if len(outcome.payloads) != specs_expanded_total(specs):
        mismatches.append(
            f"delivered {len(outcome.payloads)} results for "
            f"{specs_expanded_total(specs)} submitted jobs")

    scheduler = status.get("scheduler", {})
    pool = status.get("pool", {})
    journal = status.get("journal", {})
    resilience = status.get("resilience", {})
    resumed = int(journal.get("resumed", 0))
    retries = max(0, getattr(outcome, "attempts", 1) - 1)
    return CampaignResult(
        total_jobs=outcome.total,
        unique_jobs=len(unique),
        executed=int(scheduler.get("dispatched", 0)),
        cache_hits=int(scheduler.get("cache_hits", 0)),
        coalesced=int(scheduler.get("coalesced", 0)),
        wall_s=wall_s,
        jobs_per_min=(outcome.total / wall_s * 60.0) if wall_s else 0.0,
        identical=not mismatches,
        mismatches=mismatches,
        serial_wall_s=serial_wall_s,
        peak_workers=int(pool.get("peak_workers", 0)),
        scaled_up=int(pool.get("scaled_up", 0)),
        scaled_down=int(pool.get("scaled_down", 0)),
        smoke=smoke,
        status=status,
        provenance="resumed" if (resumed or retries) else "fresh",
        resumed_jobs=resumed,
        client_retries=retries,
        requeued=int(resilience.get("requeued", 0)),
        quarantined=int(resilience.get("quarantined", 0)),
    )


def specs_expanded_total(specs: list[dict[str, Any]]) -> int:
    """Total tickets a spec list expands to."""
    return sum(spec.get("repeat", 1) for spec in specs)


# ------------------------------------------------- canonical campaign report


def campaign_report(total: int, fingerprints: list[str],
                    payloads: list[bytes],
                    errors: dict[Any, str]) -> dict[str, Any]:
    """The campaign's result stream as a pure-data report document.

    Per-ticket fingerprints plus sha256 of each canonical payload, in
    submission order — everything that identifies *what the fleet
    answered*, nothing that depends on *how* (timings, worker counts,
    how many times the client had to retry).
    """
    return {
        "total": total,
        "jobs": [{"fingerprint": fingerprint,
                  "payload_sha256": hashlib.sha256(payload).hexdigest()}
                 for fingerprint, payload in zip(fingerprints, payloads)],
        "errors": {str(key): value for key, value in sorted(
            errors.items(), key=lambda item: str(item[0]))},
    }


def canonical_campaign_bytes(report: dict[str, Any]) -> bytes:
    """Canonical encoding of :func:`campaign_report` for byte-identity."""
    return json.dumps(report, sort_keys=True,
                      separators=(",", ":")).encode("ascii")


def serial_campaign_bytes(specs: list[dict[str, Any]]
                          ) -> tuple[bytes, int]:
    """Canonical report of an *uninterrupted serial* run of ``specs``.

    This is the ground truth the ``fleet-crash`` verify group compares
    a crashed-and-resumed campaign against: expand the specs in
    submission order, run each unique fingerprint once through a fresh
    serial :class:`~repro.runner.sweep.SweepRunner`, and canonicalize.
    Returns ``(bytes, unique_job_count)``.
    """
    expanded: list[tuple[str, Any]] = []
    unique: dict[str, Any] = {}
    for spec in specs:
        job, repeat = job_from_spec(spec)
        fingerprint = job.fingerprint()
        unique.setdefault(fingerprint, job)
        expanded.extend([(fingerprint, job)] * repeat)
    with SweepRunner(jobs=1) as runner:
        results = runner.run(list(unique.values()))
    by_fingerprint = {fingerprint: canonical_bytes(result)
                      for fingerprint, result in zip(unique, results)}
    fingerprints = [fingerprint for fingerprint, _ in expanded]
    payloads = [by_fingerprint[fingerprint] for fingerprint in fingerprints]
    report = campaign_report(len(expanded), fingerprints, payloads, {})
    return canonical_campaign_bytes(report), len(unique)


# ----------------------------------------------------- remote (client) mode


def chunk_specs(specs: list[dict[str, Any]],
                cells_per_chunk: int = 1) -> list[list[dict[str, Any]]]:
    """Split a spec list into per-submission chunks.

    Chunked submission is what makes a campaign *restart-survivable* at
    useful granularity: each chunk is one journaled submission, so a
    service crash loses at most one chunk's ack — which the client
    resubmits idempotently.
    """
    cells_per_chunk = max(1, cells_per_chunk)
    return [specs[index:index + cells_per_chunk]
            for index in range(0, len(specs), cells_per_chunk)]


@dataclass(slots=True)
class RemoteOutcome:
    """A chunked campaign's aggregated stream, in submission order.

    Attributes:
        total: Tickets across all chunks (after ``repeat`` expansion).
        fingerprints / payloads: Per ticket, submission order.
        errors: Global-ticket-index (or ``"N:server"``) -> message.
        attempts: Transport attempts summed over chunks (== number of
            chunks when nothing ever failed).
        chunks: Submissions made.
        status: The service's final status snapshot (after the last
            chunk; reflects the *surviving* process after a restart).
    """

    total: int = 0
    fingerprints: list[str] = field(default_factory=list)
    payloads: list[bytes] = field(default_factory=list)
    errors: dict[Any, str] = field(default_factory=dict)
    attempts: int = 0
    chunks: int = 0
    status: dict[str, Any] = field(default_factory=dict)

    def report(self) -> dict[str, Any]:
        return campaign_report(self.total, self.fingerprints,
                               self.payloads, self.errors)


def run_remote(host: str, port: int,
               chunks: list[list[dict[str, Any]]],
               retry: RetryPolicy | None = None,
               connect_timeout: float | None = 5.0,
               read_timeout: float | None = None,
               priority: int = 0) -> RemoteOutcome:
    """Drive a chunked campaign against an *external* fleet service.

    Each chunk keeps a stable ``campaign-N`` submission id across
    retries, so a service restart mid-campaign is survived transparently:
    the journaled service resumes what it acked, the client resubmits
    what it never saw acked, and the content-addressed cache makes both
    paths converge on identical bytes.
    """
    async def _run() -> RemoteOutcome:
        outcome = RemoteOutcome()
        client = FleetClient(host, port, connect_timeout=connect_timeout,
                             read_timeout=read_timeout)
        try:
            for number, chunk in enumerate(chunks):
                result = await client.submit_with_retry(
                    chunk, priority=priority, sid=f"campaign-{number}",
                    policy=retry)
                base = len(outcome.payloads)
                for offset, message in sorted(result.errors.items()):
                    key = (f"{number}:server" if offset < 0
                           else base + offset)
                    outcome.errors[key] = message
                outcome.total += result.total
                outcome.fingerprints.extend(result.fingerprints)
                outcome.payloads.extend(result.payloads)
                outcome.attempts += result.attempts
                outcome.chunks += 1
            try:
                outcome.status = await client.status()
            except FleetError:
                await client.close()
                await client.connect()
                outcome.status = await client.status()
        finally:
            await client.close()
        return outcome
    return asyncio.run(_run())


def run_external(host: str, port: int, smoke: bool = False,
                 total_jobs: int | None = None,
                 cells_per_chunk: int = 1,
                 retry: RetryPolicy | None = None,
                 connect_timeout: float | None = 5.0,
                 read_timeout: float | None = None) -> CampaignResult:
    """The campaign against an already-running ``repro fleet serve``.

    Same matrix and same serial identity oracle as :func:`run`, but
    submitted in restart-survivable chunks through
    :meth:`~repro.fleet.client.FleetClient.submit_with_retry` — this is
    the mode that rides out a service crash + restart, and its result
    carries the resumed-vs-fresh provenance.
    """
    specs = build_specs(smoke=smoke, total_jobs=total_jobs)
    chunks = chunk_specs(specs, cells_per_chunk)
    started = time.perf_counter()
    outcome = run_remote(host, port, chunks, retry=retry,
                         connect_timeout=connect_timeout,
                         read_timeout=read_timeout)
    wall_s = time.perf_counter() - started

    serial_started = time.perf_counter()
    expected, unique_jobs = serial_campaign_bytes(specs)
    serial_wall_s = time.perf_counter() - serial_started
    actual = canonical_campaign_bytes(outcome.report())
    mismatches: list[str] = []
    if actual != expected:
        mismatches.append(
            "campaign report is not byte-identical to the uninterrupted "
            "serial run")
    for key, message in sorted(outcome.errors.items(),
                               key=lambda item: str(item[0])):
        mismatches.append(f"job {key}: streamed error: {message}")

    status = outcome.status
    scheduler = status.get("scheduler", {})
    pool = status.get("pool", {})
    journal = status.get("journal", {})
    resilience = status.get("resilience", {})
    resumed = int(journal.get("resumed", 0))
    retries = max(0, outcome.attempts - outcome.chunks)
    return CampaignResult(
        total_jobs=outcome.total,
        unique_jobs=unique_jobs,
        executed=int(scheduler.get("dispatched", 0)),
        cache_hits=int(scheduler.get("cache_hits", 0)),
        coalesced=int(scheduler.get("coalesced", 0)),
        wall_s=wall_s,
        jobs_per_min=(outcome.total / wall_s * 60.0) if wall_s else 0.0,
        identical=not mismatches,
        mismatches=mismatches,
        serial_wall_s=serial_wall_s,
        peak_workers=int(pool.get("peak_workers", 0)),
        scaled_up=int(pool.get("scaled_up", 0)),
        scaled_down=int(pool.get("scaled_down", 0)),
        smoke=smoke,
        status=status,
        provenance="resumed" if (resumed or retries) else "fresh",
        resumed_jobs=resumed,
        client_retries=retries,
        requeued=int(resilience.get("requeued", 0)),
        quarantined=int(resilience.get("quarantined", 0)),
    )


def render(result: CampaignResult) -> str:
    """Human-readable campaign report."""
    scope = "smoke matrix" if result.smoke else "full matrix"
    provenance = result.provenance
    if result.resumed_jobs or result.client_retries:
        provenance += (f" ({result.resumed_jobs} journal-resumed, "
                       f"{result.client_retries} client retries)")
    rows = [
        ("jobs submitted", f"{result.total_jobs:,}"),
        ("unique boots", f"{result.unique_jobs}"),
        ("executed by shards", f"{result.executed}"),
        ("cache hits at submit", f"{result.cache_hits:,}"),
        ("single-flight coalesced", f"{result.coalesced:,}"),
        ("stream wall time", f"{result.wall_s:.2f} s"),
        ("throughput", f"{result.jobs_per_min:,.0f} jobs/min"),
        ("serial replay (unique)", f"{result.serial_wall_s:.2f} s"),
        ("peak workers", f"{result.peak_workers}"),
        ("auto-scale events", f"+{result.scaled_up}/-{result.scaled_down}"),
        ("provenance", provenance),
        ("requeued/quarantined", f"{result.requeued}/{result.quarantined}"),
        ("fleet == serial", "yes" if result.identical else "NO"),
    ]
    out = [f"Fleet campaign ({scope}): async service vs serial sweep, "
           "byte-identity checked",
           format_table(["metric", "value"], rows)]
    for mismatch in result.mismatches[:10]:
        out.append(f"  ! {mismatch}")
    if len(result.mismatches) > 10:
        out.append(f"  ... and {len(result.mismatches) - 10} more")
    return "\n".join(out)
