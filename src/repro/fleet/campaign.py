"""The fleet campaign: 10k+ boot jobs through the service, verified.

This is the deployment-shaped experiment the paper implies but never
shows: a whole fleet of consumer-electronics devices — heterogeneous
workload profiles x BB configurations x fault plans, most devices
identical to thousands of siblings — booted through the async service
instead of one batch sweep.  The campaign:

1. builds a device matrix (:func:`build_specs`) whose ``repeat`` counts
   model fleet popularity (one TV model ships millions of units),
2. boots an in-process :class:`~repro.fleet.service.FleetService` on an
   ephemeral port, submits everything over TCP, and streams results,
3. replays every **unique** job through a fresh serial
   :class:`~repro.runner.sweep.SweepRunner` and byte-compares the
   canonical encodings — the fleet-vs-serial identity oracle — and
4. reports sustained throughput (jobs/minute) for the floor gate in
   ``make fleet-smoke``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.report import format_table
from repro.fleet.client import FleetClient
from repro.fleet.resources import ResourcePolicy
from repro.fleet.service import FleetService
from repro.runner.branch import canonical_bytes
from repro.runner.sweep import SweepRunner
from repro.fleet.protocol import job_from_spec

#: Fault presets that model field failures worth sweeping at fleet scale.
_FAULT_PRESETS = ("flaky-services", "storage-storm", "missing-device")


def build_specs(smoke: bool = False,
                total_jobs: int | None = None) -> list[dict[str, Any]]:
    """The campaign device matrix as wire specs.

    Full matrix: 6 workload profiles x {full, none} BB x (healthy + 3
    fault presets x 2 seeds) = 84 unique boots; smoke: 2 profiles x 2 BB
    x (healthy + 1 preset) = 8 unique.  ``repeat`` counts spread
    ``total_jobs`` (default 10,080) across the cells with a deliberate
    skew — earlier cells model popular device models — so the stream is
    dominated by single-flight/cache traffic exactly like a real fleet.
    """
    workloads = ("tv", "camera") if smoke else (
        "tv", "tv-commercial", "camera", "phone", "wearable", "appliance")
    presets = _FAULT_PRESETS[:1] if smoke else _FAULT_PRESETS
    seeds = (1,) if smoke else (1, 2)
    if total_jobs is None:
        total_jobs = 10_080

    cells: list[dict[str, Any]] = []
    for workload in workloads:
        for bb in ("full", "none"):
            cells.append({"kind": "boot", "workload": workload, "bb": bb,
                          "label": f"{workload}/{bb}/healthy"})
            for preset in presets:
                for seed in seeds:
                    cells.append({
                        "kind": "boot", "workload": workload, "bb": bb,
                        "fault": {"preset": preset, "seed": seed},
                        "label": f"{workload}/{bb}/{preset}#{seed}",
                    })

    # Zipf-ish popularity skew: cell i ships proportionally to 1/(i+1),
    # scaled so the campaign totals ``total_jobs``.
    weights = [1.0 / (index + 1) for index in range(len(cells))]
    scale = total_jobs / sum(weights)
    repeats = [max(1, round(weight * scale)) for weight in weights]
    deficit = total_jobs - sum(repeats)
    repeats[0] = max(1, repeats[0] + deficit)
    for cell, repeat in zip(cells, repeats):
        cell["repeat"] = repeat
    return cells


@dataclass(slots=True)
class CampaignResult:
    """What one fleet campaign measured.

    Attributes:
        total_jobs: Tickets submitted (after ``repeat`` expansion).
        unique_jobs: Distinct fingerprints in the matrix.
        executed: Unique jobs the shards actually simulated.
        cache_hits: Tickets answered from the cache at submit time.
        coalesced: Tickets that rode an in-flight execution
            (single-flight dedup).
        wall_s: Submit-to-done wall time.
        jobs_per_min: Sustained delivery throughput.
        identical: Every fleet result byte-matched its serial replay.
        mismatches: Human-readable identity violations (empty = pass).
        serial_wall_s: Wall time of the serial replay of unique jobs.
        peak_workers: Largest shard count the pool reached.
        scaled_up / scaled_down: Auto-scale events observed.
        smoke: Whether this was the CI-sized matrix.
        status: The service's final status snapshot.
    """

    total_jobs: int
    unique_jobs: int
    executed: int
    cache_hits: int
    coalesced: int
    wall_s: float
    jobs_per_min: float
    identical: bool
    mismatches: list[str] = field(default_factory=list)
    serial_wall_s: float = 0.0
    peak_workers: int = 0
    scaled_up: int = 0
    scaled_down: int = 0
    smoke: bool = False
    status: dict[str, Any] = field(default_factory=dict)


async def _run_campaign(specs: list[dict[str, Any]],
                        policy: ResourcePolicy,
                        batch_size: int) -> tuple[Any, dict[str, Any]]:
    service = FleetService(port=0, policy=policy, batch_size=batch_size)
    host, port = await service.start()
    try:
        async with FleetClient(host, port) as client:
            started = time.perf_counter()
            outcome = await client.submit(specs)
            wall_s = time.perf_counter() - started
            status = await client.status()
        await service.drain()
        return (outcome, wall_s), status
    finally:
        if not service.draining:
            await service.stop()


def run(smoke: bool = False, total_jobs: int | None = None,
        max_workers: int | None = None,
        batch_size: int = 16) -> CampaignResult:
    """Run the campaign end to end; see :class:`CampaignResult`.

    The identity oracle replays every unique fingerprint through a
    fresh serial ``SweepRunner`` (separate caches, separate processes)
    and compares canonical bytes against the streamed payloads.
    """
    from repro.runner.schedule import resolve_worker_count

    specs = build_specs(smoke=smoke, total_jobs=total_jobs)
    policy = ResourcePolicy(
        min_workers=1,
        max_workers=resolve_worker_count(max_workers))
    (outcome, wall_s), status = asyncio.run(
        _run_campaign(specs, policy, batch_size))

    # ---------------------------------------------------- identity oracle
    unique: dict[str, Any] = {}
    for spec in specs:
        job, _ = job_from_spec(spec)
        unique.setdefault(job.fingerprint(), job)
    serial_started = time.perf_counter()
    with SweepRunner(jobs=1) as serial_runner:
        serial_results = serial_runner.run(list(unique.values()))
    serial_wall_s = time.perf_counter() - serial_started
    serial_bytes = {fingerprint: canonical_bytes(result)
                    for fingerprint, result
                    in zip(unique, serial_results)}

    mismatches: list[str] = []
    for index, message in sorted(outcome.errors.items()):
        mismatches.append(f"job {index}: streamed error: {message}")
    for index, (fingerprint, payload) in enumerate(
            zip(outcome.fingerprints, outcome.payloads)):
        expected = serial_bytes.get(fingerprint)
        if expected is None:
            mismatches.append(f"job {index}: fleet fingerprint "
                              f"{fingerprint[:12]} absent from the "
                              f"serial replay")
        elif payload != expected:
            mismatches.append(f"job {index}: fleet payload differs from "
                              f"the serial replay ({fingerprint[:12]})")
    if len(outcome.payloads) != specs_expanded_total(specs):
        mismatches.append(
            f"delivered {len(outcome.payloads)} results for "
            f"{specs_expanded_total(specs)} submitted jobs")

    scheduler = status.get("scheduler", {})
    pool = status.get("pool", {})
    return CampaignResult(
        total_jobs=outcome.total,
        unique_jobs=len(unique),
        executed=int(scheduler.get("dispatched", 0)),
        cache_hits=int(scheduler.get("cache_hits", 0)),
        coalesced=int(scheduler.get("coalesced", 0)),
        wall_s=wall_s,
        jobs_per_min=(outcome.total / wall_s * 60.0) if wall_s else 0.0,
        identical=not mismatches,
        mismatches=mismatches,
        serial_wall_s=serial_wall_s,
        peak_workers=int(pool.get("peak_workers", 0)),
        scaled_up=int(pool.get("scaled_up", 0)),
        scaled_down=int(pool.get("scaled_down", 0)),
        smoke=smoke,
        status=status,
    )


def specs_expanded_total(specs: list[dict[str, Any]]) -> int:
    """Total tickets a spec list expands to."""
    return sum(spec.get("repeat", 1) for spec in specs)


def render(result: CampaignResult) -> str:
    """Human-readable campaign report."""
    scope = "smoke matrix" if result.smoke else "full matrix"
    rows = [
        ("jobs submitted", f"{result.total_jobs:,}"),
        ("unique boots", f"{result.unique_jobs}"),
        ("executed by shards", f"{result.executed}"),
        ("cache hits at submit", f"{result.cache_hits:,}"),
        ("single-flight coalesced", f"{result.coalesced:,}"),
        ("stream wall time", f"{result.wall_s:.2f} s"),
        ("throughput", f"{result.jobs_per_min:,.0f} jobs/min"),
        ("serial replay (unique)", f"{result.serial_wall_s:.2f} s"),
        ("peak workers", f"{result.peak_workers}"),
        ("auto-scale events", f"+{result.scaled_up}/-{result.scaled_down}"),
        ("fleet == serial", "yes" if result.identical else "NO"),
    ]
    out = [f"Fleet campaign ({scope}): async service vs serial sweep, "
           "byte-identity checked",
           format_table(["metric", "value"], rows)]
    for mismatch in result.mismatches[:10]:
        out.append(f"  ! {mismatch}")
    if len(result.mismatches) > 10:
        out.append(f"  ... and {len(result.mismatches) - 10} more")
    return "\n".join(out)
