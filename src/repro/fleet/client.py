"""The fleet client: submit jobs, stream events, reassemble payloads.

:class:`FleetClient` is the asyncio side (used by the campaign and the
service tests); the module-level ``*_sync`` helpers wrap it in
``asyncio.run`` for the CLI.  Payload de-duplication is reversed here: a
``result`` frame carries either the canonical result bytes (``payload``)
or a reference to bytes this connection already received
(``payload_ref``), and :meth:`FleetClient.submit` hands back fully
resolved per-job byte strings either way.
"""

from __future__ import annotations

import asyncio
import hashlib
import uuid
from dataclasses import dataclass, field
from typing import Any, AsyncIterator

from repro.errors import ConfigurationError, FleetError, ProtocolError
from repro.fleet import protocol


def backoff_schedule(retries: int, base: float = 0.05, cap: float = 2.0,
                     seed: int = 0) -> list[float]:
    """Seeded-jitter exponential backoff delays, one per retry.

    Delay ``i`` is ``min(cap, base * 2**i)`` scaled by a jitter factor in
    ``[0.5, 1.0)`` drawn from ``sha256(seed, i)`` — deterministic per
    seed, so tests and the chaos harness can reason about exact retry
    timing.  Decorrelating a fleet of clients therefore requires
    *different* seeds per client; :class:`RetryPolicy` arranges that by
    default (``seed=None`` derives one from the client's identity) while
    an explicit seed pins the schedule for deterministic tests.
    """
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries!r}")
    if base <= 0 or cap <= 0:
        raise ConfigurationError(
            f"backoff base/cap must be > 0, got base={base!r} cap={cap!r}")
    delays: list[float] = []
    for attempt in range(retries):
        ceiling = min(cap, base * (2 ** attempt))
        digest = hashlib.sha256(
            f"fleet-backoff:{seed}:{attempt}".encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64
        delays.append(ceiling * (0.5 + 0.5 * unit))
    return delays


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How :meth:`FleetClient.submit_with_retry` rides out failures.

    Attributes:
        retries: Resubmission attempts after the first try.
        backoff_base: First-retry delay ceiling, seconds.
        backoff_cap: Upper bound any delay saturates at, seconds.
        seed: Jitter seed (see :func:`backoff_schedule`).  ``None``
            (the default) derives the seed from the per-client salt
            passed to :meth:`delays`, so a fleet of clients retrying
            against one restarting service spreads out instead of
            hammering it in lockstep; an explicit seed pins the
            schedule regardless of client, for deterministic tests.
    """

    retries: int = 5
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    seed: int | None = None

    def delays(self, salt: str = "") -> list[float]:
        seed = self.seed
        if seed is None:
            seed = int.from_bytes(hashlib.sha256(
                f"fleet-client-seed:{salt}".encode()).digest()[:8], "big")
        return backoff_schedule(self.retries, self.backoff_base,
                                self.backoff_cap, seed)


@dataclass(slots=True)
class SubmissionOutcome:
    """Everything one submission streamed back.

    Attributes:
        sid: The submission id.
        total: Jobs in the submission (after ``repeat`` expansion).
        payloads: Canonical result bytes per job, submission order.
        fingerprints: Job fingerprint per job, submission order.
        cached: Whether each job was answered from cache at submit time.
        summaries: The streamed per-job synopses.
        errors: ``index -> error`` for failed jobs (payload is ``b""``).
        events: Count of each event type seen while streaming.
        elapsed_s: Submit-to-done wall time reported by the server.
        attempts: Transport attempts this outcome took (1 = no retry;
            only :meth:`FleetClient.submit_with_retry` exceeds 1).
    """

    sid: str
    total: int = 0
    payloads: list[bytes] = field(default_factory=list)
    fingerprints: list[str] = field(default_factory=list)
    cached: list[bool] = field(default_factory=list)
    summaries: list[dict[str, Any]] = field(default_factory=list)
    errors: dict[int, str] = field(default_factory=dict)
    events: dict[str, int] = field(default_factory=dict)
    elapsed_s: float = 0.0
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return not self.errors and len(self.payloads) == self.total


class FleetClient:
    """One connection to a fleet service.

    Use as an async context manager::

        async with FleetClient(host, port) as client:
            outcome = await client.submit(specs)
    """

    def __init__(self, host: str, port: int,
                 connect_timeout: float | None = 5.0,
                 read_timeout: float | None = None,
                 client_id: str | None = None):
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.read_timeout = read_timeout
        # Salts the default retry jitter so concurrent clients draw
        # different backoff schedules (see RetryPolicy.seed).
        self.client_id = (client_id if client_id is not None
                          else uuid.uuid4().hex)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._payloads: dict[str, bytes] = {}  # fingerprint -> bytes
        self._next_sid = 0

    async def __aenter__(self) -> "FleetClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    async def connect(self) -> None:
        try:
            self._reader, self._writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port,
                                        limit=protocol.MAX_FRAME_BYTES),
                timeout=self.connect_timeout)
        except asyncio.TimeoutError as exc:
            raise FleetError(
                f"timed out after {self.connect_timeout}s connecting to "
                f"fleet service at {self.host}:{self.port}") from exc
        except (ConnectionError, OSError) as exc:
            raise FleetError(
                f"cannot reach fleet service at {self.host}:{self.port}: "
                f"{exc}") from exc

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def _send(self, message: dict[str, Any]) -> None:
        if self._writer is None:
            raise FleetError("client is not connected")
        try:
            self._writer.write(protocol.encode_frame(message))
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            raise FleetError(
                f"server closed the connection while sending "
                f"{message.get('op', '?')!r}: {exc}") from exc

    async def _read_event(self) -> dict[str, Any]:
        assert self._reader is not None
        try:
            line = await asyncio.wait_for(self._reader.readline(),
                                          timeout=self.read_timeout)
        except asyncio.TimeoutError as exc:
            raise FleetError(
                f"timed out after {self.read_timeout}s waiting for a "
                f"server event") from exc
        except (ConnectionError, OSError) as exc:
            raise FleetError(
                f"server closed the connection mid-stream: {exc}") from exc
        if not line:
            raise FleetError("server closed the connection mid-stream")
        return protocol.decode_frame(line)

    # ------------------------------------------------------------- streams

    async def stream(self, specs: list[dict[str, Any]], priority: int = 0,
                     sid: str | None = None) -> AsyncIterator[dict[str, Any]]:
        """Submit and yield raw events (ack/result/progress/done/error)
        until the submission completes."""
        if sid is None:
            sid = f"sub-{self._next_sid}"
            self._next_sid += 1
        await self._send({"op": "submit", "id": sid, "priority": priority,
                          "jobs": specs})
        while True:
            event = await self._read_event()
            yield event
            kind = event.get("event")
            if kind == "done" and event.get("id") == sid:
                return
            if kind == "error":
                return

    async def submit(self, specs: list[dict[str, Any]], priority: int = 0,
                     sid: str | None = None) -> SubmissionOutcome:
        """Submit and collect the whole stream into a
        :class:`SubmissionOutcome` (payload refs resolved)."""
        outcome = SubmissionOutcome(sid=sid if sid is not None else "")
        async for event in self.stream(specs, priority=priority, sid=sid):
            kind = str(event.get("event"))
            outcome.events[kind] = outcome.events.get(kind, 0) + 1
            if kind == "ack":
                outcome.sid = str(event.get("id"))
                outcome.total = int(event.get("jobs", 0))
            elif kind == "result":
                self._collect_result(outcome, event)
            elif kind == "done":
                outcome.elapsed_s = float(event.get("elapsed_s", 0.0))
            elif kind == "error":
                outcome.errors[-1] = str(event.get("message"))
        return outcome

    async def submit_with_retry(self, specs: list[dict[str, Any]],
                                priority: int = 0, sid: str | None = None,
                                policy: RetryPolicy | None = None
                                ) -> SubmissionOutcome:
        """:meth:`submit`, riding out transport failures and restarts.

        The submission id is fixed on the first attempt and reused on
        every retry — that, plus the jobs' content fingerprints, is what
        makes resubmission idempotent: a journaled service recognizes
        the retried ``(sid, specs, priority)`` triple, and re-executed
        fingerprints are answered from the content-addressed cache with
        identical bytes.  Retries cover transport-level
        :class:`~repro.errors.FleetError`\\ s (connect refused/timeout,
        connection cut mid-stream); :class:`~repro.errors.ProtocolError`
        means the *request* is wrong and retrying cannot help, so it
        propagates immediately.
        """
        policy = policy if policy is not None else RetryPolicy()
        if sid is None:
            sid = f"sub-{self._next_sid}"
            self._next_sid += 1
        delays = policy.delays(f"{self.client_id}:{sid}")
        attempt = 0
        while True:
            try:
                if self._writer is None:
                    await self.connect()
                outcome = await self.submit(specs, priority=priority,
                                            sid=sid)
                outcome.attempts = attempt + 1
                return outcome
            except ProtocolError:
                raise
            except FleetError as exc:
                await self.close()
                if attempt >= len(delays):
                    raise FleetError(
                        f"submission {sid!r} failed after {attempt + 1} "
                        f"attempts: {exc}") from exc
                await asyncio.sleep(delays[attempt])
                attempt += 1

    def _collect_result(self, outcome: SubmissionOutcome,
                        event: dict[str, Any]) -> None:
        index = len(outcome.payloads)
        fingerprint = str(event.get("fingerprint", ""))
        outcome.fingerprints.append(fingerprint)
        outcome.cached.append(bool(event.get("cached", False)))
        outcome.summaries.append(event.get("summary") or {})
        if "error" in event:
            outcome.errors[index] = str(event["error"])
            outcome.payloads.append(b"")
            return
        if "payload" in event:
            payload = protocol.decode_payload(event["payload"])
            self._payloads[fingerprint] = payload
        elif "payload_ref" in event:
            payload = self._payloads.get(str(event["payload_ref"]))
            if payload is None:
                raise ProtocolError(
                    f"payload_ref {event['payload_ref']!r} references "
                    f"bytes this connection never received")
        else:
            raise ProtocolError("result frame carries neither payload "
                                "nor payload_ref")
        outcome.payloads.append(payload)

    # -------------------------------------------------------------- admin

    async def status(self) -> dict[str, Any]:
        """The service's ``status`` snapshot."""
        await self._send({"op": "status"})
        while True:
            event = await self._read_event()
            if event.get("event") in ("status", "error"):
                return event

    async def request_drain(self) -> dict[str, Any]:
        """Ask the service to drain gracefully (the remote SIGTERM)."""
        await self._send({"op": "drain"})
        return await self._read_event()


# ------------------------------------------------------------ sync wrappers


def submit_sync(host: str, port: int, specs: list[dict[str, Any]],
                priority: int = 0) -> SubmissionOutcome:
    """Blocking submit-and-collect for the CLI."""
    async def _run() -> SubmissionOutcome:
        async with FleetClient(host, port) as client:
            return await client.submit(specs, priority=priority)
    return asyncio.run(_run())


def status_sync(host: str, port: int) -> dict[str, Any]:
    """Blocking status snapshot for the CLI."""
    async def _run() -> dict[str, Any]:
        async with FleetClient(host, port) as client:
            return await client.status()
    return asyncio.run(_run())
