"""The fleet write-ahead job journal: crash-safe submission durability.

BB's contract for the *device* is that power loss never loses the boot
state; this module gives the fleet *service* the same contract for its
submissions.  Before a submission is acked, it is appended — checksummed
and fsync'd — to an append-only JSONL log; when every ticket of the
submission has been delivered, a matching ``done`` record is appended.
A restarted ``repro fleet serve --journal DIR`` replays the log and
resubmits every still-open submission, and the content-addressed
:class:`~repro.runner.cache.ResultCache` makes that recovery
deterministic: re-running a fingerprint reproduces its bytes.

Durability rules (in the spirit of every serious WAL):

* **Append = write + flush + fsync.**  A record either reaches the disk
  in full before the ack leaves the service, or the submission was never
  acknowledged and the client's retry path owns it.
* **Checksummed records.**  Every line carries a ``crc`` over its own
  canonical JSON, so replay distinguishes "valid", "torn", and
  "damaged" instead of guessing.
* **Torn-tail tolerance.**  A truncated or garbled *final* record is
  exactly what a power cut mid-append produces; replay skips it, counts
  it, and truncates it off the file before the append handle opens — so
  the next append starts a fresh line instead of gluing onto the
  partial one (which would read as mid-journal damage one restart
  later).  A corrupt record *followed by a valid one* cannot be a torn
  tail — that file was damaged after the fact, and replay refuses it
  with :class:`~repro.errors.JournalError` rather than silently
  dropping acknowledged work.
* **Idempotent replay.**  Per key, ``submit`` only opens (first wins)
  and ``done`` only closes, so replaying any prefix — or the whole file
  twice — converges to the same open set.  This makes the
  checkpoint/truncate pair safe without a transaction: a crash between
  the two just replays folded records onto the checkpoint as no-ops.
* **Checkpoint/compaction.**  Every ``checkpoint_every`` appends the
  open set is folded into ``checkpoint.json`` (written temp + fsync +
  atomic rename, directory fsync'd) and the log is truncated, so the
  journal's disk footprint tracks *open* work, not lifetime traffic.

The chaos seam: ``crash_after_append=N`` makes the ``N``-th durable
append the process's last act (``os._exit(137)`` — a power cut, not an
exception), which is how the ``fleet-crash`` verify group kills the
service at a byte-deterministic journal offset.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.errors import JournalError

#: File names inside a journal directory.
JOURNAL_NAME = "journal.jsonl"
CHECKPOINT_NAME = "checkpoint.json"

#: Fold the open set into the checkpoint after this many appends.
DEFAULT_CHECKPOINT_EVERY = 64

#: Hex digits of sha256 kept as the per-record checksum.
_CRC_HEX = 12


# ------------------------------------------------------------- record codec


def _canonical(document: dict[str, Any]) -> str:
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def _crc(document: dict[str, Any]) -> str:
    return hashlib.sha256(
        _canonical(document).encode("utf-8")).hexdigest()[:_CRC_HEX]


def encode_record(record: dict[str, Any]) -> bytes:
    """One record -> one checksummed newline-terminated JSON line."""
    body = {key: value for key, value in record.items() if key != "crc"}
    body["crc"] = _crc(body)
    return (_canonical(body) + "\n").encode("utf-8")


def decode_record(line: bytes) -> dict[str, Any] | None:
    """Inverse of :func:`encode_record`; ``None`` means torn/corrupt."""
    try:
        document = json.loads(line)
    except ValueError:
        return None
    if not isinstance(document, dict):
        return None
    crc = document.pop("crc", None)
    if crc != _crc(document):
        return None
    return document


# ---------------------------------------------------------------- replaying


def parse_journal_bytes(raw: bytes,
                        source: str = "<journal>"
                        ) -> tuple[list[dict[str, Any]], int, int]:
    """Split raw journal bytes into
    ``(valid records, skipped tail lines, valid byte length)``.

    ``valid byte length`` is the offset just past the last valid
    record's line — the length the file must be cut back to before any
    new record is appended.  Appending after torn tail bytes would glue
    the next record onto the partial line, turning tolerated tail
    damage into fatal mid-journal damage one restart later.

    Raises:
        JournalError: A corrupt record is followed by a valid one —
            mid-journal damage, which torn-tail tolerance must not mask.
    """
    records: list[dict[str, Any]] = []
    corrupt_at: int | None = None
    skipped = 0
    valid_bytes = 0
    offset = 0
    lineno = 0
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        end = len(raw) if newline < 0 else newline + 1
        line = raw[offset:len(raw) if newline < 0 else newline]
        lineno += 1
        offset = end
        if not line.strip():
            continue
        record = decode_record(line)
        if record is None:
            if corrupt_at is None:
                corrupt_at = lineno
            skipped += 1
            continue
        if corrupt_at is not None:
            raise JournalError(
                f"{source}: corrupt record at line {corrupt_at} is followed "
                f"by a valid record at line {lineno} — mid-journal damage, "
                f"not a torn tail")
        records.append(record)
        valid_bytes = end
    return records, skipped, valid_bytes


def replay_records(records: Iterable[dict[str, Any]],
                   state: dict[str, dict[str, Any]] | None = None
                   ) -> dict[str, dict[str, Any]]:
    """Fold records over ``state``; returns the open-submission map.

    Per key, ``submit`` opens (first one wins) and ``done`` closes, so
    replay is idempotent: any record may be applied any number of times
    without changing the final open set.
    """
    state = {} if state is None else dict(state)
    for record in records:
        kind = record.get("type")
        key = record.get("key")
        if not isinstance(key, str) or not key:
            raise JournalError(f"journal record has no key: {record!r}")
        if kind == "submit":
            state.setdefault(key, record)
        elif kind == "done":
            state.pop(key, None)
        else:
            raise JournalError(f"unknown journal record type {kind!r}")
    return state


def load_checkpoint(path: Path) -> dict[str, dict[str, Any]]:
    """The checkpointed open set (empty when no checkpoint exists).

    The checkpoint is written atomically, so unlike the journal tail a
    damaged checkpoint is a real error, not an expected crash artifact.
    """
    if not path.exists():
        return {}
    try:
        document = json.loads(path.read_bytes())
    except ValueError as exc:
        raise JournalError(f"{path}: unreadable checkpoint: {exc}") from exc
    if (not isinstance(document, dict)
            or not isinstance(document.get("open"), dict)):
        raise JournalError(f"{path}: checkpoint is not an "
                           f"{{'open': {{...}}}} document")
    return dict(document["open"])


# ------------------------------------------------------------ fsync helpers


def _fsync_dir(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without O_RDONLY dirs
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write ``payload`` so a crash leaves either the old file or the new
    one, never a torn mix: temp file + fsync + rename + directory fsync."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


# -------------------------------------------------------------- the journal


@dataclass(slots=True)
class JournalStats:
    """Lifetime accounting for one :class:`JobJournal` instance.

    Attributes:
        appended: Records durably appended by this process.
        replayed: Valid records applied while opening the journal.
        skipped_tail: Torn/corrupt tail lines skipped while opening.
        checkpoints: Compactions performed by this process.
        since_checkpoint: Appends since the last compaction (including
            records inherited from the on-disk log at open).
    """

    appended: int = 0
    replayed: int = 0
    skipped_tail: int = 0
    checkpoints: int = 0
    since_checkpoint: int = 0


class JobJournal:
    """Append-only, checksummed, fsync'd write-ahead log of submissions.

    Args:
        root: Journal directory (created if missing); holds
            ``journal.jsonl`` + ``checkpoint.json``.
        checkpoint_every: Appends between compactions.
        crash_after_append: Chaos hook — ``os._exit(137)`` immediately
            after the N-th append becomes durable (simulated power cut).
    """

    def __init__(self, root: str | Path,
                 checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
                 crash_after_append: int | None = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.checkpoint_every = max(1, int(checkpoint_every))
        self.crash_after_append = crash_after_append
        self.stats = JournalStats()
        self.open_submissions: dict[str, dict[str, Any]] = {}
        self._replay()
        self._handle = open(self.journal_path, "ab")

    @property
    def journal_path(self) -> Path:
        return self.root / JOURNAL_NAME

    @property
    def checkpoint_path(self) -> Path:
        return self.root / CHECKPOINT_NAME

    @property
    def depth(self) -> int:
        """Open (journaled, not yet done) submissions."""
        return len(self.open_submissions)

    def _replay(self) -> None:
        state = load_checkpoint(self.checkpoint_path)
        raw = (self.journal_path.read_bytes()
               if self.journal_path.exists() else b"")
        records, skipped, valid_bytes = parse_journal_bytes(
            raw, str(self.journal_path))
        self.open_submissions = replay_records(records, state)
        self.stats.replayed = len(records)
        self.stats.skipped_tail = skipped
        self.stats.since_checkpoint = len(records)
        # Amputate the torn tail before the append handle opens: bytes
        # left after the last valid record would glue onto the next
        # append, producing one corrupt merged line that the restart
        # after this one rejects as mid-journal damage.  A final valid
        # record whose newline was cut gets it back for the same reason.
        clean = raw[:valid_bytes]
        if clean and not clean.endswith(b"\n"):
            clean += b"\n"
        if clean != raw:
            atomic_write_bytes(self.journal_path, clean)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    # -------------------------------------------------------------- writes

    def record_submit(self, key: str, sid: str,
                      specs: list[dict[str, Any]], priority: int) -> bool:
        """Journal one submission before it is acked.

        Idempotent: re-journaling an already-open key (a client retry of
        an unacked submission) appends nothing and returns ``False``.
        """
        if key in self.open_submissions:
            return False
        record = {"type": "submit", "key": key, "sid": sid,
                  "specs": specs, "priority": priority}
        # The open set must be mutated before _append (a checkpoint
        # triggered by the append folds it), but a failed append (ENOSPC,
        # I/O error) must roll it back: a key left open in memory with
        # nothing durable would dedupe the client's retry of the
        # never-acked submission, silently losing it across a crash.
        self.open_submissions[key] = record
        try:
            self._append(record)
        except Exception:
            self.open_submissions.pop(key, None)
            raise
        return True

    def record_done(self, key: str) -> bool:
        """Journal a submission's completion; ``False`` if it was not open."""
        record = self.open_submissions.pop(key, None)
        if record is None:
            return False
        try:
            self._append({"type": "done", "key": key})
        except Exception:
            self.open_submissions[key] = record
            raise
        return True

    def _append(self, record: dict[str, Any]) -> None:
        self._handle.write(encode_record(record))
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.stats.appended += 1
        self.stats.since_checkpoint += 1
        if self.stats.appended == self.crash_after_append:
            # Simulated power cut: the record above is durable, nothing
            # after this line happens.  No cleanup, no atexit, no flush.
            os._exit(137)
        if self.stats.since_checkpoint >= self.checkpoint_every:
            self.checkpoint()

    # --------------------------------------------------------- compaction

    def checkpoint(self) -> None:
        """Fold the open set into ``checkpoint.json``, truncate the log.

        The two steps are individually atomic and replay is idempotent,
        so a crash between them replays the folded records onto the new
        checkpoint as no-ops.
        """
        document = {"open": {key: self.open_submissions[key]
                             for key in sorted(self.open_submissions)}}
        payload = (json.dumps(document, sort_keys=True, indent=2)
                   + "\n").encode("utf-8")
        atomic_write_bytes(self.checkpoint_path, payload)
        self._handle.close()
        atomic_write_bytes(self.journal_path, b"")
        self._handle = open(self.journal_path, "ab")
        self.stats.checkpoints += 1
        self.stats.since_checkpoint = 0

    # ------------------------------------------------------------- status

    def status(self) -> dict[str, Any]:
        """JSON-able snapshot for ``op: status``."""
        return {
            "enabled": True,
            "depth": self.depth,
            "appended": self.stats.appended,
            "replayed": self.stats.replayed,
            "skipped_tail": self.stats.skipped_tail,
            "checkpoints": self.stats.checkpoints,
            "since_checkpoint": self.stats.since_checkpoint,
        }
