"""The fleet wire protocol: JSON-lines frames and declarative job specs.

One TCP connection carries newline-delimited JSON objects in both
directions.  Requests carry an ``op`` key, server events an ``event``
key.  The protocol is deliberately boring — every frame is a dict, every
frame fits on one line — so ``repro fleet submit`` output can be piped
straight into ``jq`` and a smoke test can speak it with four lines of
asyncio.

Requests:

* ``{"op": "submit", "id": <str>, "priority": <int>, "jobs": [SPEC...]}``
* ``{"op": "status"}``
* ``{"op": "drain"}`` — ask the service to stop accepting work, finish
  what is in flight, and exit (the SIGTERM path, over the wire).

Events:

* ``ack`` — submission accepted: ``{"id", "jobs"}`` (total after
  ``repeat`` expansion).
* ``result`` — one job finished: ``{"id", "index", "fingerprint",
  "cached", "summary", ...}`` and exactly one of ``payload`` (base64 of
  the canonical result pickle, first time this connection sees the
  fingerprint) or ``payload_ref`` (the fingerprint of an
  already-streamed payload — fleet campaigns submit the same device
  boot thousands of times, and re-shipping identical bytes would
  drown the link).  Results for a connection always arrive in
  submission order.
* ``progress`` — ``{"id", "done", "total"}``, interleaved with results.
* ``done`` — the whole submission is delivered: ``{"id", "total",
  "elapsed_s"}``.
* ``error`` — submission- or connection-level failure: ``{"message",
  "id"?}``.
* ``status`` — the service snapshot for ``op: status``.

A job SPEC is declarative (no pickles cross the trust boundary):

``{"kind": "boot"|"recover", "workload": <name>, "bb": "full"|"none"|
[feature...], "cores": <int|null>, "fault": {"preset": <name>,
"seed": <int>}|null, "repeat": <int>, "label": <str>}``

``repeat`` expands server-side into that many tickets of the identical
fingerprint — the single-flight scheduler executes one and fans the
result out, which is exactly the fleet-of-identical-devices shape.
"""

from __future__ import annotations

import base64
import hashlib
import json
from typing import Any, Callable

from repro.core.config import BBConfig
from repro.errors import ProtocolError
from repro.runner.jobs import SimJob
from repro.workloads import WORKLOAD_FACTORIES as _REGISTRY

#: Named workload factories resolvable over the wire (the shared
#: registry from :mod:`repro.workloads`, same names as the CLI).
WORKLOAD_FACTORIES: dict[str, Callable[..., Any]] = dict(_REGISTRY)

#: Hard ceiling on one frame; a line longer than this is a protocol error
#: (64 MiB comfortably holds a 100k-spec campaign submission).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Spec keys the decoder accepts; anything else is a typo worth rejecting.
_SPEC_KEYS = frozenset({"kind", "workload", "bb", "cores", "fault",
                        "repeat", "label"})


def encode_frame(message: dict[str, Any]) -> bytes:
    """One message -> one newline-terminated JSON line."""
    return json.dumps(message, separators=(",", ":"),
                      sort_keys=True).encode() + b"\n"


def decode_frame(line: bytes) -> dict[str, Any]:
    """One received line -> message dict; raises :class:`ProtocolError`."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(line)} bytes exceeds the "
                            f"{MAX_FRAME_BYTES}-byte limit")
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"frame must be a JSON object, "
                            f"got {type(message).__name__}")
    return message


def encode_payload(canonical: bytes) -> str:
    """Canonical result bytes -> the base64 text carried in a ``result``."""
    return base64.b64encode(canonical).decode("ascii")


def decode_payload(text: str) -> bytes:
    """Inverse of :func:`encode_payload`."""
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise ProtocolError(f"undecodable result payload: {exc}") from exc


def submission_key(sid: str, specs: list[dict[str, Any]],
                   priority: int) -> str:
    """Content key identifying one submission for the write-ahead journal.

    A retrying client resubmits the same ``(sid, specs, priority)``
    triple, so hashing their canonical JSON makes the journal's
    ``record_submit`` naturally idempotent across retries while two
    different submissions (even with colliding auto-generated sids from
    different connections) still collapse only when they are genuinely
    the same work.
    """
    body = json.dumps({"sid": sid, "specs": specs, "priority": priority},
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------- job specs


def _resolve_bb(value: Any) -> BBConfig:
    if value is None or value == "full":
        return BBConfig.full()
    if value == "none":
        return BBConfig.none()
    if isinstance(value, list) and all(isinstance(f, str) for f in value):
        config = BBConfig.none()
        for feature in value:
            try:
                config = config.with_feature(feature, True)
            except Exception as exc:
                raise ProtocolError(f"unknown BB feature {feature!r}") from exc
        return config
    raise ProtocolError(f"bad 'bb' value {value!r}: expected 'full', "
                        f"'none', or a list of feature names")


def _resolve_fault(value: Any) -> Any:
    if value is None:
        return None
    if not isinstance(value, dict) or "preset" not in value:
        raise ProtocolError(f"bad 'fault' value {value!r}: expected "
                            f"{{'preset': name, 'seed': int}}")
    from repro.faults import build_preset
    seed = value.get("seed", 1)
    if not isinstance(seed, int):
        raise ProtocolError(f"fault seed must be an int, got {seed!r}")
    try:
        return build_preset(value["preset"], seed=seed)
    except Exception as exc:
        raise ProtocolError(f"unknown fault preset "
                            f"{value['preset']!r}") from exc


def job_from_spec(spec: dict[str, Any]) -> tuple[SimJob, int]:
    """Resolve one declarative spec into ``(job, repeat)``.

    Raises:
        ProtocolError: On any unknown key, workload, preset or feature —
            a fleet client's typo must come back as a clean error event,
            not a worker crash three layers down.
    """
    if not isinstance(spec, dict):
        raise ProtocolError(f"job spec must be an object, got {spec!r}")
    unknown = set(spec) - _SPEC_KEYS
    if unknown:
        raise ProtocolError(f"unknown job spec keys: {sorted(unknown)}")
    kind = spec.get("kind", "boot")
    workload_name = spec.get("workload", "tv")
    factory = WORKLOAD_FACTORIES.get(workload_name)
    if factory is None:
        raise ProtocolError(
            f"unknown workload {workload_name!r}; choose from "
            f"{', '.join(sorted(WORKLOAD_FACTORIES))}")
    repeat = spec.get("repeat", 1)
    if not isinstance(repeat, int) or repeat < 1:
        raise ProtocolError(f"'repeat' must be an int >= 1, got {repeat!r}")
    cores = spec.get("cores")
    if cores is not None and (not isinstance(cores, int) or cores < 1):
        raise ProtocolError(f"'cores' must be an int >= 1, got {cores!r}")
    label = spec.get("label", "")
    plan = _resolve_fault(spec.get("fault"))
    if kind == "boot":
        job = SimJob.boot(factory, bb=_resolve_bb(spec.get("bb")),
                          cores=cores, fault_plan=plan, label=label)
    elif kind == "recover":
        if cores is not None:
            raise ProtocolError("'cores' is not supported on recover jobs")
        job = SimJob.recover(factory, fault_plan=plan, label=label)
    else:
        raise ProtocolError(f"unknown job kind {kind!r}; "
                            f"expected 'boot' or 'recover'")
    return job, repeat


def summarize_result(result: Any) -> dict[str, Any]:
    """A tiny JSON-able synopsis of any job result for streaming UIs."""
    summary: dict[str, Any] = {"type": type(result).__name__}
    boot_ms = getattr(result, "boot_complete_ms", None)
    if isinstance(boot_ms, (int, float)):
        summary["boot_ms"] = round(float(boot_ms), 3)
    degraded = getattr(result, "degraded", None)
    if isinstance(degraded, bool):
        summary["degraded"] = degraded
    workload = getattr(result, "workload", None)
    if isinstance(workload, str):
        summary["workload"] = workload
    return summary
