"""Per-worker resource sampling and the auto-scale policy.

The fleet's worker shards are child processes; this module watches them
the way a deployment watchdog would — CPU share and resident set size —
and turns the samples plus the queue backlog into a target worker count.
Sampling reads ``/proc/<pid>/stat`` and ``/proc/<pid>/statm`` directly
(no third-party dependency); on platforms without procfs every sample
degrades to ``None`` fields and the policy falls back to pure
backlog-driven scaling.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096
_CLOCK_TICKS = (os.sysconf("SC_CLK_TCK")
                if hasattr(os, "sysconf") else 100) or 100


@dataclass(slots=True)
class ResourceSample:
    """One observation of one process.

    Attributes:
        pid: Sampled process id (0 when the worker has no child yet).
        cpu_percent: CPU share since the previous sample, 0-100 per core
            (``None`` when unavailable — first sample, dead pid, or no
            procfs).
        rss_bytes: Resident set size (``None`` when unavailable).
    """

    pid: int
    cpu_percent: float | None
    rss_bytes: int | None


def _read_cpu_ticks(pid: int) -> int | None:
    """utime+stime jiffies from ``/proc/<pid>/stat``, or ``None``."""
    try:
        text = Path(f"/proc/{pid}/stat").read_text()
    except OSError:
        return None
    # Field 2 (comm) may contain spaces/parens; everything after the
    # closing paren is fixed-position.
    try:
        rest = text.rsplit(")", 1)[1].split()
        return int(rest[11]) + int(rest[12])  # utime, stime
    except (IndexError, ValueError):
        return None


def _read_rss_bytes(pid: int) -> int | None:
    """Resident pages from ``/proc/<pid>/statm``, or ``None``."""
    try:
        fields = Path(f"/proc/{pid}/statm").read_text().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return None


class ProcessSampler:
    """Incremental CPU/RSS sampler for one pid.

    CPU percent is computed from the jiffy delta between consecutive
    :meth:`sample` calls, so the first call reports ``cpu_percent=None``
    and later calls report the average share over the interval.
    """

    def __init__(self, pid: int):
        self.pid = pid
        self._last_ticks: int | None = None
        self._last_time: float | None = None

    def sample(self) -> ResourceSample:
        now = time.monotonic()
        ticks = _read_cpu_ticks(self.pid)
        cpu: float | None = None
        if (ticks is not None and self._last_ticks is not None
                and self._last_time is not None and now > self._last_time):
            elapsed = now - self._last_time
            cpu = ((ticks - self._last_ticks) / _CLOCK_TICKS) / elapsed * 100.0
            cpu = max(0.0, cpu)
        if ticks is not None:
            self._last_ticks = ticks
            self._last_time = now
        return ResourceSample(pid=self.pid, cpu_percent=cpu,
                              rss_bytes=_read_rss_bytes(self.pid))


@dataclass(frozen=True, slots=True)
class ResourcePolicy:
    """The auto-scale knobs: when to grow, when to shrink.

    Attributes:
        min_workers: Never drain below this many shards.
        max_workers: Hard cap on shards.
        max_rss_bytes: Scale down when the shards' combined RSS exceeds
            this (``None`` disables the memory brake).
        max_cpu_percent: Scale down when the mean per-shard CPU share
            exceeds this (``None`` disables the CPU brake).
        backlog_per_worker: Grow while the queued-job backlog exceeds
            this many jobs per existing shard.
    """

    min_workers: int = 1
    max_workers: int = 4
    max_rss_bytes: int | None = None
    max_cpu_percent: float | None = None
    backlog_per_worker: int = 2

    def __post_init__(self) -> None:
        if self.min_workers < 1 or self.max_workers < self.min_workers:
            raise ValueError(
                f"need 1 <= min_workers <= max_workers, got "
                f"{self.min_workers}..{self.max_workers}")

    def overloaded(self, samples: list[ResourceSample]) -> bool:
        """True when the sampled shards breach a resource brake."""
        if self.max_rss_bytes is not None:
            total_rss = sum(s.rss_bytes for s in samples
                            if s.rss_bytes is not None)
            if total_rss > self.max_rss_bytes:
                return True
        if self.max_cpu_percent is not None:
            cpus = [s.cpu_percent for s in samples
                    if s.cpu_percent is not None]
            if cpus and sum(cpus) / len(cpus) > self.max_cpu_percent:
                return True
        return False

    def target_workers(self, current: int, backlog: int,
                       samples: list[ResourceSample]) -> int:
        """The worker count the pool should converge toward.

        Grows one shard at a time while the backlog justifies it and no
        resource brake is on; shrinks one at a time when overloaded or
        idle.  One-step moves keep the pool from thrashing on bursty
        submission patterns.
        """
        if self.overloaded(samples):
            return max(self.min_workers, current - 1)
        if backlog == 0:
            return max(self.min_workers, current - 1)
        if backlog > current * self.backlog_per_worker:
            return min(self.max_workers, current + 1)
        return max(self.min_workers, min(self.max_workers, current))
