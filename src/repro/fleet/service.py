"""The fleet boot service: a long-running asyncio TCP/JSON-lines server.

``FleetService`` glues the three tiers together:

* the **scheduler** (:class:`~repro.runner.schedule.JobScheduler`) —
  priority queues, single-flight dedup on top of the
  :class:`~repro.runner.cache.ResultCache`, fair-share across connected
  clients, per-client submission-order delivery;
* the **worker pool** (:class:`~repro.fleet.workers.WorkerPool`) —
  resource-sampled shards that run batches through ordinary
  :class:`~repro.runner.sweep.SweepRunner`\\ s, auto-scaled between the
  policy bounds;
* the **front-end** — one asyncio server speaking the
  :mod:`repro.fleet.protocol` frames, streaming each job's result the
  moment its submission-order turn comes up instead of returning one
  blob at the end.

Graceful drain: ``SIGTERM``/``SIGINT`` (or an ``op: drain`` frame) stops
new submissions, lets in-flight batches finish, flushes every stream,
then closes.  Nothing is orphaned: shard executors are shut down with
``wait=True`` on the drain path.

Durability (``journal_dir``): every submission is appended to the
write-ahead :class:`~repro.fleet.journal.JobJournal` *before* it is
acked, and marked done only after its last result is handed to the
delivery path — so a SIGKILL'd service, restarted on the same journal,
resubmits exactly the submissions whose acks it had issued but whose
results it had not finished.  Recovery is deterministic because jobs are
content-fingerprinted: a resumed fingerprint re-runs (or cache-hits) to
byte-identical results.

Degradation: a shard that dies mid-batch is replaced wholesale and its
batch is requeued under a bounded per-fingerprint retry budget
(``max_job_retries``); a job that keeps killing its shards is
quarantined with a diagnosis and answered as an error instead of
wedging the pool.  The deterministic chaos seam
(:class:`~repro.faults.fleet.FleetFaultPlan`) drives all of this from
the ``fleet-crash`` verify group.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import time
from typing import Any

from repro.faults.fleet import FleetFaultInjector, FleetFaultPlan
from repro.fleet import protocol
from repro.fleet.journal import DEFAULT_CHECKPOINT_EVERY, JobJournal
from repro.fleet.resources import ResourcePolicy
from repro.fleet.workers import WorkerPool
from repro.runner.branch import canonical_bytes
from repro.runner.cache import ResultCache
from repro.runner.schedule import JobScheduler, Ticket

#: How many jobs one shard batch may carry.  Batches amortize the
#: child-process pickle round-trip and give the branch runner prefix
#: groups to share; small enough that results still stream promptly.
DEFAULT_BATCH_SIZE = 16

#: Emit a ``progress`` frame roughly this many times per submission.
PROGRESS_STEPS = 20


class _Submission:
    """Book-keeping for one ``op: submit`` frame on one connection."""

    __slots__ = ("sid", "total", "delivered", "started", "next_progress",
                 "journal_key")

    def __init__(self, sid: str, total: int,
                 journal_key: str | None = None):
        self.sid = sid
        self.total = total
        self.delivered = 0
        self.started = time.perf_counter()
        self.next_progress = max(1, total // PROGRESS_STEPS)
        self.journal_key = journal_key


class _ResumedSubmission:
    """One journal-recovered submission being re-driven to completion."""

    __slots__ = ("key", "client", "total", "delivered", "errors")

    def __init__(self, key: str, client: str, total: int):
        self.key = key
        self.client = client
        self.total = total
        self.delivered = 0
        self.errors = 0


class _Connection:
    """One client connection: its stream, submissions, and payload memory."""

    def __init__(self, key: str, writer: asyncio.StreamWriter,
                 chaos: FleetFaultInjector | None = None, index: int = 0):
        self.key = key
        self.writer = writer
        self.submissions: dict[str, _Submission] = {}
        self.ticket_meta: dict[int, tuple[str, int]] = {}  # id -> (sid, index)
        self.sent_payloads: set[str] = set()
        self.closed = False
        self.chaos = chaos
        self.index = index
        self.frames_sent = 0

    async def send(self, message: dict[str, Any]) -> None:
        if self.closed:
            return
        if (self.chaos is not None
                and self.chaos.drop_connection(self.index,
                                               self.frames_sent + 1)):
            # Chaos: cut the link abruptly (RST, not a graceful FIN) —
            # the client must recover via timeout/backoff/resubmission.
            self.closed = True
            transport = self.writer.transport
            if transport is not None:
                transport.abort()
            return
        self.frames_sent += 1
        try:
            self.writer.write(protocol.encode_frame(message))
            await self.writer.drain()
        except (ConnectionError, RuntimeError):
            self.closed = True


class FleetService:
    """The async boot service.  Use programmatically::

        service = FleetService(port=0)
        await service.start()          # service.address is (host, port)
        ...
        await service.drain()          # graceful: finish, flush, close

    or from the CLI as ``repro fleet serve``.

    Args:
        host/port: Bind address; port 0 picks an ephemeral port.
        policy: Worker-pool bounds and resource brakes.
        cache_dir: Content-addressed result store shared by the service
            front cache and every shard (optional).
        cache_max_bytes: LRU cap for the disk store (optional).
        branch: Checkpoint/fork-branch prefix-sharing groups inside
            shard batches.
        batch_size: Jobs per shard batch.
        sample_interval: Seconds between autoscale/sampling passes.
        journal_dir: Write-ahead journal directory; ``None`` disables
            durability (the pre-journal behaviour).
        journal_checkpoint_every: Journal appends between compactions.
        max_job_retries: Requeues a fingerprint gets after shard crashes
            before it is quarantined.
        chaos: Deterministic service-fault plan (testing only).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 policy: ResourcePolicy | None = None,
                 cache_dir: str | None = None,
                 cache_max_bytes: int | None = None,
                 branch: bool = False,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 sample_interval: float = 0.5,
                 journal_dir: str | None = None,
                 journal_checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
                 max_job_retries: int = 2,
                 chaos: FleetFaultPlan | None = None):
        self.host = host
        self.port = port
        self.policy = policy if policy is not None else ResourcePolicy()
        self.cache_dir = cache_dir
        self.branch = branch
        self.batch_size = max(1, batch_size)
        self.sample_interval = sample_interval
        self.scheduler = JobScheduler(
            cache=ResultCache(cache_dir, max_bytes=cache_max_bytes))
        self.pool = WorkerPool(self.policy, cache_dir=cache_dir,
                               branch=branch)
        self.chaos = chaos
        self._chaos = chaos.compile() if chaos is not None else None
        self.journal: JobJournal | None = None
        if journal_dir is not None:
            self.journal = JobJournal(
                journal_dir, checkpoint_every=journal_checkpoint_every,
                crash_after_append=(chaos.crash_at_journal_offset
                                    if chaos is not None else None))
        self.max_job_retries = max(0, max_job_retries)
        self.quarantined: dict[str, str] = {}  # fingerprint -> diagnosis
        self.resumed_total = 0
        self.resumed_done = 0
        self._retry_counts: dict[str, int] = {}
        self._resumed: dict[str, _ResumedSubmission] = {}
        self._journal_refs: dict[str, int] = {}
        self._batches_dispatched = 0
        self.draining = False
        self.started_at = time.monotonic()
        self.address: tuple[str, int] | None = None
        self._server: asyncio.AbstractServer | None = None
        self._supervisor: asyncio.Task | None = None
        self._batch_tasks: set[asyncio.Task] = set()
        self._client_tasks: set[asyncio.Task] = set()
        self._connections: dict[str, _Connection] = {}
        self._next_conn = 0
        self._work_available = asyncio.Event()
        self._drained = asyncio.Event()

    # ----------------------------------------------------------- lifecycle

    async def start(self) -> tuple[str, int]:
        """Bind, start the supervisor, resume journaled work, return
        the actual address."""
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port,
            limit=protocol.MAX_FRAME_BYTES)
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        self._supervisor = asyncio.create_task(self._supervise())
        self._resume_journal()
        return self.address

    def _resume_journal(self) -> None:
        """Resubmit every submission the journal says never finished.

        Each open record is replayed under a synthetic ``journal:`` client
        — results are re-executed (or cache-hit) and absorbed, and the
        record is marked done only once every ticket resolves, so another
        crash mid-recovery just resumes again.  Sorted keys keep recovery
        order deterministic.
        """
        if self.journal is None:
            return
        for key in sorted(self.journal.open_submissions):
            record = self.journal.open_submissions[key]
            specs = record.get("specs")
            priority = record.get("priority", 0)
            if not isinstance(priority, int):
                priority = 0
            jobs: list[Any] = []
            try:
                for spec in (specs if isinstance(specs, list) else []):
                    job, repeat = protocol.job_from_spec(spec)
                    jobs.extend([job] * repeat)
            except protocol.ProtocolError:
                jobs = []  # the registry changed under the journal
            if not jobs:
                self.journal.record_done(key)
                continue
            client = f"journal:{key}"
            self._resumed[client] = _ResumedSubmission(key, client,
                                                      len(jobs))
            self._journal_retain(key)
            self.resumed_total += 1
            for job in jobs:
                self.scheduler.submit(client, job, priority=priority)
            self._absorb_resumed(client)  # cache hits resolve instantly
        self._work_available.set()

    def _absorb_resumed(self, client: str) -> None:
        tracker = self._resumed.get(client)
        if tracker is None:
            return
        for ticket in self.scheduler.drain(client):
            tracker.delivered += 1
            if ticket.error is not None:
                tracker.errors += 1
        if tracker.delivered >= tracker.total:
            del self._resumed[client]
            self.resumed_done += 1
            self._journal_release(tracker.key)

    # Two submissions can share one journal content key — identical
    # (sid, specs, priority) triples from different connections collapse
    # to the same hash, and a journal-resumed entry can coexist with a
    # live retry of the same work.  ``done`` may therefore only be
    # journaled when the *last* holder releases the key; otherwise one
    # client disconnecting would strip the crash coverage of another
    # client's still-undelivered submission.

    def _journal_retain(self, key: str) -> None:
        self._journal_refs[key] = self._journal_refs.get(key, 0) + 1

    def _journal_release(self, key: str) -> None:
        remaining = self._journal_refs.get(key, 0) - 1
        if remaining > 0:
            self._journal_refs[key] = remaining
            return
        self._journal_refs.pop(key, None)
        if self.journal is not None:
            self.journal.record_done(key)

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to the graceful drain (serve mode)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(self.drain()))
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-unix event loop

    async def serve_forever(self) -> None:
        """Block until drained (the ``repro fleet serve`` main loop)."""
        await self._drained.wait()

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish in-flight batches,
        flush every client stream, stop the pool, close the server."""
        if self.draining:
            await self._drained.wait()
            return
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Let queued + in-flight work finish; dispatch keeps running.
        while not self.scheduler.idle or self._batch_tasks:
            self._work_available.set()
            await asyncio.sleep(0.02)
        if self._supervisor is not None:
            self._supervisor.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._supervisor
        self.pool.shutdown(wait=True)
        await self._close_connections()
        if self.journal is not None:
            # Clean drain: fold the (normally empty) open set into the
            # checkpoint so the next serve starts from a compact journal.
            self.journal.checkpoint()
            self.journal.close()
        self._drained.set()

    async def stop(self) -> None:
        """Hard stop (tests): cancel everything, reap workers."""
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._batch_tasks):
            task.cancel()
        if self._supervisor is not None:
            self._supervisor.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._supervisor
        self.pool.shutdown(wait=False)
        await self._close_connections()
        if self.journal is not None:
            self.journal.close()
        self._drained.set()

    async def _close_connections(self) -> None:
        """Close every client transport and reap the handler tasks, so
        no half-dead reader task lingers into event-loop teardown."""
        for connection in list(self._connections.values()):
            connection.closed = True
            with contextlib.suppress(ConnectionError):
                connection.writer.close()
        if self._client_tasks:
            await asyncio.gather(*list(self._client_tasks),
                                 return_exceptions=True)

    # ---------------------------------------------------------- scheduling

    async def _supervise(self) -> None:
        """Dispatch loop + periodic autoscale/sampling."""
        last_sample = time.monotonic()
        while True:
            self._dispatch()
            now = time.monotonic()
            if now - last_sample >= self.sample_interval:
                backlog = self.scheduler.queued
                self.pool.autoscale(backlog)
                last_sample = now
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._work_available.wait(),
                                       timeout=self.sample_interval)
            self._work_available.clear()

    def _dispatch(self) -> None:
        """Hand ready batches to every idle shard."""
        for shard in self.pool.idle_shards():
            if not self.scheduler.queued:
                break
            batch = self.scheduler.next_batch(self.batch_size)
            if not batch:
                break
            task = asyncio.create_task(self._run_batch(shard, batch))
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(self, shard, batch) -> None:
        self._batches_dispatched += 1
        if (self._chaos is not None
                and self._chaos.kill_worker(self._batches_dispatched)):
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, shard.poison)
        fingerprints = [fingerprint for fingerprint, _ in batch]
        jobs = [job for _, job in batch]
        try:
            results = await shard.run_batch(jobs)
        except Exception as exc:  # noqa: BLE001 - shard crash
            await self._handle_batch_crash(shard, batch, exc)
        else:
            for fingerprint, result in zip(fingerprints, results):
                self._retry_counts.pop(fingerprint, None)
                clients = self.scheduler.complete(fingerprint, result)
                await self._flush_clients(clients)
        self._work_available.set()

    async def _handle_batch_crash(self, shard, batch, exc: Exception) -> None:
        """Graceful degradation after a shard death mid-batch.

        The broken shard is replaced wholesale; each fingerprint of the
        lost batch is requeued until its retry budget runs out, after
        which it is quarantined — answered as an error with a diagnosis
        and refused at future submits — so a poison job cannot grind the
        pool down shard by shard.
        """
        self.pool.replace(shard)
        for fingerprint, _job in batch:
            attempts = self._retry_counts.get(fingerprint, 0) + 1
            if attempts <= self.max_job_retries:
                self._retry_counts[fingerprint] = attempts
                self.scheduler.requeue(fingerprint)
                continue
            diagnosis = (
                f"quarantined after killing {attempts} shard(s) "
                f"(last: shard {shard.shard_id} died with {exc!r}); "
                f"retry budget of {self.max_job_retries} exhausted")
            self.quarantined[fingerprint] = diagnosis
            self._retry_counts.pop(fingerprint, None)
            clients = self.scheduler.fail(fingerprint, diagnosis)
            await self._flush_clients(clients)

    async def _flush_clients(self, clients: list[str]) -> None:
        for key in clients:
            if key in self._resumed:
                self._absorb_resumed(key)
                continue
            connection = self._connections.get(key)
            if connection is None:
                self.scheduler.drain(key)  # discard: client is gone
                continue
            await self._deliver(connection)

    async def _deliver(self, connection: _Connection) -> None:
        """Stream every deliverable ticket, in submission order."""
        for ticket in self.scheduler.drain(connection.key):
            sid, index = connection.ticket_meta.pop(id(ticket), ("?", -1))
            submission = connection.submissions.get(sid)
            await connection.send(self._result_frame(connection, ticket,
                                                     sid, index))
            if submission is None:
                continue
            submission.delivered += 1
            if (submission.delivered >= submission.next_progress
                    and submission.delivered < submission.total):
                submission.next_progress += max(
                    1, submission.total // PROGRESS_STEPS)
                await connection.send({
                    "event": "progress", "id": sid,
                    "done": submission.delivered,
                    "total": submission.total,
                })
            if submission.delivered >= submission.total:
                del connection.submissions[sid]
                # Journal completion once every result is delivered; a
                # crash on either side of the done frame is covered —
                # before: the journal resumes it (all cache hits);
                # after: the client's retry resubmits and cache-hits.
                if submission.journal_key is not None:
                    self._journal_release(submission.journal_key)
                await connection.send({
                    "event": "done", "id": sid, "total": submission.total,
                    "elapsed_s": round(
                        time.perf_counter() - submission.started, 6),
                })

    def _result_frame(self, connection: _Connection, ticket: Ticket,
                      sid: str, index: int) -> dict[str, Any]:
        if ticket.error is not None:
            return {"event": "result", "id": sid, "index": index,
                    "fingerprint": ticket.fingerprint, "error": ticket.error}
        frame: dict[str, Any] = {
            "event": "result", "id": sid, "index": index,
            "fingerprint": ticket.fingerprint, "cached": ticket.cached,
            "summary": protocol.summarize_result(ticket.result),
        }
        if ticket.fingerprint in connection.sent_payloads:
            frame["payload_ref"] = ticket.fingerprint
        else:
            frame["payload"] = protocol.encode_payload(
                canonical_bytes(ticket.result))
            connection.sent_payloads.add(ticket.fingerprint)
        return frame

    # ------------------------------------------------------------- clients

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        index = self._next_conn
        key = f"conn-{index}"
        self._next_conn += 1
        connection = _Connection(key, writer, chaos=self._chaos,
                                 index=index)
        self._connections[key] = connection
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
            task.add_done_callback(self._client_tasks.discard)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, ValueError,
                        asyncio.LimitOverrunError):
                    break  # reset, or a frame beyond the stream limit
                if not line:
                    break
                await self._handle_frame(connection, line)
        except asyncio.CancelledError:
            pass  # drain/teardown cancelled us; clean up and exit quietly
        finally:
            self._connections.pop(key, None)
            self.scheduler.forget_client(key)
            # A client that walked away mid-submission abandoned the
            # work — release its hold on each journal key so a restart
            # does not resurrect submissions nobody is waiting for.
            # Release, not record_done: another connection's identical
            # submission may share the key and still be undelivered.
            # (A client that *retries* re-journals the same content key
            # first.)
            for submission in connection.submissions.values():
                if submission.journal_key is not None:
                    self._journal_release(submission.journal_key)
            connection.closed = True
            with contextlib.suppress(ConnectionError):
                writer.close()

    async def _handle_frame(self, connection: _Connection,
                            line: bytes) -> None:
        try:
            message = protocol.decode_frame(line)
            op = message.get("op")
            if op == "submit":
                await self._handle_submit(connection, message)
            elif op == "status":
                await connection.send(self.status())
            elif op == "drain":
                await connection.send({"event": "draining"})
                asyncio.ensure_future(self.drain())
            else:
                raise protocol.ProtocolError(f"unknown op {op!r}")
        except protocol.ProtocolError as exc:
            await connection.send({"event": "error", "message": str(exc),
                                   "id": _submission_id(line)})

    async def _handle_submit(self, connection: _Connection,
                             message: dict[str, Any]) -> None:
        sid = str(message.get("id", f"sub-{len(connection.submissions)}"))
        if self.draining:
            await connection.send({"event": "error", "id": sid,
                                   "message": "service is draining; "
                                              "submission rejected"})
            return
        specs = message.get("jobs")
        if not isinstance(specs, list) or not specs:
            raise protocol.ProtocolError("'jobs' must be a non-empty list")
        priority = message.get("priority", 0)
        if not isinstance(priority, int):
            raise protocol.ProtocolError(
                f"'priority' must be an int, got {priority!r}")
        expanded: list[Any] = []
        for spec in specs:
            job, repeat = protocol.job_from_spec(spec)
            expanded.extend([job] * repeat)
        # Write-ahead: the submission is durable before the ack leaves.
        # A crash after this line is recoverable from the journal; a
        # crash before it means the client never saw an ack and owns the
        # retry.  record_submit is idempotent on the content key, so a
        # retried submission does not double-journal.
        journal_key: str | None = None
        if self.journal is not None:
            journal_key = protocol.submission_key(sid, specs, priority)
            self._journal_retain(journal_key)
            self.journal.record_submit(journal_key, sid, specs, priority)
        submission = _Submission(sid, len(expanded), journal_key)
        replaced = connection.submissions.get(sid)
        if replaced is not None and replaced.journal_key is not None:
            self._journal_release(replaced.journal_key)  # keep refs balanced
        connection.submissions[sid] = submission
        refused: dict[str, str] = {}
        for index, job in enumerate(expanded):
            ticket = self.scheduler.submit(connection.key, job,
                                           priority=priority)
            connection.ticket_meta[id(ticket)] = (sid, index)
            diagnosis = self.quarantined.get(ticket.fingerprint)
            if diagnosis is not None and ticket.error is None:
                refused[ticket.fingerprint] = diagnosis
        # Quarantined fingerprints are answered immediately with their
        # diagnosis instead of being handed back to a pool they kill.
        for fingerprint, diagnosis in refused.items():
            self.scheduler.fail(fingerprint, diagnosis)
        await connection.send({"event": "ack", "id": sid,
                               "jobs": len(expanded)})
        self._work_available.set()
        # Cache hits may already be deliverable.
        await self._deliver(connection)

    # -------------------------------------------------------------- status

    def status(self) -> dict[str, Any]:
        """The ``status`` event payload (also used by the campaign)."""
        stats = self.scheduler.stats
        cache_stats = self.scheduler.cache.stats
        return {
            "event": "status",
            "draining": self.draining,
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "queue_depth": self.scheduler.queued,
            "inflight": self.scheduler.inflight,
            "connections": len(self._connections),
            "workers": [{
                "shard": status.shard_id,
                "busy": status.busy,
                "pid": status.pid,
                "batches": status.batches,
                "jobs_done": status.jobs_done,
                "cpu_percent": status.cpu_percent,
                "rss_bytes": status.rss_bytes,
            } for status in self.pool.statuses()],
            "pool": {
                "workers": len(self.pool),
                "peak_workers": self.pool.peak_workers,
                "scaled_up": self.pool.scaled_up,
                "scaled_down": self.pool.scaled_down,
                "min_workers": self.policy.min_workers,
                "max_workers": self.policy.max_workers,
            },
            "scheduler": {
                "submitted": stats.submitted,
                "cache_hits": stats.cache_hits,
                "coalesced": stats.coalesced,
                "dispatched": stats.dispatched,
                "completed": stats.completed,
                "failed": stats.failed,
                "requeued": stats.requeued,
                "delivered": stats.delivered,
            },
            "journal": ({
                **self.journal.status(),
                "resumed": self.resumed_total,
                "resumed_done": self.resumed_done,
                "resuming": len(self._resumed),
            } if self.journal is not None else {"enabled": False}),
            "resilience": {
                "max_job_retries": self.max_job_retries,
                "requeued": stats.requeued,
                "quarantined": len(self.quarantined),
                "shards_replaced": self.pool.replaced,
                "chaos": (self.chaos.describe()
                          if self.chaos is not None else None),
                "chaos_worker_kills": (self._chaos.worker_kills
                                       if self._chaos is not None else 0),
                "chaos_connection_drops": (
                    self._chaos.connection_drops
                    if self._chaos is not None else 0),
            },
            "cache": {
                "memory_hits": cache_stats.memory_hits,
                "disk_hits": cache_stats.disk_hits,
                "misses": cache_stats.misses,
                "stores": cache_stats.stores,
                "evictions": cache_stats.evictions,
            },
        }


def _submission_id(line: bytes) -> str | None:
    """Best-effort submission id extraction for error frames."""
    import json
    try:
        message = json.loads(line)
        value = message.get("id") if isinstance(message, dict) else None
        return str(value) if value is not None else None
    except ValueError:
        return None
