"""The fleet boot service: a long-running asyncio TCP/JSON-lines server.

``FleetService`` glues the three tiers together:

* the **scheduler** (:class:`~repro.runner.schedule.JobScheduler`) —
  priority queues, single-flight dedup on top of the
  :class:`~repro.runner.cache.ResultCache`, fair-share across connected
  clients, per-client submission-order delivery;
* the **worker pool** (:class:`~repro.fleet.workers.WorkerPool`) —
  resource-sampled shards that run batches through ordinary
  :class:`~repro.runner.sweep.SweepRunner`\\ s, auto-scaled between the
  policy bounds;
* the **front-end** — one asyncio server speaking the
  :mod:`repro.fleet.protocol` frames, streaming each job's result the
  moment its submission-order turn comes up instead of returning one
  blob at the end.

Graceful drain: ``SIGTERM``/``SIGINT`` (or an ``op: drain`` frame) stops
new submissions, lets in-flight batches finish, flushes every stream,
then closes.  Nothing is orphaned: shard executors are shut down with
``wait=True`` on the drain path.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import time
from typing import Any

from repro.fleet import protocol
from repro.fleet.resources import ResourcePolicy
from repro.fleet.workers import WorkerPool
from repro.runner.branch import canonical_bytes
from repro.runner.cache import ResultCache
from repro.runner.schedule import JobScheduler, Ticket

#: How many jobs one shard batch may carry.  Batches amortize the
#: child-process pickle round-trip and give the branch runner prefix
#: groups to share; small enough that results still stream promptly.
DEFAULT_BATCH_SIZE = 16

#: Emit a ``progress`` frame roughly this many times per submission.
PROGRESS_STEPS = 20


class _Submission:
    """Book-keeping for one ``op: submit`` frame on one connection."""

    __slots__ = ("sid", "total", "delivered", "started", "next_progress")

    def __init__(self, sid: str, total: int):
        self.sid = sid
        self.total = total
        self.delivered = 0
        self.started = time.perf_counter()
        self.next_progress = max(1, total // PROGRESS_STEPS)


class _Connection:
    """One client connection: its stream, submissions, and payload memory."""

    def __init__(self, key: str, writer: asyncio.StreamWriter):
        self.key = key
        self.writer = writer
        self.submissions: dict[str, _Submission] = {}
        self.ticket_meta: dict[int, tuple[str, int]] = {}  # id -> (sid, index)
        self.sent_payloads: set[str] = set()
        self.closed = False

    async def send(self, message: dict[str, Any]) -> None:
        if self.closed:
            return
        try:
            self.writer.write(protocol.encode_frame(message))
            await self.writer.drain()
        except (ConnectionError, RuntimeError):
            self.closed = True


class FleetService:
    """The async boot service.  Use programmatically::

        service = FleetService(port=0)
        await service.start()          # service.address is (host, port)
        ...
        await service.drain()          # graceful: finish, flush, close

    or from the CLI as ``repro fleet serve``.

    Args:
        host/port: Bind address; port 0 picks an ephemeral port.
        policy: Worker-pool bounds and resource brakes.
        cache_dir: Content-addressed result store shared by the service
            front cache and every shard (optional).
        cache_max_bytes: LRU cap for the disk store (optional).
        branch: Checkpoint/fork-branch prefix-sharing groups inside
            shard batches.
        batch_size: Jobs per shard batch.
        sample_interval: Seconds between autoscale/sampling passes.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 policy: ResourcePolicy | None = None,
                 cache_dir: str | None = None,
                 cache_max_bytes: int | None = None,
                 branch: bool = False,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 sample_interval: float = 0.5):
        self.host = host
        self.port = port
        self.policy = policy if policy is not None else ResourcePolicy()
        self.cache_dir = cache_dir
        self.branch = branch
        self.batch_size = max(1, batch_size)
        self.sample_interval = sample_interval
        self.scheduler = JobScheduler(
            cache=ResultCache(cache_dir, max_bytes=cache_max_bytes))
        self.pool = WorkerPool(self.policy, cache_dir=cache_dir,
                               branch=branch)
        self.draining = False
        self.started_at = time.monotonic()
        self.address: tuple[str, int] | None = None
        self._server: asyncio.AbstractServer | None = None
        self._supervisor: asyncio.Task | None = None
        self._batch_tasks: set[asyncio.Task] = set()
        self._client_tasks: set[asyncio.Task] = set()
        self._connections: dict[str, _Connection] = {}
        self._next_conn = 0
        self._work_available = asyncio.Event()
        self._drained = asyncio.Event()

    # ----------------------------------------------------------- lifecycle

    async def start(self) -> tuple[str, int]:
        """Bind, start the supervisor, return the actual address."""
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port,
            limit=protocol.MAX_FRAME_BYTES)
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        self._supervisor = asyncio.create_task(self._supervise())
        return self.address

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to the graceful drain (serve mode)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(self.drain()))
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-unix event loop

    async def serve_forever(self) -> None:
        """Block until drained (the ``repro fleet serve`` main loop)."""
        await self._drained.wait()

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish in-flight batches,
        flush every client stream, stop the pool, close the server."""
        if self.draining:
            await self._drained.wait()
            return
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Let queued + in-flight work finish; dispatch keeps running.
        while not self.scheduler.idle or self._batch_tasks:
            self._work_available.set()
            await asyncio.sleep(0.02)
        if self._supervisor is not None:
            self._supervisor.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._supervisor
        self.pool.shutdown(wait=True)
        await self._close_connections()
        self._drained.set()

    async def stop(self) -> None:
        """Hard stop (tests): cancel everything, reap workers."""
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._batch_tasks):
            task.cancel()
        if self._supervisor is not None:
            self._supervisor.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._supervisor
        self.pool.shutdown(wait=False)
        await self._close_connections()
        self._drained.set()

    async def _close_connections(self) -> None:
        """Close every client transport and reap the handler tasks, so
        no half-dead reader task lingers into event-loop teardown."""
        for connection in list(self._connections.values()):
            connection.closed = True
            with contextlib.suppress(ConnectionError):
                connection.writer.close()
        if self._client_tasks:
            await asyncio.gather(*list(self._client_tasks),
                                 return_exceptions=True)

    # ---------------------------------------------------------- scheduling

    async def _supervise(self) -> None:
        """Dispatch loop + periodic autoscale/sampling."""
        last_sample = time.monotonic()
        while True:
            self._dispatch()
            now = time.monotonic()
            if now - last_sample >= self.sample_interval:
                backlog = self.scheduler.queued
                self.pool.autoscale(backlog)
                last_sample = now
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._work_available.wait(),
                                       timeout=self.sample_interval)
            self._work_available.clear()

    def _dispatch(self) -> None:
        """Hand ready batches to every idle shard."""
        for shard in self.pool.idle_shards():
            if not self.scheduler.queued:
                break
            batch = self.scheduler.next_batch(self.batch_size)
            if not batch:
                break
            task = asyncio.create_task(self._run_batch(shard, batch))
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(self, shard, batch) -> None:
        fingerprints = [fingerprint for fingerprint, _ in batch]
        jobs = [job for _, job in batch]
        try:
            results = await shard.run_batch(jobs)
        except Exception as exc:  # noqa: BLE001 - shard crash -> job errors
            for fingerprint in fingerprints:
                clients = self.scheduler.fail(
                    fingerprint, f"shard {shard.shard_id} failed: {exc!r}")
                await self._flush_clients(clients)
        else:
            for fingerprint, result in zip(fingerprints, results):
                clients = self.scheduler.complete(fingerprint, result)
                await self._flush_clients(clients)
        self._work_available.set()

    async def _flush_clients(self, clients: list[str]) -> None:
        for key in clients:
            connection = self._connections.get(key)
            if connection is None:
                self.scheduler.drain(key)  # discard: client is gone
                continue
            await self._deliver(connection)

    async def _deliver(self, connection: _Connection) -> None:
        """Stream every deliverable ticket, in submission order."""
        for ticket in self.scheduler.drain(connection.key):
            sid, index = connection.ticket_meta.pop(id(ticket), ("?", -1))
            submission = connection.submissions.get(sid)
            await connection.send(self._result_frame(connection, ticket,
                                                     sid, index))
            if submission is None:
                continue
            submission.delivered += 1
            if (submission.delivered >= submission.next_progress
                    and submission.delivered < submission.total):
                submission.next_progress += max(
                    1, submission.total // PROGRESS_STEPS)
                await connection.send({
                    "event": "progress", "id": sid,
                    "done": submission.delivered,
                    "total": submission.total,
                })
            if submission.delivered >= submission.total:
                del connection.submissions[sid]
                await connection.send({
                    "event": "done", "id": sid, "total": submission.total,
                    "elapsed_s": round(
                        time.perf_counter() - submission.started, 6),
                })

    def _result_frame(self, connection: _Connection, ticket: Ticket,
                      sid: str, index: int) -> dict[str, Any]:
        if ticket.error is not None:
            return {"event": "result", "id": sid, "index": index,
                    "fingerprint": ticket.fingerprint, "error": ticket.error}
        frame: dict[str, Any] = {
            "event": "result", "id": sid, "index": index,
            "fingerprint": ticket.fingerprint, "cached": ticket.cached,
            "summary": protocol.summarize_result(ticket.result),
        }
        if ticket.fingerprint in connection.sent_payloads:
            frame["payload_ref"] = ticket.fingerprint
        else:
            frame["payload"] = protocol.encode_payload(
                canonical_bytes(ticket.result))
            connection.sent_payloads.add(ticket.fingerprint)
        return frame

    # ------------------------------------------------------------- clients

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        key = f"conn-{self._next_conn}"
        self._next_conn += 1
        connection = _Connection(key, writer)
        self._connections[key] = connection
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
            task.add_done_callback(self._client_tasks.discard)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, ValueError,
                        asyncio.LimitOverrunError):
                    break  # reset, or a frame beyond the stream limit
                if not line:
                    break
                await self._handle_frame(connection, line)
        except asyncio.CancelledError:
            pass  # drain/teardown cancelled us; clean up and exit quietly
        finally:
            self._connections.pop(key, None)
            self.scheduler.forget_client(key)
            connection.closed = True
            with contextlib.suppress(ConnectionError):
                writer.close()

    async def _handle_frame(self, connection: _Connection,
                            line: bytes) -> None:
        try:
            message = protocol.decode_frame(line)
            op = message.get("op")
            if op == "submit":
                await self._handle_submit(connection, message)
            elif op == "status":
                await connection.send(self.status())
            elif op == "drain":
                await connection.send({"event": "draining"})
                asyncio.ensure_future(self.drain())
            else:
                raise protocol.ProtocolError(f"unknown op {op!r}")
        except protocol.ProtocolError as exc:
            await connection.send({"event": "error", "message": str(exc),
                                   "id": _submission_id(line)})

    async def _handle_submit(self, connection: _Connection,
                             message: dict[str, Any]) -> None:
        sid = str(message.get("id", f"sub-{len(connection.submissions)}"))
        if self.draining:
            await connection.send({"event": "error", "id": sid,
                                   "message": "service is draining; "
                                              "submission rejected"})
            return
        specs = message.get("jobs")
        if not isinstance(specs, list) or not specs:
            raise protocol.ProtocolError("'jobs' must be a non-empty list")
        priority = message.get("priority", 0)
        if not isinstance(priority, int):
            raise protocol.ProtocolError(
                f"'priority' must be an int, got {priority!r}")
        expanded: list[Any] = []
        for spec in specs:
            job, repeat = protocol.job_from_spec(spec)
            expanded.extend([job] * repeat)
        submission = _Submission(sid, len(expanded))
        connection.submissions[sid] = submission
        for index, job in enumerate(expanded):
            ticket = self.scheduler.submit(connection.key, job,
                                           priority=priority)
            connection.ticket_meta[id(ticket)] = (sid, index)
        await connection.send({"event": "ack", "id": sid,
                               "jobs": len(expanded)})
        self._work_available.set()
        # Cache hits may already be deliverable.
        await self._deliver(connection)

    # -------------------------------------------------------------- status

    def status(self) -> dict[str, Any]:
        """The ``status`` event payload (also used by the campaign)."""
        stats = self.scheduler.stats
        cache_stats = self.scheduler.cache.stats
        return {
            "event": "status",
            "draining": self.draining,
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "queue_depth": self.scheduler.queued,
            "inflight": self.scheduler.inflight,
            "connections": len(self._connections),
            "workers": [{
                "shard": status.shard_id,
                "busy": status.busy,
                "pid": status.pid,
                "batches": status.batches,
                "jobs_done": status.jobs_done,
                "cpu_percent": status.cpu_percent,
                "rss_bytes": status.rss_bytes,
            } for status in self.pool.statuses()],
            "pool": {
                "workers": len(self.pool),
                "peak_workers": self.pool.peak_workers,
                "scaled_up": self.pool.scaled_up,
                "scaled_down": self.pool.scaled_down,
                "min_workers": self.policy.min_workers,
                "max_workers": self.policy.max_workers,
            },
            "scheduler": {
                "submitted": stats.submitted,
                "cache_hits": stats.cache_hits,
                "coalesced": stats.coalesced,
                "dispatched": stats.dispatched,
                "completed": stats.completed,
                "failed": stats.failed,
                "delivered": stats.delivered,
            },
            "cache": {
                "memory_hits": cache_stats.memory_hits,
                "disk_hits": cache_stats.disk_hits,
                "misses": cache_stats.misses,
                "stores": cache_stats.stores,
                "evictions": cache_stats.evictions,
            },
        }


def _submission_id(line: bytes) -> str | None:
    """Best-effort submission id extraction for error frames."""
    import json
    try:
        message = json.loads(line)
        value = message.get("id") if isinstance(message, dict) else None
        return str(value) if value is not None else None
    except ValueError:
        return None
