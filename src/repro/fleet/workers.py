"""The resource-aware worker pool: shards that execute job batches.

A **shard** is one single-process ``ProcessPoolExecutor`` wrapped for
asyncio: the service awaits ``run_batch`` without blocking its event
loop, while the child process runs the batch through an ordinary
:class:`~repro.runner.sweep.SweepRunner` — so branch-sharing
(checkpoint/fork) and the analytic machinery keep working verbatim
inside the fleet.  Shards share results through the scheduler's
in-process cache and, when configured, a content-addressed disk cache
directory (atomic writes make concurrent shard writers safe).

The **pool** owns the shards: it grows and shrinks them between the
policy's bounds (:meth:`WorkerPool.autoscale`), samples each shard's
child CPU/RSS (:mod:`repro.fleet.resources`), and drains them gracefully
on shutdown.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any

from repro.errors import FleetError
from repro.fleet.resources import ProcessSampler, ResourcePolicy, ResourceSample
from repro.runner.cache import ResultCache
from repro.runner.jobs import SimJob
from repro.runner.sweep import SweepRunner


def shard_execute(jobs: list[SimJob], cache_dir: str | None,
                  branch: bool) -> list[Any]:
    """Run one batch inside a shard child; top-level for pickling.

    The batch goes through a fresh serial :class:`SweepRunner` — same
    dedup/cache/branch pipeline as any local sweep, so a fleet result is
    byte-identical to a serial one by construction.  ``cache_dir`` (when
    set) lets sibling shards reuse each other's completed boots across
    batches.
    """
    runner = SweepRunner(jobs=1, cache=ResultCache(cache_dir), branch=branch)
    return runner.run(jobs)


@dataclass(slots=True)
class ShardStatus:
    """One shard's externally visible state (for ``op: status``)."""

    shard_id: int
    busy: bool
    pid: int
    batches: int
    jobs_done: int
    cpu_percent: float | None
    rss_bytes: int | None


class WorkerShard:
    """One worker: a single-process executor plus its resource sampler."""

    def __init__(self, shard_id: int, cache_dir: str | None, branch: bool):
        self.shard_id = shard_id
        self.cache_dir = cache_dir
        self.branch = branch
        self.busy = False
        self.batches = 0
        self.jobs_done = 0
        self._executor = ProcessPoolExecutor(max_workers=1)
        self._sampler: ProcessSampler | None = None
        self._last_sample = ResourceSample(pid=0, cpu_percent=None,
                                           rss_bytes=None)

    @property
    def pid(self) -> int:
        """The child pid, or 0 before the first batch spawns it."""
        processes = getattr(self._executor, "_processes", None) or {}
        for pid in processes:
            return pid
        return 0

    async def run_batch(self, jobs: list[SimJob]) -> list[Any]:
        """Execute ``jobs`` in the shard child; results positionally."""
        if self.busy:
            raise FleetError(f"shard {self.shard_id} is already running "
                             f"a batch")
        self.busy = True
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(
                self._executor,
                shard_execute, jobs, self.cache_dir, self.branch)
            self.batches += 1
            self.jobs_done += len(jobs)
            return results
        finally:
            self.busy = False

    def poison(self) -> None:
        """Kill the shard child (chaos harness).

        ``os._exit(137)`` inside the child is indistinguishable from a
        SIGKILL mid-batch: the executor breaks, and the next
        ``run_batch`` raises the same ``BrokenProcessPool`` the service's
        requeue/quarantine path must survive in production.
        """
        try:
            self._executor.submit(os._exit, 137).result(timeout=10)
        except Exception:  # noqa: BLE001 - the broken pool IS the point
            pass

    def sample(self) -> ResourceSample:
        """CPU/RSS of the shard child (re-targets if the child respawned)."""
        pid = self.pid
        if pid and (self._sampler is None or self._sampler.pid != pid):
            self._sampler = ProcessSampler(pid)
        if self._sampler is not None:
            self._last_sample = self._sampler.sample()
        return self._last_sample

    def status(self) -> ShardStatus:
        sample = self._last_sample
        return ShardStatus(shard_id=self.shard_id, busy=self.busy,
                           pid=self.pid, batches=self.batches,
                           jobs_done=self.jobs_done,
                           cpu_percent=sample.cpu_percent,
                           rss_bytes=sample.rss_bytes)

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait, cancel_futures=not wait)


class WorkerPool:
    """The elastic set of shards between the policy's bounds.

    Args:
        policy: Scaling bounds and resource brakes.
        cache_dir: Optional shared disk-cache directory for the shards.
        branch: Route each shard batch through the checkpoint/fork
            engine when prefix groups form inside it.
    """

    def __init__(self, policy: ResourcePolicy,
                 cache_dir: str | None = None, branch: bool = False):
        self.policy = policy
        self.cache_dir = cache_dir
        self.branch = branch
        self.scaled_up = 0
        self.scaled_down = 0
        self.replaced = 0
        self.peak_workers = 0
        self._next_id = 0
        self._shards: list[WorkerShard] = []
        self.scale_to(policy.min_workers)
        self.scaled_up = 0  # the initial fill is not an auto-scale event

    # ------------------------------------------------------------- scaling

    def __len__(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> list[WorkerShard]:
        return list(self._shards)

    def idle_shards(self) -> list[WorkerShard]:
        return [shard for shard in self._shards if not shard.busy]

    def scale_to(self, target: int) -> int:
        """Grow or shrink toward ``target`` (clamped to the policy
        bounds); only idle shards are retired.  Returns the new size."""
        target = max(self.policy.min_workers,
                     min(self.policy.max_workers, target))
        while len(self._shards) < target:
            shard = WorkerShard(self._next_id, self.cache_dir, self.branch)
            self._next_id += 1
            self._shards.append(shard)
            self.scaled_up += 1
        while len(self._shards) > target:
            idle = self.idle_shards()
            if not idle:
                break  # busy shards retire on a later pass
            shard = idle[-1]
            self._shards.remove(shard)
            shard.shutdown(wait=False)
            self.scaled_down += 1
        self.peak_workers = max(self.peak_workers, len(self._shards))
        return len(self._shards)

    def replace(self, shard: WorkerShard) -> WorkerShard | None:
        """Retire a crashed shard and spawn a fresh one in its place.

        A broken ``ProcessPoolExecutor`` never recovers, so graceful
        degradation means swapping the whole shard, not nursing it.
        Returns the successor, or ``None`` if the shard already left the
        pool (e.g. a concurrent scale-down retired it).
        """
        if shard not in self._shards:
            return None
        self._shards.remove(shard)
        shard.shutdown(wait=False)
        successor = WorkerShard(self._next_id, self.cache_dir, self.branch)
        self._next_id += 1
        self._shards.append(successor)
        self.replaced += 1
        self.peak_workers = max(self.peak_workers, len(self._shards))
        return successor

    def autoscale(self, backlog: int) -> int:
        """One policy step: sample every shard, move one step toward the
        policy's target for the current backlog.  Returns the new size."""
        samples = [shard.sample() for shard in self._shards]
        target = self.policy.target_workers(len(self._shards), backlog,
                                            samples)
        return self.scale_to(target)

    # ------------------------------------------------------------ lifecycle

    def statuses(self) -> list[ShardStatus]:
        return [shard.status() for shard in self._shards]

    def shutdown(self, wait: bool = True) -> None:
        """Stop every shard.  ``wait=True`` is the graceful drain (used
        on SIGTERM after in-flight batches finish); ``wait=False``
        cancels and reaps immediately."""
        for shard in self._shards:
            shard.shutdown(wait=wait)
        self._shards.clear()
