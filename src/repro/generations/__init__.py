"""Boot-entry generations: versioned boot profiles, A/B slots, OTA.

The paper measures one image booting fast; a shipped device spends its
life being *updated*, and updates are when boot time regresses or boots
stop working entirely.  This package adds the missing release dimension:
:class:`Generation` (a content-fingerprinted boot profile),
:class:`GenerationStore` (a git-shaped on-disk history with fast-forward
commits and rollbacks), :class:`SlotState` (the per-device A/B slot
machine with its never-brick / never-lose-known-good invariants), and
:func:`run_rollout` (the OTA campaign engine with health gating and
regression-gated automatic rollback through the recovery ladder's
``slot-rollback`` rung).
"""

from repro.generations.ota import (CORRUPT_IMAGE_PRESET,
                                   FAULT_CORRUPT_IMAGE,
                                   FAULT_INTERRUPTED_FLASH,
                                   VERDICT_HEALTHY, VERDICT_REGRESSION,
                                   VERDICT_STAGE_FAILED,
                                   VERDICT_UNIT_FAILURE,
                                   canonical_report_bytes, demo_baseline,
                                   demo_store, demo_target, device_ids,
                                   draw_update_fault, judge_summary,
                                   partition_waves, reference_boot_ms,
                                   render_rollout, rollback_policy,
                                   run_rollout)
from repro.generations.slots import (SLOT_A, SLOT_B, SlotState,
                                     check_slot_invariants)
from repro.generations.store import (DEFAULT_REF, Generation,
                                     GenerationStore,
                                     canonical_generation_bytes,
                                     diff_generations)

__all__ = [
    "CORRUPT_IMAGE_PRESET",
    "DEFAULT_REF",
    "FAULT_CORRUPT_IMAGE",
    "FAULT_INTERRUPTED_FLASH",
    "Generation",
    "GenerationStore",
    "SLOT_A",
    "SLOT_B",
    "SlotState",
    "VERDICT_HEALTHY",
    "VERDICT_REGRESSION",
    "VERDICT_STAGE_FAILED",
    "VERDICT_UNIT_FAILURE",
    "canonical_generation_bytes",
    "canonical_report_bytes",
    "check_slot_invariants",
    "demo_baseline",
    "demo_store",
    "demo_target",
    "device_ids",
    "diff_generations",
    "draw_update_fault",
    "judge_summary",
    "partition_waves",
    "reference_boot_ms",
    "render_rollout",
    "rollback_policy",
    "run_rollout",
]
