"""The OTA rollout engine: stage a generation across a fleet in waves.

A campaign updates a simulated device fleet from a *baseline* generation
to a *target* generation the way a consumer-electronics vendor does: in
rollout waves, with per-device update-failure injection, a health gate on
every trial boot, and automatic rollback of devices whose new slot fails.
Every trial boot is one declarative :class:`~repro.runner.jobs.SimJob`
built from the generation document, so a thousand identical TVs cost one
simulation — the fleet tier's dedup/cache does the rest.

The health gate has three verdicts, mirroring the tentpole's failure
modes:

``unit-failure``
    The trial boot degraded or wedged (the update shipped a broken unit
    set, or the flashed image is corrupt).
``boot-regression``
    The boot completed but took longer than ``regression_threshold x``
    the baseline's boot time as judged by the closed-form predictor
    (:func:`repro.analysis.predict.predict_job`) — the paper's whole
    value proposition is the boot time, so regressing it *is* a failure.
``healthy``
    Neither; the trial slot is confirmed known-good.

Rolled-back devices additionally run one supervised recovery job whose
ladder ends in the ``slot-rollback`` rung
(:data:`repro.recovery.RUNG_SLOT_ROLLBACK`), verifying that the recovery
layer independently reaches the same decision the campaign made.  The
rollback boot always executes through the local runner — in both the
serial and the fleet execution paths — so the two paths produce
byte-identical reports (the ``generation-identity`` verify group pins
this).
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from typing import Any

from repro.analysis.predict import predict_job
from repro.core.config import BBConfig
from repro.errors import AnalysisError, GenerationError
from repro.generations.slots import SlotState, check_slot_invariants
from repro.generations.store import DEFAULT_REF, Generation, GenerationStore
from repro.recovery import (RUNG_AS_CONFIGURED, RUNG_SLOT_ROLLBACK,
                            RecoveryPolicy)

#: Update-failure kinds a device can draw during staging.
FAULT_INTERRUPTED_FLASH = "interrupted-flash"
FAULT_CORRUPT_IMAGE = "corrupt-image"

#: Fault preset overlaid on trial boots of corrupt-image devices.
CORRUPT_IMAGE_PRESET = "broken-tuner"

#: Health verdicts (also the rollback reasons in wave reports).
VERDICT_HEALTHY = "healthy"
VERDICT_UNIT_FAILURE = "unit-failure"
VERDICT_REGRESSION = "boot-regression"
VERDICT_STAGE_FAILED = "stage-failed"


def device_ids(count: int) -> list[str]:
    """Stable fleet device names (``dev-000`` ...)."""
    return [f"dev-{index:03d}" for index in range(count)]


def partition_waves(devices: list[str], waves: int) -> list[list[str]]:
    """Contiguous, near-equal rollout waves (earlier waves no smaller)."""
    if waves < 1:
        raise GenerationError(f"waves must be >= 1, got {waves!r}")
    waves = min(waves, len(devices)) or 1
    base, extra = divmod(len(devices), waves)
    out: list[list[str]] = []
    start = 0
    for index in range(waves):
        size = base + (1 if index < extra else 0)
        out.append(devices[start:start + size])
        start += size
    return out


def draw_update_fault(seed: int, device: str, flash_rate: float,
                      corrupt_rate: float) -> str | None:
    """Deterministic per-device update-failure draw.

    The uniform variate comes from SHA-256 of ``seed:device`` — process-
    and path-independent, so serial and fleet rollouts inject identical
    failures.
    """
    if flash_rate == 0.0 and corrupt_rate == 0.0:
        return None
    digest = hashlib.sha256(f"{seed}:{device}".encode("ascii")).digest()
    uniform = int.from_bytes(digest[:8], "big") / 2**64
    if uniform < flash_rate:
        return FAULT_INTERRUPTED_FLASH
    if uniform < flash_rate + corrupt_rate:
        return FAULT_CORRUPT_IMAGE
    return None


def reference_boot_ms(baseline: Generation) -> float:
    """The baseline's boot time in ms, from the closed-form predictor.

    Rounded to 3 decimals — the same rounding
    :func:`repro.fleet.protocol.summarize_result` applies to measured
    boots, so the regression comparison never trips on float formatting.
    """
    try:
        prediction = predict_job(baseline.boot_job())
    except AnalysisError as exc:
        raise GenerationError(
            f"baseline generation {baseline.label!r} is not predictable "
            f"({exc}); rollout needs a clean baseline") from exc
    return round(prediction.boot_complete_ns / 1e6, 3)


def judge_summary(summary: dict[str, Any], reference_ms: float,
                  threshold: float) -> str:
    """Health-gate one trial boot's streamed synopsis."""
    if summary.get("type") != "BootReport":
        return VERDICT_UNIT_FAILURE
    if summary.get("degraded"):
        return VERDICT_UNIT_FAILURE
    boot_ms = summary.get("boot_ms")
    if not isinstance(boot_ms, (int, float)):
        return VERDICT_UNIT_FAILURE
    if boot_ms > threshold * reference_ms:
        return VERDICT_REGRESSION
    return VERDICT_HEALTHY


def _spec_key(spec: dict[str, Any]) -> str:
    return json.dumps(spec, sort_keys=True, separators=(",", ":"))


def _corrupt_spec(target: Generation, update_seed: int) -> dict[str, Any]:
    """The trial boot of a device whose flash wrote garbage: the target
    image overlaid with a deterministic image-corruption fault."""
    spec = target.boot_spec(label=f"{target.label}+corrupt")
    spec["fault"] = {"preset": CORRUPT_IMAGE_PRESET, "seed": update_seed + 1}
    return spec


def rollback_policy(target: Generation, baseline: Generation,
                    reference_ms: float) -> RecoveryPolicy:
    """The supervised ladder a rolled-back device re-verifies with."""
    threshold_ns = int(round(
        target.regression_threshold * reference_ms * 1e6))
    return RecoveryPolicy(
        label=f"rollback:{target.label}",
        ladder=(RUNG_AS_CONFIGURED, RUNG_SLOT_ROLLBACK),
        base_bb=target.bb(),
        max_boot_ns=threshold_ns,
        fallback_workload=baseline.workload,
        fallback_bb=baseline.bb())


def _rollback_job(target: Generation, baseline: Generation,
                  reference_ms: float, corrupt: bool, update_seed: int):
    from repro.fleet.protocol import job_from_spec
    from repro.runner.jobs import SimJob

    if corrupt:
        plan_spec = _corrupt_spec(target, update_seed)
    else:
        plan_spec = target.boot_spec()
    trial_job, _ = job_from_spec(plan_spec)
    return SimJob.recover(
        trial_job.workload_factory,
        policy=rollback_policy(target, baseline, reference_ms),
        fault_plan=trial_job.fault_plan,
        label=f"rollback {target.label} -> {baseline.label}")


# ---------------------------------------------------------------- executors

class _SerialExecutor:
    """Trial boots through a local :class:`SweepRunner` (shared cache)."""

    def __init__(self, jobs: int = 1):
        from repro.runner.sweep import SweepRunner
        self._runner = SweepRunner(jobs=jobs)
        self._runner.__enter__()

    async def submit(self, specs: list[dict[str, Any]]
                     ) -> list[dict[str, Any]]:
        from repro.fleet.protocol import job_from_spec, summarize_result
        jobs = [job_from_spec(spec)[0] for spec in specs]
        results = self._runner.run(jobs)
        return [summarize_result(result) for result in results]

    async def close(self) -> None:
        self._runner.__exit__(None, None, None)


class _FleetExecutor:
    """Trial boots through an in-process fleet service over TCP."""

    def __init__(self, jobs: int = 1):
        self._jobs = jobs
        self._service = None
        self._client = None

    async def _ensure_started(self) -> None:
        if self._service is not None:
            return
        from repro.fleet.client import FleetClient
        from repro.fleet.resources import ResourcePolicy
        from repro.fleet.service import FleetService

        self._service = FleetService(
            port=0, policy=ResourcePolicy(min_workers=1,
                                          max_workers=self._jobs))
        host, port = await self._service.start()
        self._client = FleetClient(host, port)
        await self._client.connect()

    async def submit(self, specs: list[dict[str, Any]]
                     ) -> list[dict[str, Any]]:
        await self._ensure_started()
        outcome = await self._client.submit(specs)
        if outcome.errors:
            first = min(outcome.errors)
            raise GenerationError(
                f"fleet rollout job {first} failed: "
                f"{outcome.errors[first]}")
        return outcome.summaries

    async def close(self) -> None:
        if self._client is not None:
            await self._client.close()
        if self._service is not None:
            await self._service.stop()


# ----------------------------------------------------------------- rollout

def run_rollout(store: GenerationStore, target: str = DEFAULT_REF,
                baseline: str | None = None, *, devices: int = 12,
                waves: int = 3, update_seed: int = 0,
                flash_rate: float = 0.0, corrupt_rate: float = 0.0,
                halt_threshold: float = 0.5, jobs: int = 1,
                use_fleet: bool = False) -> dict[str, Any]:
    """Stage ``target`` across a fleet currently running ``baseline``.

    Args:
        store: The generation store holding both generations.
        target: Ref name or fingerprint (prefix) of the new generation.
        baseline: Ref/fingerprint of the fleet's current generation;
            defaults to the target's ``parent``.
        devices: Fleet size.
        waves: Rollout wave count (devices split contiguously).
        update_seed: Seed for the per-device update-failure draws.
        flash_rate / corrupt_rate: Probability a device's flash is
            interrupted (stays on baseline) / writes a corrupt image
            (trial boot fails).
        halt_threshold: Abort the campaign when a wave's rollback
            fraction reaches this (the vendor pulls the release).
        jobs: Worker count for the execution tier.
        use_fleet: Boot trials through the fleet TCP service instead of
            a local sweep runner.  The report is byte-identical either
            way.

    Returns:
        A JSON-able campaign report (deterministic: no wall-clock, no
        execution-path metadata).
    """
    target_fp = store.resolve(target)
    target_gen = store.get(target_fp)
    if baseline is not None:
        baseline_fp = store.resolve(baseline)
    elif target_gen.parent is not None:
        baseline_fp = target_gen.parent
    else:
        raise GenerationError(
            f"target generation {target_gen.label!r} has no parent; "
            f"name a baseline explicitly")
    baseline_gen = store.get(baseline_fp)
    if baseline_fp == target_fp:
        raise GenerationError("target and baseline are the same generation")

    reference_ms = reference_boot_ms(baseline_gen)
    threshold = target_gen.regression_threshold
    fleet = device_ids(devices)
    wave_plan = partition_waves(fleet, waves)

    async def _campaign() -> dict[str, Any]:
        executor = (_FleetExecutor(jobs=jobs) if use_fleet
                    else _SerialExecutor(jobs=jobs))
        try:
            return await _run_waves(executor)
        finally:
            await executor.close()

    async def _run_waves(executor) -> dict[str, Any]:
        states = {device: SlotState.provision(baseline_fp)
                  for device in fleet}
        recovery_cache: dict[str, Any] = {}
        wave_reports: list[dict[str, Any]] = []
        halted_after: int | None = None

        for wave_index, wave_devices in enumerate(wave_plan):
            if halted_after is not None:
                break
            plans: dict[str, str | None] = {}  # device -> spec key
            verdicts: dict[str, str] = {}
            specs: list[dict[str, Any]] = []
            keys: list[str] = []
            for device in wave_devices:
                update_fault = draw_update_fault(
                    update_seed, device, flash_rate, corrupt_rate)
                if update_fault == FAULT_INTERRUPTED_FLASH:
                    # The flash aborted: the standby slot keeps whatever
                    # it held and the device never reboots into the
                    # update.
                    verdicts[device] = VERDICT_STAGE_FAILED
                    plans[device] = None
                    continue
                state = states[device].stage(target_fp).activate()
                states[device] = state
                if update_fault == FAULT_CORRUPT_IMAGE:
                    spec = _corrupt_spec(target_gen, update_seed)
                else:
                    spec = target_gen.boot_spec()
                key = _spec_key(spec)
                if key not in keys:
                    keys.append(key)
                    specs.append(spec)
                plans[device] = key

            summaries = dict(zip(keys, await executor.submit(specs)))

            rollbacks = 0
            verified = 0
            reasons: dict[str, int] = {}
            for device in wave_devices:
                key = plans[device]
                if key is None:
                    reasons[VERDICT_STAGE_FAILED] = (
                        reasons.get(VERDICT_STAGE_FAILED, 0) + 1)
                    continue
                verdict = judge_summary(summaries[key], reference_ms,
                                        threshold)
                verdicts[device] = verdict
                reasons[verdict] = reasons.get(verdict, 0) + 1
                state = states[device]
                if verdict == VERDICT_HEALTHY:
                    states[device] = state.boot_ok()
                    continue
                # The simulator is deterministic, so every health retry
                # fails identically; burn the attempt budget on the slot
                # counter without re-simulating.
                for _ in range(target_gen.max_boot_attempts):
                    state = state.boot_fail()
                states[device] = state.rollback()
                rollbacks += 1
                corrupt = key == _spec_key(_corrupt_spec(target_gen,
                                                         update_seed))
                job = _rollback_job(target_gen, baseline_gen, reference_ms,
                                    corrupt, update_seed)
                fingerprint = job.fingerprint()
                if fingerprint not in recovery_cache:
                    from repro.runner.jobs import execute_job
                    recovery_cache[fingerprint] = execute_job(job)
                outcome = recovery_cache[fingerprint]
                if outcome.converged and outcome.rung == RUNG_SLOT_ROLLBACK:
                    verified += 1

            wave_reports.append({
                "wave": wave_index,
                "devices": list(wave_devices),
                "unique_boots": len(specs),
                "verdicts": dict(sorted(reasons.items())),
                "rollbacks": rollbacks,
                "rollbacks_verified": verified,
            })
            if wave_devices and rollbacks / len(wave_devices) >= halt_threshold:
                halted_after = wave_index

        stored = set(store.fingerprints())
        for device, state in states.items():
            check_slot_invariants(state, stored)

        healthy = sum(report["verdicts"].get(VERDICT_HEALTHY, 0)
                      for report in wave_reports)
        stage_failures = sum(report["verdicts"].get(VERDICT_STAGE_FAILED, 0)
                             for report in wave_reports)
        total_rollbacks = sum(report["rollbacks"] for report in wave_reports)
        updated = sum(1 for state in states.values()
                      if state.active_generation == target_fp)
        return {
            "target": target_fp,
            "target_label": target_gen.label,
            "baseline": baseline_fp,
            "baseline_label": baseline_gen.label,
            "reference_ms": reference_ms,
            "regression_threshold": threshold,
            "max_boot_attempts": target_gen.max_boot_attempts,
            "devices": len(fleet),
            "planned_waves": len(wave_plan),
            "waves": wave_reports,
            "halted_after": halted_after,
            "healthy": healthy,
            "rollbacks": total_rollbacks,
            "stage_failures": stage_failures,
            "devices_updated": updated,
            "device_states": {device: states[device].to_dict()
                              for device in fleet},
        }

    return asyncio.run(_campaign())


def canonical_report_bytes(report: dict[str, Any]) -> bytes:
    """Byte-identity encoding for serial-vs-fleet comparisons."""
    return json.dumps(report, sort_keys=True,
                      separators=(",", ":")).encode("ascii")


def render_rollout(report: dict[str, Any]) -> str:
    """Human-readable campaign report for the CLI."""
    from repro.analysis.report import format_table

    rows = [
        ("target", f"{report['target_label']} "
                   f"({report['target'][:12]})"),
        ("baseline", f"{report['baseline_label']} "
                     f"({report['baseline'][:12]})"),
        ("reference boot", f"{report['reference_ms']:.3f} ms"),
        ("regression gate", f"> {report['regression_threshold']:.2f}x "
                            f"reference"),
        ("fleet", f"{report['devices']} devices / "
                  f"{report['planned_waves']} waves"),
        ("updated", f"{report['devices_updated']}"),
        ("healthy", f"{report['healthy']}"),
        ("rollbacks", f"{report['rollbacks']}"),
        ("stage failures", f"{report['stage_failures']}"),
    ]
    out = ["OTA rollout campaign", format_table(["metric", "value"], rows)]
    for wave in report["waves"]:
        verdicts = ", ".join(f"{name}={count}" for name, count
                             in wave["verdicts"].items()) or "idle"
        out.append(f"  wave {wave['wave']}: {len(wave['devices'])} devices, "
                   f"{wave['unique_boots']} unique boot(s), {verdicts}, "
                   f"{wave['rollbacks_verified']}/{wave['rollbacks']} "
                   f"rollbacks verified by the recovery ladder")
    if report["halted_after"] is not None:
        out.append(f"  campaign HALTED after wave {report['halted_after']} "
                   f"(rollback fraction reached the halt threshold)")
    return "\n".join(out)


# ------------------------------------------------------------ demo fixtures

#: Features whose removal regresses tv boot ~24% (> the 1.10 gate) while
#: still completing: the demo "regressed" update.
_DEMO_REGRESSED_DROPS = ("preparser", "deferred_executor")


def demo_baseline() -> Generation:
    """The known-good generation the demo fleet ships with."""
    return Generation(label="gen-1", workload="tv",
                      features=tuple(BBConfig.full().enabled_features()),
                      notes="factory image")


def demo_target(kind: str, parent: str) -> Generation:
    """A demo update of the given kind, parented on the baseline.

    ``clean``
        Identical boot profile, new release notes: zero rollbacks.
    ``regressed``
        Drops the preparser and the deferred executor, regressing boot
        time past the gate: every updated device rolls back.
    ``broken``
        Ships a fault preset that breaks a boot-critical unit: every
        updated device rolls back at the unit-failure verdict.
    """
    base = demo_baseline()
    features = tuple(base.features)
    fault = None
    if kind == "regressed":
        features = tuple(name for name in features
                         if name not in _DEMO_REGRESSED_DROPS)
        notes = "update that regresses boot time"
    elif kind == "broken":
        fault = (CORRUPT_IMAGE_PRESET, 1)
        notes = "update that ships a broken unit"
    elif kind == "clean":
        notes = "maintenance update, no boot change"
    else:
        raise GenerationError(f"unknown demo target kind {kind!r}; "
                              f"expected clean, regressed or broken")
    return Generation(label="gen-2", workload=base.workload,
                      features=features, fault=fault, parent=parent,
                      notes=notes)


def demo_store(root, kind: str = "regressed") -> GenerationStore:
    """Initialize a demo store with baseline + target committed."""
    store = GenerationStore.init(root)
    head = store.commit(demo_baseline())
    store.commit(demo_target(kind, parent=head))
    return store
