"""The per-device A/B boot-slot state machine.

Real consumer devices survive bad updates with two boot slots: the new
generation is flashed into the *standby* slot, the bootloader flips to
it, and a boot-attempt counter decides whether the trial slot is
health-confirmed or rolled back (Android's boot-control HAL and U-Boot's
bootcount do exactly this).  :class:`SlotState` models that machinery as
an immutable value with pure transitions, so a rollout campaign can fold
events over thousands of simulated devices and the Hypothesis suite can
drive arbitrary event sequences against the two safety invariants:

1. **Never brick**: the active slot always references a stored
   generation — no transition can flip the bootloader to an empty slot.
2. **Never lose known-good**: the slot holding the last health-confirmed
   generation cannot be overwritten until a newer generation has itself
   been health-confirmed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.errors import SlotStateError

#: The two slot names.
SLOT_A = "a"
SLOT_B = "b"


@dataclass(frozen=True, slots=True)
class SlotState:
    """One device's A/B slot table.

    Attributes:
        slot_a / slot_b: Generation fingerprint flashed in each slot
            (``None`` = empty).
        active: Which slot the bootloader selects (``"a"`` or ``"b"``).
        trial: The slot currently on probation (just activated, health
            not yet confirmed), or ``None``.
        boot_attempts: Failed health-check boots of the trial slot.
        known_good: Fingerprint of the last health-confirmed generation.
    """

    slot_a: str | None = None
    slot_b: str | None = None
    active: str = SLOT_A
    trial: str | None = None
    boot_attempts: int = 0
    known_good: str | None = None

    def __post_init__(self) -> None:
        if self.active not in (SLOT_A, SLOT_B):
            raise SlotStateError(f"active slot must be 'a' or 'b', "
                                 f"got {self.active!r}")
        if self.trial not in (None, SLOT_A, SLOT_B):
            raise SlotStateError(f"trial slot must be None, 'a' or 'b', "
                                 f"got {self.trial!r}")
        if self.boot_attempts < 0:
            raise SlotStateError(f"boot_attempts cannot be negative, "
                                 f"got {self.boot_attempts!r}")

    # ------------------------------------------------------------- reading

    @classmethod
    def provision(cls, fingerprint: str) -> "SlotState":
        """Factory state: the shipped image is in slot A and trusted."""
        if not fingerprint:
            raise SlotStateError("cannot provision an empty fingerprint")
        return cls(slot_a=fingerprint, active=SLOT_A,
                   known_good=fingerprint)

    @property
    def standby(self) -> str:
        """The slot the bootloader is *not* selecting."""
        return SLOT_B if self.active == SLOT_A else SLOT_A

    def generation_in(self, slot: str) -> str | None:
        """Fingerprint flashed in ``slot`` (``None`` = empty)."""
        if slot == SLOT_A:
            return self.slot_a
        if slot == SLOT_B:
            return self.slot_b
        raise SlotStateError(f"unknown slot {slot!r}")

    @property
    def active_generation(self) -> str | None:
        return self.generation_in(self.active)

    @property
    def standby_generation(self) -> str | None:
        return self.generation_in(self.standby)

    def _with_slot(self, slot: str, fingerprint: str | None) -> "SlotState":
        if slot == SLOT_A:
            return replace(self, slot_a=fingerprint)
        return replace(self, slot_b=fingerprint)

    # --------------------------------------------------------- transitions

    def stage(self, fingerprint: str) -> "SlotState":
        """Flash a generation into the standby slot.

        Raises:
            SlotStateError: When the flash would overwrite the only copy
                of the known-good generation before a newer one has been
                health-confirmed (invariant 2) — a trial is underway and
                the standby slot is the fallback.
        """
        if not fingerprint:
            raise SlotStateError("cannot stage an empty fingerprint")
        standby_fp = self.standby_generation
        if (self.known_good is not None
                and standby_fp == self.known_good
                and self.active_generation != self.known_good
                and fingerprint != self.known_good):
            raise SlotStateError(
                f"staging {fingerprint[:12]} would overwrite the "
                f"known-good generation {self.known_good[:12]} while the "
                f"active slot is unconfirmed")
        return self._with_slot(self.standby, fingerprint)

    def activate(self) -> "SlotState":
        """Flip the bootloader to the standby slot and start its trial.

        Raises:
            SlotStateError: When the standby slot is empty — flipping to
                it would brick the device (invariant 1).
        """
        if self.standby_generation is None:
            raise SlotStateError(
                f"cannot activate empty slot {self.standby!r}")
        target = self.standby
        return replace(self, active=target, trial=target, boot_attempts=0)

    def boot_ok(self) -> "SlotState":
        """One healthy boot: confirm the trial (if any) as known-good."""
        fingerprint = self.active_generation
        if fingerprint is None:
            raise SlotStateError("active slot is empty; nothing booted")
        if self.trial == self.active:
            return replace(self, trial=None, boot_attempts=0,
                           known_good=fingerprint)
        return replace(self, boot_attempts=0)

    def boot_fail(self) -> "SlotState":
        """One failed health-check boot: bump the attempt counter."""
        return replace(self, boot_attempts=self.boot_attempts + 1)

    def rollback(self) -> "SlotState":
        """Flip back to the standby slot (normally the known-good one).

        Raises:
            SlotStateError: When the standby slot is empty — there is
                nothing to fall back to (invariant 1 again).
        """
        if self.standby_generation is None:
            raise SlotStateError(
                f"cannot roll back: slot {self.standby!r} is empty")
        return replace(self, active=self.standby, trial=None,
                       boot_attempts=0)

    @property
    def trial_exhausted(self) -> bool:
        """Whether the attempt counter says the trial slot is dead
        (campaigns compare against the generation's ``max_boot_attempts``
        before calling this; the property just reads the counter)."""
        return self.trial is not None and self.boot_attempts > 0

    # ------------------------------------------------------------ documents

    def to_dict(self) -> dict[str, Any]:
        return {
            "slot_a": self.slot_a,
            "slot_b": self.slot_b,
            "active": self.active,
            "trial": self.trial,
            "boot_attempts": self.boot_attempts,
            "known_good": self.known_good,
        }

    @classmethod
    def from_dict(cls, document: dict[str, Any]) -> "SlotState":
        return cls(**document)


def check_slot_invariants(state: SlotState,
                          stored: set[str] | None = None) -> None:
    """Assert the two safety invariants; raise :class:`SlotStateError`.

    The property suite calls this after every transition; campaigns call
    it on final device states with ``stored`` = the store's fingerprints.
    """
    active_fp = state.active_generation
    if active_fp is None:
        raise SlotStateError("invariant: active slot references no "
                             "generation (device is bricked)")
    if stored is not None:
        for slot, fingerprint in (("a", state.slot_a), ("b", state.slot_b)):
            if fingerprint is not None and fingerprint not in stored:
                raise SlotStateError(
                    f"invariant: slot {slot} references unstored "
                    f"generation {fingerprint[:12]}")
    if state.known_good is not None:
        in_a_slot = state.known_good in (state.slot_a, state.slot_b)
        if not in_a_slot:
            raise SlotStateError(
                f"invariant: known-good generation "
                f"{state.known_good[:12]} is in neither slot")
