"""Versioned, content-addressed boot-entry generations.

A **Generation** is everything that decides how a device boots — the
workload preset, the BB feature set, the core count, an optional planted
fault, and the rollback policy knobs — captured as a small declarative
document, exactly the information a boom-boot entry or an OSTree deploy
pins on a real appliance.  Generations are content-addressed: the
fingerprint is the SHA-256 of the canonical JSON encoding, deliberately
*without* the code-version salt used by run-result caches, so a store
written yesterday still resolves after the simulator's code changes
(results re-run; boot *profiles* persist).

The :class:`GenerationStore` is the on-disk side: a ``git``-shaped layout
with immutable ``objects/<fingerprint>.json`` documents plus a
``refs.json`` head table.  Commits must fast-forward (the new
generation's ``parent`` names the current head), which gives every ref a
linear history that :meth:`GenerationStore.rollback` can walk backwards —
``store.rollback()`` immediately after ``store.commit(g)`` hands ``g``
back, the round-trip the ``generation-identity`` verify group pins.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Any, Iterator

from repro.analysis.schema import validate_generation_dict
from repro.core.config import BBConfig
from repro.errors import GenerationError, SchemaError

#: Default ref name, mirroring the git convention.
DEFAULT_REF = "main"


def canonical_generation_bytes(document: dict[str, Any]) -> bytes:
    """The canonical encoding that gets fingerprinted and stored."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True).encode("ascii")


@dataclass(frozen=True, slots=True)
class Generation:
    """One immutable boot profile.

    Attributes:
        label: Human-facing release name (``"gen-2"``, ``"2026.08"``).
        workload: Registry name of the device workload preset.
        features: Sorted, duplicate-free BB feature names to enable.
        cores: CPU core override (``None`` = workload default).
        fault: Optional planted defect as ``(preset, seed)`` — how update
            regressions enter the simulation (a generation whose unit set
            is broken ships a fault preset).
        max_boot_attempts: Health-check boots the A/B machinery allows
            the trial slot before declaring it failed.
        regression_threshold: Rollback fires when measured boot time
            exceeds ``threshold x`` the previous generation's predicted
            boot time.
        parent: Fingerprint of the generation this one updates
            (``None`` for a root).
        notes: Free-form release notes (fingerprinted like everything
            else: two releases differing only in notes are different
            generations).
    """

    label: str
    workload: str = "tv"
    features: tuple[str, ...] = ()
    cores: int | None = None
    fault: tuple[str, int] | None = None
    max_boot_attempts: int = 3
    regression_threshold: float = 1.10
    parent: str | None = None
    notes: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "features",
                           tuple(sorted(set(self.features))))
        if self.fault is not None:
            preset, seed = self.fault
            object.__setattr__(self, "fault", (str(preset), int(seed)))
        try:
            validate_generation_dict(self.to_dict(),
                                     where=f"generation {self.label!r}")
        except SchemaError as exc:
            raise GenerationError(str(exc)) from exc
        self._check_names()

    def _check_names(self) -> None:
        """Names must resolve now, not when a campaign is half-done."""
        from repro.faults import PRESETS
        from repro.workloads import WORKLOAD_FACTORIES

        if self.workload not in WORKLOAD_FACTORIES:
            raise GenerationError(
                f"generation {self.label!r}: unknown workload "
                f"{self.workload!r}; choose from "
                f"{', '.join(sorted(WORKLOAD_FACTORIES))}")
        known = {f.name for f in fields(BBConfig)}
        for feature in self.features:
            if feature not in known:
                raise GenerationError(
                    f"generation {self.label!r}: unknown BB feature "
                    f"{feature!r}")
        if self.fault is not None and self.fault[0] not in PRESETS:
            raise GenerationError(
                f"generation {self.label!r}: unknown fault preset "
                f"{self.fault[0]!r}; choose from {', '.join(sorted(PRESETS))}")

    # ------------------------------------------------------------ documents

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view (shape pinned by ``GENERATION_KEYS``)."""
        return {
            "label": self.label,
            "workload": self.workload,
            "features": list(self.features),
            "cores": self.cores,
            "fault": (None if self.fault is None
                      else {"preset": self.fault[0], "seed": self.fault[1]}),
            "max_boot_attempts": self.max_boot_attempts,
            "regression_threshold": self.regression_threshold,
            "parent": self.parent,
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, document: Any) -> "Generation":
        """Parse and validate a stored/wire document."""
        try:
            validate_generation_dict(document)
        except SchemaError as exc:
            raise GenerationError(str(exc)) from exc
        fault = document["fault"]
        return cls(
            label=document["label"],
            workload=document["workload"],
            features=tuple(document["features"]),
            cores=document["cores"],
            fault=(None if fault is None
                   else (fault["preset"], fault["seed"])),
            max_boot_attempts=document["max_boot_attempts"],
            regression_threshold=document["regression_threshold"],
            parent=document["parent"],
            notes=document["notes"],
        )

    def canonical_bytes(self) -> bytes:
        return canonical_generation_bytes(self.to_dict())

    def fingerprint(self) -> str:
        """Content address: SHA-256 of the canonical document bytes."""
        return hashlib.sha256(self.canonical_bytes()).hexdigest()

    def with_parent(self, parent: str | None) -> "Generation":
        """Copy re-parented for a commit onto another head."""
        return replace(self, parent=parent)

    # ---------------------------------------------------------- simulation

    def bb(self) -> BBConfig:
        """The BB feature switchboard this generation boots under."""
        config = BBConfig.none()
        for feature in self.features:
            config = config.with_feature(feature, True)
        return config

    def fault_plan(self):
        """Compiled fault plan of the planted defect (``None`` if clean)."""
        if self.fault is None:
            return None
        from repro.faults import build_preset
        return build_preset(self.fault[0], seed=self.fault[1])

    def boot_spec(self, repeat: int = 1, label: str = "") -> dict[str, Any]:
        """This generation's boot as a declarative fleet wire spec."""
        spec: dict[str, Any] = {
            "kind": "boot",
            "workload": self.workload,
            "bb": list(self.features),
            "label": label or f"{self.label}@{self.fingerprint()[:12]}",
        }
        if self.cores is not None:
            spec["cores"] = self.cores
        if self.fault is not None:
            spec["fault"] = {"preset": self.fault[0], "seed": self.fault[1]}
        if repeat != 1:
            spec["repeat"] = repeat
        return spec

    def boot_job(self):
        """This generation's boot as a :class:`~repro.runner.jobs.SimJob`."""
        from repro.fleet.protocol import job_from_spec
        job, _ = job_from_spec(self.boot_spec())
        return job


class GenerationStore:
    """On-disk generation history: content-addressed objects + ref heads.

    Layout under ``root``::

        objects/<sha256>.json    immutable generation documents
        refs.json                {"main": "<sha256>", ...}

    Every read re-fingerprints the document, so silent corruption (or a
    hand-edited object file) surfaces as :class:`GenerationError` instead
    of a device booting an image it never agreed to.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def refs_path(self) -> Path:
        return self.root / "refs.json"

    @property
    def initialized(self) -> bool:
        return self.objects_dir.is_dir() and self.refs_path.is_file()

    @classmethod
    def init(cls, root: str | Path) -> "GenerationStore":
        """Create an empty store; refuses to clobber an existing one."""
        store = cls(root)
        if store.initialized:
            raise GenerationError(
                f"generation store already initialized at {store.root}")
        store.objects_dir.mkdir(parents=True, exist_ok=True)
        store._save_refs({})
        return store

    def _require_initialized(self) -> None:
        if not self.initialized:
            raise GenerationError(
                f"no generation store at {self.root} "
                f"(run 'repro generations init' first)")

    def _load_refs(self) -> dict[str, str]:
        self._require_initialized()
        try:
            refs = json.loads(self.refs_path.read_text(encoding="ascii"))
        except (ValueError, OSError) as exc:
            raise GenerationError(
                f"unreadable refs table {self.refs_path}: {exc}") from exc
        if not isinstance(refs, dict) or any(
                not isinstance(k, str) or not isinstance(v, str)
                for k, v in refs.items()):
            raise GenerationError(
                f"malformed refs table {self.refs_path}: {refs!r}")
        return refs

    def _save_refs(self, refs: dict[str, str]) -> None:
        # The refs table is the store's single mutable file: a torn
        # write here orphans every ref at once.  The journal's atomic
        # write (temp + fsync + rename + guarded directory fsync — the
        # guard matters on platforms where directories cannot be
        # opened) means a crash at any instant leaves either the old
        # complete table or the new complete table, never a prefix.
        from repro.fleet.journal import atomic_write_bytes

        payload = json.dumps(dict(sorted(refs.items())), indent=2,
                             sort_keys=True) + "\n"
        atomic_write_bytes(self.refs_path, payload.encode("ascii"))

    # -------------------------------------------------------------- objects

    def put(self, generation: Generation) -> str:
        """Store one generation; returns its fingerprint (idempotent)."""
        self._require_initialized()
        fingerprint = generation.fingerprint()
        path = self.objects_dir / f"{fingerprint}.json"
        if not path.exists():
            path.write_bytes(generation.canonical_bytes() + b"\n")
        return fingerprint

    def get(self, fingerprint: str) -> Generation:
        """Load one generation, verifying its content address."""
        self._require_initialized()
        path = self.objects_dir / f"{fingerprint}.json"
        if not path.is_file():
            raise GenerationError(f"unknown generation {fingerprint!r}")
        try:
            document = json.loads(path.read_bytes())
        except ValueError as exc:
            raise GenerationError(
                f"corrupt generation object {path.name}: {exc}") from exc
        generation = Generation.from_dict(document)
        actual = generation.fingerprint()
        if actual != fingerprint:
            raise GenerationError(
                f"generation object {path.name} is tampered: content "
                f"fingerprints to {actual[:12]}")
        return generation

    def fingerprints(self) -> list[str]:
        """Every stored object's fingerprint, sorted."""
        self._require_initialized()
        return sorted(path.stem for path in self.objects_dir.glob("*.json"))

    # ----------------------------------------------------------------- refs

    def refs(self) -> dict[str, str]:
        """The ref table (``name -> head fingerprint``), sorted."""
        return dict(sorted(self._load_refs().items()))

    def head(self, ref: str = DEFAULT_REF) -> str | None:
        """Current head fingerprint of ``ref`` (``None`` if unborn)."""
        return self._load_refs().get(ref)

    def resolve(self, name: str, ref: str = DEFAULT_REF) -> str:
        """Resolve a ref name or (unique) fingerprint prefix."""
        refs = self._load_refs()
        if name in refs:
            return refs[name]
        matches = [fp for fp in self.fingerprints() if fp.startswith(name)]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise GenerationError(
                f"ambiguous generation prefix {name!r} "
                f"({len(matches)} matches)")
        raise GenerationError(f"cannot resolve generation {name!r}")

    def commit(self, generation: Generation, ref: str = DEFAULT_REF) -> str:
        """Fast-forward ``ref`` onto ``generation``; returns the new head.

        The generation's ``parent`` must name the current head (or be
        ``None`` for an unborn ref) — there are no merges in an A/B boot
        history, only a line of releases.
        """
        refs = self._load_refs()
        head = refs.get(ref)
        if generation.parent != head:
            raise GenerationError(
                f"non-fast-forward commit on {ref!r}: parent is "
                f"{generation.parent!r}, head is {head!r} "
                f"(re-parent with Generation.with_parent)")
        if head is not None:
            head_generation = self.get(head)
            if generation.with_parent(head_generation.parent) \
                    == head_generation:
                raise GenerationError(
                    f"empty commit on {ref!r}: {generation.label!r} is "
                    f"identical to the current head")
        fingerprint = self.put(generation)
        refs[ref] = fingerprint
        self._save_refs(refs)
        return fingerprint

    def rollback(self, ref: str = DEFAULT_REF) -> Generation:
        """Pop ``ref`` back to its parent; returns the popped generation.

        The popped object stays in ``objects/`` (content-addressed stores
        never lose history), so ``rollback(commit(g)) == g`` round-trips.
        """
        refs = self._load_refs()
        head = refs.get(ref)
        if head is None:
            raise GenerationError(f"ref {ref!r} has no generations "
                                  f"to roll back")
        generation = self.get(head)
        if generation.parent is None:
            del refs[ref]
        else:
            refs[ref] = generation.parent
        self._save_refs(refs)
        return generation

    def log(self, ref: str = DEFAULT_REF) -> Iterator[Generation]:
        """Walk ``ref`` head -> root, yielding each generation."""
        fingerprint = self.head(ref)
        seen: set[str] = set()
        while fingerprint is not None:
            if fingerprint in seen:
                raise GenerationError(
                    f"generation history of {ref!r} contains a cycle "
                    f"at {fingerprint[:12]}")
            seen.add(fingerprint)
            generation = self.get(fingerprint)
            yield generation
            fingerprint = generation.parent


def diff_generations(old: Generation, new: Generation) -> dict[str, Any]:
    """Field-by-field delta (``field -> {"old": ..., "new": ...}``)."""
    old_doc, new_doc = old.to_dict(), new.to_dict()
    return {key: {"old": old_doc[key], "new": new_doc[key]}
            for key in sorted(old_doc)
            if old_doc[key] != new_doc[key]}
