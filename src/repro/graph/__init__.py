"""Dependency-graph tooling: the Service Analyzer and its relatives.

* :mod:`repro.graph.depgraph` — typed dependency graph built from a unit
  registry (the data behind Fig. 2),
* :mod:`repro.graph.analyzer` — the Service Engine's Service Analyzer
  (§3.3): cycles, contradictions, redundancies, dangling references,
* :mod:`repro.graph.critical_path` — longest-path analysis to the boot
  completion definition,
* :mod:`repro.graph.fragmentation` — the Fig. 3 group-fragmentation model,
* :mod:`repro.graph.visualize` — Graphviz DOT export with the paper's
  red (strong) / green (weak) edge colouring, and Fig. 2 statistics.
"""

from repro.graph.analyzer import AnalyzerReport, Finding, ServiceAnalyzer
from repro.graph.critical_path import CriticalPath, critical_path
from repro.graph.depgraph import DependencyGraph, DependencyKind, GraphEdge
from repro.graph.fragmentation import FragmentationReport, group_fragmentation
from repro.graph.visualize import figure2_stats, to_dot

__all__ = [
    "AnalyzerReport",
    "CriticalPath",
    "DependencyGraph",
    "DependencyKind",
    "Finding",
    "FragmentationReport",
    "GraphEdge",
    "ServiceAnalyzer",
    "critical_path",
    "figure2_stats",
    "group_fragmentation",
    "to_dot",
]
