"""The Service Analyzer (§3.3).

"Service Analyzer investigates the relations between services by reading
the configuration files of software packages and reports incorrect
relations (i.e., circular dependencies and contradicting requirements)."

Findings, ordered by severity:

* ``cycle`` — a strong ordering cycle (unbootable transaction),
* ``ordering-cycle`` — a cycle involving weak edges (systemd will break it
  by dropping a wanted job, possibly surprising its owner),
* ``contradiction`` — mutually impossible declarations (A before B and B
  before A; A requires B while conflicting with it),
* ``dangling`` — requirement references to units that do not exist,
* ``redundant`` — duplicate declarations and requires edges implied by a
  transitive chain (excess declarations are exactly what §2.5.3 says
  developers add "to feel safer").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.depgraph import DependencyGraph, DependencyKind
from repro.initsys.registry import UnitRegistry


@dataclass(frozen=True, slots=True)
class Finding:
    """One analyzer finding.

    Attributes:
        kind: ``cycle`` / ``ordering-cycle`` / ``contradiction`` /
            ``dangling`` / ``redundant``.
        units: The units involved, in a meaningful order.
        detail: Human-readable explanation.
    """

    kind: str
    units: tuple[str, ...]
    detail: str


@dataclass(slots=True)
class AnalyzerReport:
    """All findings of one analyzer run."""

    findings: list[Finding] = field(default_factory=list)

    def of_kind(self, kind: str) -> list[Finding]:
        """Findings filtered by kind."""
        return [f for f in self.findings if f.kind == kind]

    @property
    def has_errors(self) -> bool:
        """Whether any finding makes the boot sequence incorrect."""
        return any(f.kind in ("cycle", "contradiction", "dangling")
                   for f in self.findings)

    def summary(self) -> str:
        """One-line-per-finding report text."""
        if not self.findings:
            return "no findings"
        return "\n".join(f"[{f.kind}] {' -> '.join(f.units)}: {f.detail}"
                         for f in self.findings)


class ServiceAnalyzer:
    """Analyzes a unit registry for incorrect or wasteful declarations."""

    def __init__(self, registry: UnitRegistry):
        self.registry = registry
        self.graph = DependencyGraph(registry)

    def analyze(self) -> AnalyzerReport:
        """Run every check and collect the findings."""
        report = AnalyzerReport()
        self._find_cycles(report)
        self._find_contradictions(report)
        self._find_dangling(report)
        self._find_redundant(report)
        return report

    # -------------------------------------------------------------- checks

    def _ordering_adjacency(self, strong_only: bool) -> dict[str, list[str]]:
        adjacency: dict[str, list[str]] = {name: [] for name in self.graph.node_names}
        for edge in self.graph.edges:
            if not edge.kind.is_ordering:
                continue
            if strong_only and not edge.kind.is_strong:
                continue
            if edge.predecessor in adjacency and edge.successor in adjacency:
                adjacency[edge.predecessor].append(edge.successor)
        return adjacency

    def _find_cycles(self, report: AnalyzerReport) -> None:
        strong_cycles = self._cycles_in(self._ordering_adjacency(strong_only=True))
        for cycle in strong_cycles:
            report.findings.append(Finding(
                kind="cycle", units=tuple(cycle),
                detail="strong ordering cycle; no valid start order exists"))
        strong_nodes = {frozenset(c) for c in strong_cycles}
        for cycle in self._cycles_in(self._ordering_adjacency(strong_only=False)):
            if frozenset(cycle) in strong_nodes:
                continue  # already reported as a hard cycle
            report.findings.append(Finding(
                kind="ordering-cycle", units=tuple(cycle),
                detail="cycle through weak edges; a wanted job will be dropped"))

    def _cycles_in(self, adjacency: dict[str, list[str]]) -> list[list[str]]:
        """Distinct elementary cycles found by DFS (one per back edge set)."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {name: WHITE for name in adjacency}
        parent: dict[str, str] = {}
        cycles: list[list[str]] = []
        seen_sets: set[frozenset[str]] = set()
        for root in adjacency:
            if color[root] != WHITE:
                continue
            stack = [(root, 0)]
            color[root] = GRAY
            while stack:
                node, index = stack[-1]
                children = adjacency[node]
                if index < len(children):
                    stack[-1] = (node, index + 1)
                    child = children[index]
                    if color[child] == GRAY:
                        cycle = [node]
                        walker = node
                        while walker != child:
                            walker = parent[walker]
                            cycle.append(walker)
                        cycle.reverse()
                        key = frozenset(cycle)
                        if key not in seen_sets:
                            seen_sets.add(key)
                            cycles.append(cycle)
                    elif color[child] == WHITE:
                        color[child] = GRAY
                        parent[child] = node
                        stack.append((child, 0))
                else:
                    color[node] = BLACK
                    stack.pop()
        return cycles

    def _find_contradictions(self, report: AnalyzerReport) -> None:
        # Only strong orderings contradict; mutual Wants is merely an
        # ordering cycle the transaction can break.
        ordering_pairs: dict[tuple[str, str], list[DependencyKind]] = {}
        for edge in self.graph.edges:
            if edge.kind.is_strong:
                ordering_pairs.setdefault((edge.predecessor, edge.successor),
                                          []).append(edge.kind)
        for (pred, succ), kinds in ordering_pairs.items():
            if (succ, pred) in ordering_pairs and pred < succ:
                report.findings.append(Finding(
                    kind="contradiction", units=(pred, succ),
                    detail=(f"both orders declared: {pred} before {succ} "
                            f"and {succ} before {pred}")))
        for edge in self.graph.edges_of_kind(DependencyKind.CONFLICTS):
            declaring = self.registry.get(edge.declared_by)
            if edge.successor in declaring.requires or edge.successor in declaring.wants:
                report.findings.append(Finding(
                    kind="contradiction", units=(edge.declared_by, edge.successor),
                    detail=(f"{edge.declared_by} both pulls in and conflicts "
                            f"with {edge.successor}")))

    def _find_dangling(self, report: AnalyzerReport) -> None:
        for referrer, missing in sorted(self.registry.dangling_references().items()):
            for name in missing:
                report.findings.append(Finding(
                    kind="dangling", units=(referrer, name),
                    detail=f"{referrer} references missing unit {name}"))

    def _find_redundant(self, report: AnalyzerReport) -> None:
        # Duplicate declarations within one unit.
        for unit in self.registry:
            for attr in ("requires", "wants", "before", "after"):
                values = getattr(unit, attr)
                duplicates = {v for v in values if values.count(v) > 1}
                for dup in sorted(duplicates):
                    report.findings.append(Finding(
                        kind="redundant", units=(unit.name, dup),
                        detail=f"{unit.name} declares {attr}={dup} more than once"))
        # Transitively implied requires: A requires B, B requires C, and A
        # also requires C directly.
        requires_map = {u.name: set(u.requires) for u in self.registry}
        for unit in self.registry:
            direct = requires_map[unit.name]
            for dep in sorted(direct):
                reachable = self._reachable_requires(dep, requires_map)
                implied = direct & reachable
                for extra in sorted(implied):
                    report.findings.append(Finding(
                        kind="redundant", units=(unit.name, extra),
                        detail=(f"{unit.name} requires {extra} directly, but it "
                                f"is already implied through {dep}")))

    def _reachable_requires(self, start: str,
                            requires_map: dict[str, set[str]]) -> set[str]:
        seen: set[str] = set()
        stack = [start]
        while stack:
            name = stack.pop()
            for dep in requires_map.get(name, ()):  # missing units: no expansion
                if dep not in seen:
                    seen.add(dep)
                    stack.append(dep)
        return seen
