"""Critical-path analysis: the longest dependency chain to boot completion.

Gives the analytical lower bound on user-space boot time with unlimited
cores: no in-order scheme can complete before the costliest chain of
strong dependencies finishes.  Used by the reports to show how close BB
gets to the theoretical floor, and by DESIGN ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import AnalysisError
from repro.graph.depgraph import DependencyGraph
from repro.hw.storage import AccessPattern, StorageDevice
from repro.initsys.registry import UnitRegistry
from repro.initsys.units import Unit


def estimate_start_ns(unit: Unit, storage: StorageDevice | None = None) -> int:
    """Serial duration estimate of one unit's start job.

    Includes fork, exec image read (if a storage model is supplied),
    dynamic linking, initialization CPU, and hardware settle; RCU waits
    are excluded (they depend on run-time contention).
    """
    cost = unit.cost
    total = cost.fork_ns * cost.processes + cost.init_cpu_ns + cost.hw_settle_ns
    if not unit.static_build:
        total += cost.dynamic_link_ns
    if storage is not None and cost.exec_bytes:
        total += storage.read_time_ns(cost.exec_bytes, AccessPattern.RANDOM)
    total += cost.ready_extra_ns
    return total


@dataclass(frozen=True, slots=True)
class CriticalPath:
    """The costliest strong chain ending at a completion unit.

    Attributes:
        units: Chain from the earliest ancestor to the completion unit.
        length_ns: Sum of the chain's estimated start durations.
    """

    units: tuple[str, ...]
    length_ns: int


def critical_path(registry: UnitRegistry, completion_units: Iterable[str],
                  storage: StorageDevice | None = None,
                  duration_fn: Callable[[Unit], int] | None = None) -> CriticalPath:
    """Longest-path over the strong ordering edges to any completion unit.

    Args:
        registry: The unit set.
        completion_units: The boot-completion definition.
        storage: Optional storage model for exec-read estimates.
        duration_fn: Override for the per-unit duration estimate.

    Raises:
        AnalysisError: If the strong ordering graph is cyclic or a
            completion unit is unknown.
    """
    goals = list(completion_units)
    for goal in goals:
        if goal not in registry:
            raise AnalysisError(f"completion unit {goal!r} not in registry")
    if duration_fn is None:
        def duration_fn(unit: Unit) -> int:
            return estimate_start_ns(unit, storage)

    graph = DependencyGraph(registry)
    # Durations are filled in lazily, only for units actually reachable
    # from the goals — large ingested registries with small goal sets
    # must not pay storage estimates for dead units.
    durations: dict[str, int] = {}

    def strong_predecessors(name: str) -> list[str]:
        return [e.predecessor for e in graph.incoming(name)
                if e.kind.is_strong and e.predecessor in registry]

    # Longest path via an iterative post-order worklist over strong
    # predecessors (a recursive DFS overflows on 1000+-unit chains).
    # ``on_path`` holds the nodes whose post-order frame is still
    # pending, i.e. the current DFS spine: popping an unexpanded node
    # already on the spine means a strong ordering cycle.
    best: dict[str, tuple[int, tuple[str, ...]]] = {}
    on_path: set[str] = set()
    stack: list[tuple[str, bool]] = [(goal, False) for goal in reversed(goals)]
    while stack:
        name, expanded = stack.pop()
        if expanded:
            on_path.discard(name)
            if name not in durations:
                durations[name] = duration_fn(registry.get(name))
            predecessors = strong_predecessors(name)
            if predecessors:
                tail_len, tail_units = max((best[p] for p in predecessors),
                                           key=lambda item: (item[0], item[1]))
                best[name] = (tail_len + durations[name],
                              tail_units + (name,))
            else:
                best[name] = (durations[name], (name,))
            continue
        if name in best:
            continue
        if name in on_path:
            raise AnalysisError(f"strong ordering cycle through {name!r}")
        on_path.add(name)
        stack.append((name, True))
        # Reversed push so predecessors are visited in declaration
        # order, exactly like the recursive DFS this replaces.
        for predecessor in reversed(strong_predecessors(name)):
            if predecessor not in best:
                stack.append((predecessor, False))

    length, units = max((best[goal] for goal in goals),
                        key=lambda item: (item[0], item[1]))
    return CriticalPath(units=units, length_ns=length)
