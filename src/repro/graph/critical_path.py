"""Critical-path analysis: the longest dependency chain to boot completion.

Gives the analytical lower bound on user-space boot time with unlimited
cores: no in-order scheme can complete before the costliest chain of
strong dependencies finishes.  Used by the reports to show how close BB
gets to the theoretical floor, and by DESIGN ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import AnalysisError
from repro.graph.depgraph import DependencyGraph
from repro.hw.storage import AccessPattern, StorageDevice
from repro.initsys.registry import UnitRegistry
from repro.initsys.units import Unit


def estimate_start_ns(unit: Unit, storage: StorageDevice | None = None) -> int:
    """Serial duration estimate of one unit's start job.

    Includes fork, exec image read (if a storage model is supplied),
    dynamic linking, initialization CPU, and hardware settle; RCU waits
    are excluded (they depend on run-time contention).
    """
    cost = unit.cost
    total = cost.fork_ns * cost.processes + cost.init_cpu_ns + cost.hw_settle_ns
    if not unit.static_build:
        total += cost.dynamic_link_ns
    if storage is not None and cost.exec_bytes:
        total += storage.read_time_ns(cost.exec_bytes, AccessPattern.RANDOM)
    total += cost.ready_extra_ns
    return total


@dataclass(frozen=True, slots=True)
class CriticalPath:
    """The costliest strong chain ending at a completion unit.

    Attributes:
        units: Chain from the earliest ancestor to the completion unit.
        length_ns: Sum of the chain's estimated start durations.
    """

    units: tuple[str, ...]
    length_ns: int


def critical_path(registry: UnitRegistry, completion_units: Iterable[str],
                  storage: StorageDevice | None = None,
                  duration_fn: Callable[[Unit], int] | None = None) -> CriticalPath:
    """Longest-path over the strong ordering edges to any completion unit.

    Args:
        registry: The unit set.
        completion_units: The boot-completion definition.
        storage: Optional storage model for exec-read estimates.
        duration_fn: Override for the per-unit duration estimate.

    Raises:
        AnalysisError: If the strong ordering graph is cyclic or a
            completion unit is unknown.
    """
    goals = list(completion_units)
    for goal in goals:
        if goal not in registry:
            raise AnalysisError(f"completion unit {goal!r} not in registry")
    if duration_fn is None:
        def duration_fn(unit: Unit) -> int:
            return estimate_start_ns(unit, storage)

    graph = DependencyGraph(registry)
    durations = {u.name: duration_fn(u) for u in registry}

    # Longest path via memoized DFS over strong predecessors.
    best: dict[str, tuple[int, tuple[str, ...]]] = {}
    in_progress: set[str] = set()

    def longest_to(name: str) -> tuple[int, tuple[str, ...]]:
        if name in best:
            return best[name]
        if name in in_progress:
            raise AnalysisError(f"strong ordering cycle through {name!r}")
        in_progress.add(name)
        predecessors = [e.predecessor for e in graph.incoming(name)
                        if e.kind.is_strong and e.predecessor in registry]
        if predecessors:
            tail_len, tail_units = max((longest_to(p) for p in predecessors),
                                       key=lambda item: (item[0], item[1]))
            result = (tail_len + durations[name], tail_units + (name,))
        else:
            result = (durations[name], (name,))
        in_progress.discard(name)
        best[name] = result
        return result

    length, units = max((longest_to(goal) for goal in goals),
                        key=lambda item: (item[0], item[1]))
    return CriticalPath(units=units, length_ns=length)
