"""A typed dependency graph over a unit registry."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

from repro.initsys.registry import UnitRegistry


class DependencyKind(enum.Enum):
    """Declared relationship kinds (the edge colours of Fig. 2)."""

    REQUIRES = "requires"  # strong: launch B after A is ready (red)
    WANTS = "wants"  # weak: launch B not before launching A (green)
    BEFORE = "before"  # ordering declared by the predecessor
    AFTER = "after"  # ordering declared by the successor
    CONFLICTS = "conflicts"

    @property
    def is_ordering(self) -> bool:
        """Whether the kind constrains launch order."""
        return self is not DependencyKind.CONFLICTS

    @property
    def is_strong(self) -> bool:
        """Whether the successor must wait for predecessor readiness."""
        return self in (DependencyKind.REQUIRES, DependencyKind.BEFORE,
                        DependencyKind.AFTER)


@dataclass(frozen=True, slots=True)
class GraphEdge:
    """``successor`` declared a ``kind`` relationship on ``predecessor``.

    For every kind the edge is normalized so that ``predecessor`` is the
    unit that must act first (for CONFLICTS the orientation is the
    declaring unit first).
    """

    predecessor: str
    successor: str
    kind: DependencyKind
    declared_by: str


class DependencyGraph:
    """All declared relationships of a registry, with adjacency queries."""

    _EMPTY: tuple[GraphEdge, ...] = ()

    def __init__(self, registry: UnitRegistry):
        self.registry = registry
        self.edges: list[GraphEdge] = []
        out: dict[str, list[GraphEdge]] = {}
        inc: dict[str, list[GraphEdge]] = {}
        for unit in registry:
            for dep in unit.requires:
                self._add(out, inc,
                          GraphEdge(dep, unit.name, DependencyKind.REQUIRES,
                                    declared_by=unit.name))
            for dep in unit.wants:
                self._add(out, inc,
                          GraphEdge(dep, unit.name, DependencyKind.WANTS,
                                    declared_by=unit.name))
            for dep in unit.after:
                self._add(out, inc,
                          GraphEdge(dep, unit.name, DependencyKind.AFTER,
                                    declared_by=unit.name))
            for succ in unit.before:
                self._add(out, inc,
                          GraphEdge(unit.name, succ, DependencyKind.BEFORE,
                                    declared_by=unit.name))
            for enemy in unit.conflicts:
                self._add(out, inc,
                          GraphEdge(unit.name, enemy, DependencyKind.CONFLICTS,
                                    declared_by=unit.name))
        # The edge set is fixed after construction; freeze the adjacency
        # lists into tuples so lookups can hand them out without copying.
        self._out: dict[str, tuple[GraphEdge, ...]] = {
            name: tuple(edges) for name, edges in out.items()}
        self._in: dict[str, tuple[GraphEdge, ...]] = {
            name: tuple(edges) for name, edges in inc.items()}

    def _add(self, out: dict[str, list[GraphEdge]],
             inc: dict[str, list[GraphEdge]], edge: GraphEdge) -> None:
        self.edges.append(edge)
        out.setdefault(edge.predecessor, []).append(edge)
        inc.setdefault(edge.successor, []).append(edge)

    @property
    def node_names(self) -> list[str]:
        """All unit names in the underlying registry."""
        return self.registry.names

    def outgoing(self, name: str) -> tuple[GraphEdge, ...]:
        """Edges whose predecessor is ``name`` (cached, immutable)."""
        return self._out.get(name, self._EMPTY)

    def incoming(self, name: str) -> tuple[GraphEdge, ...]:
        """Edges whose successor is ``name`` (cached, immutable)."""
        return self._in.get(name, self._EMPTY)

    def edges_of_kind(self, *kinds: DependencyKind) -> list[GraphEdge]:
        """Edges filtered by kind."""
        wanted = set(kinds)
        return [e for e in self.edges if e.kind in wanted]

    def ordering_successors(self, name: str) -> list[str]:
        """Units that must wait (in some way) for ``name``."""
        return [e.successor for e in self.outgoing(name) if e.kind.is_ordering]

    def ordering_predecessors(self, name: str) -> list[str]:
        """Units ``name`` waits for (in some way)."""
        return [e.predecessor for e in self.incoming(name) if e.kind.is_ordering]

    def strong_closure(self, roots: Iterable[str]) -> set[str]:
        """Transitive closure of REQUIRES predecessors from ``roots``.

        This is exactly how the BB Group Isolator grows the BB Group from
        the boot-completion definition: the services a critical unit
        *requires*, recursively — ordering declared by outsiders is
        ignored.
        """
        closure: set[str] = set()
        stack = [r for r in roots]
        while stack:
            name = stack.pop()
            if name in closure:
                continue
            closure.add(name)
            if name in self.registry:
                stack.extend(self.registry.get(name).requires)
        return closure

    def __len__(self) -> int:
        return len(self.edges)
