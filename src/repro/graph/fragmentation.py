"""The Fig. 3 group-fragmentation model.

Services are organized in groups aligned to developer teams; a group's
services are meant to launch together.  A cross-group ordering edge can
force a group to be *split*: part of it must launch, then another group's
services, then the rest.  Fig. 3 shows a single new service introducing a
cross-group cycle that partitions group b.

The metric implemented here: produce a deterministic topological order of
the ordering graph that *greedily prefers to stay in the current group*,
then count, per group, the number of contiguous runs its members occupy.
A group that can launch together scores 1; every additional fragment
signals lost batching (and, in the limit, lost parallelism inside the
launch window).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.graph.depgraph import DependencyGraph
from repro.initsys.registry import UnitRegistry


@dataclass(frozen=True, slots=True)
class FragmentationReport:
    """Fragmentation of each group under the current dependency set.

    Attributes:
        order: The group-preferring topological order used.
        fragments: Group name to number of contiguous runs (1 = intact).
    """

    order: tuple[str, ...]
    fragments: dict[str, int]

    @property
    def total_fragments(self) -> int:
        """Sum of fragments over all groups."""
        return sum(self.fragments.values())

    def split_groups(self) -> list[str]:
        """Groups that cannot launch as one contiguous batch."""
        return sorted(g for g, count in self.fragments.items() if count > 1)


def group_fragmentation(registry: UnitRegistry,
                        groups: dict[str, str]) -> FragmentationReport:
    """Compute group fragmentation for a unit set.

    Args:
        registry: The unit set.
        groups: Mapping of unit name to group label; unmapped units form
            the implicit group ``"<ungrouped>"``.

    Raises:
        AnalysisError: If the ordering graph is cyclic (fragmentation is
            then undefined; fix the cycle first — see the Service
            Analyzer).
    """
    graph = DependencyGraph(registry)
    names = registry.names
    group_of = {name: groups.get(name, "<ungrouped>") for name in names}

    indegree = {name: 0 for name in names}
    successors: dict[str, list[str]] = {name: [] for name in names}
    for edge in graph.edges:
        if not edge.kind.is_ordering:
            continue
        if edge.predecessor in indegree and edge.successor in indegree:
            successors[edge.predecessor].append(edge.successor)
            indegree[edge.successor] += 1

    # Kahn's algorithm with group-affine tie-breaking: among ready units,
    # prefer ones in the group of the most recently emitted unit, then
    # registry order (deterministic).
    ready = [name for name in names if indegree[name] == 0]
    order: list[str] = []
    current_group: str | None = None
    position = {name: i for i, name in enumerate(names)}
    while ready:
        same_group = [n for n in ready if group_of[n] == current_group]
        pool = same_group if same_group else ready
        chosen = min(pool, key=lambda n: position[n])
        ready.remove(chosen)
        order.append(chosen)
        current_group = group_of[chosen]
        for succ in successors[chosen]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if len(order) != len(names):
        raise AnalysisError("ordering graph is cyclic; run ServiceAnalyzer")

    fragments: dict[str, int] = {}
    previous_group: str | None = None
    for name in order:
        group = group_of[name]
        if group != previous_group:
            fragments[group] = fragments.get(group, 0) + 1
        previous_group = group
    return FragmentationReport(order=tuple(order), fragments=fragments)
