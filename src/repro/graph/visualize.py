"""Graph export and the Fig. 2 statistics.

``to_dot`` renders the dependency graph in Graphviz DOT with the paper's
colour convention — red for strong dependencies ("launch B after A is
ready"), green for weak ones ("launch B not before launching A") — so the
output of the workload generator can be compared visually with Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.depgraph import DependencyGraph, DependencyKind
from repro.initsys.registry import UnitRegistry
from repro.initsys.units import UnitType

#: Edge colour per dependency kind (Fig. 2's legend, extended).
EDGE_COLORS = {
    DependencyKind.REQUIRES: "red",
    DependencyKind.WANTS: "green",
    DependencyKind.AFTER: "blue",
    DependencyKind.BEFORE: "purple",
    DependencyKind.CONFLICTS: "orange",
}


@dataclass(frozen=True, slots=True)
class Figure2Stats:
    """Aggregate statistics of a service dependency graph.

    Attributes:
        services: Number of service-type units.
        units: Number of units of any type.
        edges: Total declared relationships.
        strong_edges: REQUIRES edges (red lines of Fig. 2).
        weak_edges: WANTS edges (green lines).
        ordering_edges: BEFORE + AFTER edges (other colours).
        max_fan_in: Largest number of incoming ordering edges of any unit.
        max_fan_out: Largest number of outgoing ordering edges of any unit.
        avg_degree: Mean ordering degree (in + out) per unit.
    """

    services: int
    units: int
    edges: int
    strong_edges: int
    weak_edges: int
    ordering_edges: int
    max_fan_in: int
    max_fan_out: int
    avg_degree: float


def figure2_stats(registry: UnitRegistry) -> Figure2Stats:
    """Compute the Fig. 2-style statistics of a unit set."""
    graph = DependencyGraph(registry)
    strong = len(graph.edges_of_kind(DependencyKind.REQUIRES))
    weak = len(graph.edges_of_kind(DependencyKind.WANTS))
    ordering = len(graph.edges_of_kind(DependencyKind.BEFORE, DependencyKind.AFTER))
    fan_in = max((len(graph.incoming(n)) for n in registry.names), default=0)
    fan_out = max((len(graph.outgoing(n)) for n in registry.names), default=0)
    unit_count = len(registry)
    degree_total = sum(len(graph.incoming(n)) + len(graph.outgoing(n))
                       for n in registry.names)
    return Figure2Stats(
        services=sum(1 for u in registry if u.unit_type is UnitType.SERVICE),
        units=unit_count,
        edges=len(graph),
        strong_edges=strong,
        weak_edges=weak,
        ordering_edges=ordering,
        max_fan_in=fan_in,
        max_fan_out=fan_out,
        avg_degree=degree_total / unit_count if unit_count else 0.0,
    )


def to_dot(registry: UnitRegistry, title: str = "service-dependencies",
           highlight: set[str] | None = None) -> str:
    """Render the dependency graph as Graphviz DOT text.

    Args:
        registry: The unit set.
        title: Graph name.
        highlight: Unit names to draw filled (e.g. the BB Group).
    """
    graph = DependencyGraph(registry)
    highlight = highlight or set()
    lines = [f'digraph "{title}" {{',
             "  rankdir=LR;",
             "  node [shape=box, fontsize=10];"]
    for unit in registry:
        attrs = [f'label="{unit.name}"']
        if unit.name in highlight:
            attrs.append('style=filled')
            attrs.append('fillcolor=lightyellow')
        if unit.unit_type is UnitType.TARGET:
            attrs.append("shape=hexagon")
        elif unit.unit_type in (UnitType.MOUNT, UnitType.SOCKET):
            attrs.append("shape=ellipse")
        lines.append(f'  "{unit.name}" [{", ".join(attrs)}];')
    for edge in graph.edges:
        color = EDGE_COLORS[edge.kind]
        lines.append(f'  "{edge.predecessor}" -> "{edge.successor}" '
                     f'[color={color}, label="{edge.kind.value}", fontsize=8];')
    lines.append("}")
    return "\n".join(lines)
