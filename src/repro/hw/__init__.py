"""Hardware models: storage, DRAM, peripherals, and board presets.

The numbers shipped in :mod:`repro.hw.presets` are the paper's own:

* UE48H6200 (the evaluation TV): 4 Cortex-A9 cores, 1 GiB DRAM, 8 GiB eMMC
  with 117 MiB/s sequential / 37 MiB/s random read (§4),
* Samsung SSD 850 Evo: 515 / 379 MiB/s (§4),
* Seagate Barracuda 3TB: 165 / 65 MB/s (§4),
* Galaxy S6 UFS 2.0: ~300 MiB/s sequential read (§2.1/§2.3) and
  35 MiB/s 8-core decompression throughput (§2.3).
"""

from repro.hw.memory import DRAMModel
from repro.hw.peripherals import Peripheral, PeripheralClass
from repro.hw.platform import HardwarePlatform
from repro.hw.storage import AccessPattern, StorageDevice

__all__ = [
    "AccessPattern",
    "DRAMModel",
    "HardwarePlatform",
    "Peripheral",
    "PeripheralClass",
    "StorageDevice",
]
