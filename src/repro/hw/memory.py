"""DRAM model and the memory-initialization cost that BB defers.

On the UE48H6200 the kernel's full memory initialization (struct-page
setup, zeroing, zone init) costs 370 ms for 1 GiB; BB's Core Engine
initializes only the region required to start user space (110 ms) and
defers the remainder until after boot completion (Fig. 6(a)).  The model
scales both figures linearly with DRAM size, which is why "modern
large-memory computing devices ... may take too much time" (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError
from repro.quantities import BYTES_PER_GIB, msec


@dataclass(frozen=True, slots=True)
class DRAMModel:
    """DRAM size and its kernel-initialization cost model.

    Attributes:
        size_bytes: Installed DRAM.
        full_init_ns_per_gib: Kernel time to initialize 1 GiB completely.
        early_fraction: Fraction of DRAM that must be initialized before
            the first user process can start (the BB deferred-meminit
            boundary).  Calibrated so 1 GiB gives 110 ms early / 370 ms full.
    """

    size_bytes: int
    full_init_ns_per_gib: int = msec(370)
    early_fraction: float = 110 / 370

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise HardwareError(f"DRAM size must be positive: {self.size_bytes}")
        if not 0.0 < self.early_fraction <= 1.0:
            raise HardwareError(
                f"early_fraction must be in (0, 1]: {self.early_fraction}")
        if self.full_init_ns_per_gib <= 0:
            raise HardwareError("full_init_ns_per_gib must be positive")

    @property
    def gib(self) -> float:
        """DRAM size in GiB."""
        return self.size_bytes / BYTES_PER_GIB

    def full_init_ns(self) -> int:
        """Time to initialize all of DRAM during kernel boot (no BB)."""
        return round(self.gib * self.full_init_ns_per_gib)

    def early_init_ns(self) -> int:
        """Time to initialize only the boot-required region (BB)."""
        return round(self.full_init_ns() * self.early_fraction)

    def deferred_init_ns(self) -> int:
        """Remaining initialization performed after boot completion (BB)."""
        return self.full_init_ns() - self.early_init_ns()
