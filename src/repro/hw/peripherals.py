"""Peripheral hardware components and their initialization costs.

A TV carries the broadcast path (tuner, demultiplexer, video/audio
decoders, display panel), HDMI inputs, USB, and network interfaces.  Each
peripheral needs a driver (a kernel initcall or module, see
:mod:`repro.kernel.initcalls`) and a hardware bring-up time; BB's
On-demand Modularizer defers the non-boot-critical ones.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import HardwareError


class PeripheralClass(enum.Enum):
    """Broad peripheral category, used to decide boot criticality."""

    BROADCAST = "broadcast"  # tuner, demux, video/audio path
    DISPLAY = "display"
    INPUT = "input"  # remote-control receiver
    CONNECTIVITY = "connectivity"  # network, Bluetooth
    EXPANSION = "expansion"  # USB, SD card
    PLATFORM = "platform"  # clocks, power domains, buses


@dataclass(frozen=True, slots=True)
class Peripheral:
    """A hardware component attached to the board.

    Attributes:
        name: Component name, e.g. ``"tuner"``.
        klass: Category; BROADCAST/DISPLAY/INPUT are boot critical on a TV.
        hw_init_ns: Hardware bring-up time once its driver runs.
        driver: Name of the kernel driver that services it.
    """

    name: str
    klass: PeripheralClass
    hw_init_ns: int
    driver: str

    def __post_init__(self) -> None:
        if self.hw_init_ns < 0:
            raise HardwareError(f"{self.name}: negative init time")

    @property
    def boot_critical_for_tv(self) -> bool:
        """Whether a TV needs this peripheral before boot completion.

        Boot completion for a TV is "channel video/audio playing and remote
        control responding" (§2), which needs the broadcast path, the
        display, and the input receiver — not USB or networking.
        """
        return self.klass in (PeripheralClass.BROADCAST, PeripheralClass.DISPLAY,
                              PeripheralClass.INPUT, PeripheralClass.PLATFORM)
