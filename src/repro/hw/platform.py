"""The hardware platform: everything the boot sequence runs on."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import HardwareError
from repro.hw.memory import DRAMModel
from repro.hw.peripherals import Peripheral
from repro.hw.storage import StorageDevice

if TYPE_CHECKING:
    from repro.sim.engine import Simulator


@dataclass(slots=True)
class HardwarePlatform:
    """A board description: CPU, DRAM, storage, and peripherals.

    Attributes:
        name: Board name, e.g. ``"UE48H6200"``.
        cpu_cores: Number of application-processor cores.
        dram: DRAM model (size and init cost).
        storage: Primary boot storage device.
        peripherals: Components attached to the board, keyed by name.
        decompress_bps: Aggregate decompression throughput with all cores
            (the §2.3 figure; 35 MiB/s for the 8-core Galaxy S6).
    """

    name: str
    cpu_cores: int
    dram: DRAMModel
    storage: StorageDevice
    peripherals: dict[str, Peripheral] = field(default_factory=dict)
    decompress_bps: int = 35 * (1 << 20)

    def __post_init__(self) -> None:
        if self.cpu_cores < 1:
            raise HardwareError(f"{self.name}: needs at least one CPU core")
        if self.decompress_bps <= 0:
            raise HardwareError(f"{self.name}: decompression throughput must be positive")

    def attach(self, engine: "Simulator") -> "HardwarePlatform":
        """Bind the platform's devices to a simulator."""
        self.storage.attach(engine)
        return self

    def peripheral(self, name: str) -> Peripheral:
        """Look up a peripheral by name.

        Raises:
            HardwareError: If the board has no such peripheral.
        """
        try:
            return self.peripherals[name]
        except KeyError:
            raise HardwareError(f"{self.name}: no peripheral {name!r}") from None

    def boot_critical_peripherals(self) -> list[Peripheral]:
        """Peripherals a TV must bring up before boot completion."""
        return [p for p in self.peripherals.values() if p.boot_critical_for_tv]

    def deferrable_peripherals(self) -> list[Peripheral]:
        """Peripherals whose drivers BB may defer past boot completion."""
        return [p for p in self.peripherals.values() if not p.boot_critical_for_tv]
