"""Board and storage presets with the paper's published figures.

Each preset is a factory (fresh objects each call, so simulations never
share mutable device state).
"""

from __future__ import annotations

from repro.hw.memory import DRAMModel
from repro.hw.peripherals import Peripheral, PeripheralClass
from repro.hw.platform import HardwarePlatform
from repro.hw.storage import StorageDevice
from repro.quantities import GiB, MiB, msec, usec


def emmc_ue48h6200() -> StorageDevice:
    """The TV's 8 GiB eMMC: 117 MiB/s sequential, 37 MiB/s random read (§4)."""
    return StorageDevice("eMMC", seq_read_bps=MiB(117), rand_read_bps=MiB(37),
                         capacity_bytes=GiB(8))


def ssd_850_evo() -> StorageDevice:
    """Samsung SSD 850 Evo 500 GB: 515 / 379 MiB/s (§4)."""
    return StorageDevice("SSD-850-Evo", seq_read_bps=MiB(515), rand_read_bps=MiB(379),
                         request_latency_ns=usec(40), capacity_bytes=GiB(500))


def hdd_barracuda() -> StorageDevice:
    """Seagate Barracuda 3TB: 165 / 65 MB/s (§4; decimal MB in the paper).

    We convert the decimal figures to bytes/second exactly (1 MB = 10^6 B).
    """
    return StorageDevice("HDD-Barracuda", seq_read_bps=165 * 10**6,
                         rand_read_bps=65 * 10**6,
                         request_latency_ns=usec(8_000),  # seek-dominated
                         capacity_bytes=3 * 10**12)


def ufs_galaxy_s6() -> StorageDevice:
    """Galaxy S6 UFS 2.0 internal storage: ~300 MiB/s sequential read (§2.1)."""
    return StorageDevice("UFS-2.0", seq_read_bps=MiB(300), rand_read_bps=MiB(120),
                         request_latency_ns=usec(50), capacity_bytes=GiB(32))


def _tv_peripherals() -> dict[str, Peripheral]:
    components = [
        Peripheral("tuner", PeripheralClass.BROADCAST, hw_init_ns=msec(60), driver="tuner_drv"),
        Peripheral("demux", PeripheralClass.BROADCAST, hw_init_ns=msec(25), driver="demux_drv"),
        Peripheral("video-decoder", PeripheralClass.BROADCAST, hw_init_ns=msec(35),
                   driver="vdec_drv"),
        Peripheral("audio-decoder", PeripheralClass.BROADCAST, hw_init_ns=msec(20),
                   driver="adec_drv"),
        Peripheral("display-panel", PeripheralClass.DISPLAY, hw_init_ns=msec(45),
                   driver="panel_drv"),
        Peripheral("remote-receiver", PeripheralClass.INPUT, hw_init_ns=msec(8),
                   driver="ir_drv"),
        Peripheral("hdmi", PeripheralClass.EXPANSION, hw_init_ns=msec(30), driver="hdmi_drv"),
        Peripheral("usb", PeripheralClass.EXPANSION, hw_init_ns=msec(40), driver="usb_drv"),
        Peripheral("ethernet", PeripheralClass.CONNECTIVITY, hw_init_ns=msec(35),
                   driver="eth_drv"),
        Peripheral("wifi", PeripheralClass.CONNECTIVITY, hw_init_ns=msec(55), driver="wifi_drv"),
        Peripheral("bluetooth", PeripheralClass.CONNECTIVITY, hw_init_ns=msec(30),
                   driver="bt_drv"),
        Peripheral("power-domains", PeripheralClass.PLATFORM, hw_init_ns=msec(10),
                   driver="pm_drv"),
    ]
    return {p.name: p for p in components}


def ue48h6200() -> HardwarePlatform:
    """The evaluation board: 2014 Samsung UHD Smart TV UE48H6200 (§4).

    Four Cortex-A9 cores, 1 GiB DRAM, 8 GiB eMMC.
    """
    return HardwarePlatform(
        name="UE48H6200",
        cpu_cores=4,
        dram=DRAMModel(size_bytes=GiB(1)),
        storage=emmc_ue48h6200(),
        peripherals=_tv_peripherals(),
    )


def nx300() -> HardwarePlatform:
    """NX300-like Tizen camera (§2.1): dual core, 512 MiB DRAM, small flash."""
    peripherals = {
        "lens": Peripheral("lens", PeripheralClass.BROADCAST, hw_init_ns=msec(120),
                           driver="lens_drv"),
        "sensor": Peripheral("sensor", PeripheralClass.BROADCAST, hw_init_ns=msec(80),
                             driver="sensor_drv"),
        "display-panel": Peripheral("display-panel", PeripheralClass.DISPLAY,
                                    hw_init_ns=msec(40), driver="panel_drv"),
        "shutter-button": Peripheral("shutter-button", PeripheralClass.INPUT,
                                     hw_init_ns=msec(5), driver="key_drv"),
        "wifi": Peripheral("wifi", PeripheralClass.CONNECTIVITY, hw_init_ns=msec(55),
                           driver="wifi_drv"),
        "usb": Peripheral("usb", PeripheralClass.EXPANSION, hw_init_ns=msec(40),
                          driver="usb_drv"),
    }
    return HardwarePlatform(
        name="NX300",
        cpu_cores=2,
        dram=DRAMModel(size_bytes=MiB(512)),
        storage=StorageDevice("eMMC-camera", seq_read_bps=MiB(90), rand_read_bps=MiB(25),
                              capacity_bytes=GiB(4)),
        peripherals=peripherals,
    )


def galaxy_s6_like() -> HardwarePlatform:
    """Galaxy-S6-like phone (§2.1/§2.3): 8 cores, 3 GiB DRAM, UFS 2.0.

    Used by the snapshot-booting and compression background models: reading
    a 3 GiB hibernation image at ~300 MiB/s costs ~10 s, and 8-core
    decompression reaches only 35 MiB/s.
    """
    peripherals = {
        "display-panel": Peripheral("display-panel", PeripheralClass.DISPLAY,
                                    hw_init_ns=msec(50), driver="panel_drv"),
        "touchscreen": Peripheral("touchscreen", PeripheralClass.INPUT,
                                  hw_init_ns=msec(15), driver="touch_drv"),
        "modem": Peripheral("modem", PeripheralClass.BROADCAST, hw_init_ns=msec(200),
                            driver="modem_drv"),
        "wifi": Peripheral("wifi", PeripheralClass.CONNECTIVITY, hw_init_ns=msec(55),
                           driver="wifi_drv"),
        "usb": Peripheral("usb", PeripheralClass.EXPANSION, hw_init_ns=msec(40),
                          driver="usb_drv"),
    }
    return HardwarePlatform(
        name="Galaxy-S6-like",
        cpu_cores=8,
        dram=DRAMModel(size_bytes=GiB(3)),
        storage=ufs_galaxy_s6(),
        peripherals=peripherals,
        decompress_bps=MiB(35),
    )
