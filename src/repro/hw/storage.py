"""Block-storage device model.

A device is characterized by sequential and random read/write throughput
plus a fixed per-request latency.  Requests are serialized through a
simulation mutex — a single flash channel — so concurrent readers queue,
which matters when many services read their binaries at once during boot.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable

from repro.errors import HardwareError
from repro.quantities import transfer_time_ns, usec
from repro.sim.process import Timeout
from repro.sim.sync import PriorityMutex

if TYPE_CHECKING:
    from repro.sim.engine import Simulator
    from repro.sim.process import ProcessGenerator


class AccessPattern(enum.Enum):
    """Access pattern of a storage request; selects the throughput figure."""

    SEQUENTIAL = "sequential"
    RANDOM = "random"


class StorageDevice:
    """A storage device with published throughput figures.

    Args:
        name: Device label, e.g. ``"eMMC"``.
        seq_read_bps: Sequential read throughput in bytes/second.
        rand_read_bps: Random read throughput in bytes/second.
        seq_write_bps: Sequential write throughput; defaults to half the
            sequential read figure (typical for consumer eMMC).
        rand_write_bps: Random write throughput; defaults to half random read.
        request_latency_ns: Fixed per-request setup latency.
        capacity_bytes: Device capacity; reads beyond it are rejected.
    """

    def __init__(self, name: str, seq_read_bps: int, rand_read_bps: int,
                 seq_write_bps: int | None = None,
                 rand_write_bps: int | None = None,
                 request_latency_ns: int = usec(100),
                 capacity_bytes: int | None = None):
        if seq_read_bps <= 0 or rand_read_bps <= 0:
            raise HardwareError(f"{name}: throughput must be positive")
        self.name = name
        self.seq_read_bps = seq_read_bps
        self.rand_read_bps = rand_read_bps
        self.seq_write_bps = seq_write_bps if seq_write_bps is not None else seq_read_bps // 2
        self.rand_write_bps = rand_write_bps if rand_write_bps is not None else rand_read_bps // 2
        if self.seq_write_bps <= 0 or self.rand_write_bps <= 0:
            raise HardwareError(f"{name}: write throughput must be positive")
        self.request_latency_ns = request_latency_ns
        self.capacity_bytes = capacity_bytes
        self._channel: PriorityMutex | None = None
        self.bytes_read = 0
        self.bytes_written = 0
        self.requests = 0
        # Fault hook: called once per request with (nbytes, is_write),
        # returns extra nanoseconds the device stalls (spike, firmware
        # retry).  The stall happens while the channel is held, so queued
        # requests feel it too.  See repro.faults.
        self.fault_hook: Callable[[int, bool], int] | None = None

    def attach(self, engine: "Simulator") -> "StorageDevice":
        """Bind the device to a simulator (creates the channel lock).

        The channel is a :class:`~repro.sim.sync.PriorityMutex`: queued
        requests are served by process priority, modelling the I/O
        scheduling classes init schemes set via ``ioprio_set`` (§2.5).
        """
        self._channel = PriorityMutex(engine, name=f"{self.name}.channel",
                                      wake_cost_ns=0)
        return self

    def read_time_ns(self, nbytes: int,
                     pattern: AccessPattern = AccessPattern.SEQUENTIAL) -> int:
        """Pure transfer time for a read, excluding queueing."""
        bps = self.seq_read_bps if pattern is AccessPattern.SEQUENTIAL else self.rand_read_bps
        return self.request_latency_ns + transfer_time_ns(nbytes, bps)

    def write_time_ns(self, nbytes: int,
                      pattern: AccessPattern = AccessPattern.SEQUENTIAL) -> int:
        """Pure transfer time for a write, excluding queueing."""
        bps = self.seq_write_bps if pattern is AccessPattern.SEQUENTIAL else self.rand_write_bps
        return self.request_latency_ns + transfer_time_ns(nbytes, bps)

    def read(self, nbytes: int,
             pattern: AccessPattern = AccessPattern.SEQUENTIAL) -> "ProcessGenerator":
        """Generator: perform a read in simulated time (queues on the channel)."""
        yield from self._transfer(nbytes, self.read_time_ns(nbytes, pattern), is_write=False)

    def write(self, nbytes: int,
              pattern: AccessPattern = AccessPattern.SEQUENTIAL) -> "ProcessGenerator":
        """Generator: perform a write in simulated time (queues on the channel)."""
        yield from self._transfer(nbytes, self.write_time_ns(nbytes, pattern), is_write=True)

    def _transfer(self, nbytes: int, duration_ns: int, is_write: bool) -> "ProcessGenerator":
        if nbytes < 0:
            raise HardwareError(f"{self.name}: negative transfer size {nbytes}")
        if self.capacity_bytes is not None and nbytes > self.capacity_bytes:
            raise HardwareError(
                f"{self.name}: transfer of {nbytes} B exceeds capacity "
                f"{self.capacity_bytes} B")
        if self._channel is None:
            raise HardwareError(f"{self.name}: device not attached to a simulator")
        yield from self._channel.acquire()
        try:
            if self.fault_hook is not None:
                duration_ns += self.fault_hook(nbytes, is_write)
            yield Timeout(duration_ns)
            self.requests += 1
            if is_write:
                self.bytes_written += nbytes
            else:
                self.bytes_read += nbytes
        finally:
            self._channel.release()

    def __repr__(self) -> str:
        return (f"StorageDevice({self.name!r}, seq={self.seq_read_bps // (1 << 20)} MiB/s, "
                f"rand={self.rand_read_bps // (1 << 20)} MiB/s)")
