"""A systemd-like init scheme, plus the baselines BB is compared against.

The package provides the substrate BB's user-space engines are built into:

* :mod:`repro.initsys.unitfile` — the unit-file text format (Listing 1),
* :mod:`repro.initsys.units` — semantic unit model: services (simple /
  forking / oneshot / notify), sockets, mounts, targets, and the
  simulation cost model carried in each unit's ``[X-Simulation]`` section,
* :mod:`repro.initsys.registry` — the unit registry with reference
  validation,
* :mod:`repro.initsys.transaction` — job-transaction builder with
  dependency closure, ordering edges, and systemd-style cycle breaking,
* :mod:`repro.initsys.executor` — the parallel in-order job executor,
* :mod:`repro.initsys.manager` — the init manager (systemd stand-in):
  manager start-up tasks, unit loading (or Pre-parser cache), transaction
  execution, and boot-completion detection,
* :mod:`repro.initsys.startup_tasks` — the manager-internal tasks of
  Fig. 6(b) with the paper's costs,
* :mod:`repro.initsys.preparser` — build-time parsing cache (§3.3),
* :mod:`repro.initsys.sysv` / :mod:`repro.initsys.outoforder` — the
  sequential rcS and out-of-order (§2.5.1) baselines.
"""

from repro.initsys.executor import JobExecutor
from repro.initsys.manager import BootCompletion, InitManager, ManagerConfig
from repro.initsys.memory_pressure import MemoryPressureManager
from repro.initsys.outoforder import OutOfOrderInitScheme
from repro.initsys.preparser import PreParser
from repro.initsys.registry import UnitRegistry
from repro.initsys.runlevels import AdvancedBootScript
from repro.initsys.shutdown import ShutdownSequencer
from repro.initsys.startup_tasks import STARTUP_TASKS, StartupTask
from repro.initsys.sysv import SysVInitScheme
from repro.initsys.transaction import Job, JobState, Transaction
from repro.initsys.unitfile import UnitFileParser, parse_unit_file
from repro.initsys.units import (RestartPolicy, ServiceType, SimCost, Unit,
                                 UnitType)

__all__ = [
    "AdvancedBootScript",
    "BootCompletion",
    "InitManager",
    "Job",
    "JobExecutor",
    "JobState",
    "ManagerConfig",
    "MemoryPressureManager",
    "OutOfOrderInitScheme",
    "PreParser",
    "RestartPolicy",
    "STARTUP_TASKS",
    "ServiceType",
    "ShutdownSequencer",
    "SimCost",
    "StartupTask",
    "SysVInitScheme",
    "Transaction",
    "Unit",
    "UnitFileParser",
    "UnitRegistry",
    "UnitType",
    "parse_unit_file",
]
