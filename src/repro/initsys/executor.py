"""The parallel in-order job executor.

Every job gets a *shepherd* process: it waits for the job's ordering
predecessors (strong edges wait for readiness, weak edges for launch),
checks path conditions, then performs the unit's simulated start work —
fork (serialized through the single-threaded manager, a real systemd
bottleneck), exec image read from storage, dynamic linking, initialization
CPU interleaved with ``synchronize_rcu`` calls, hardware settle — and
fires the job's ``started``/``ready`` completions according to the
service type.

Two hooks make this the substrate for BB's Service Engine:

* ``edge_filter(edge) -> bool`` — the Booting Booster Group Isolator drops
  ordering edges from out-of-group units into BB-Group units,
* ``priority_fn(unit) -> int`` — the Booting Booster Manager gives
  BB-Group services high scheduling priority so non-critical work is
  deferred whenever cores are scarce.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Callable

from repro.errors import UnitNotFoundError
from repro.hw.storage import AccessPattern, StorageDevice
from repro.initsys.transaction import EdgeKind, Job, JobState, OrderingEdge, Transaction
from repro.initsys.units import (DEFAULT_START_LIMIT_BURST, RestartPolicy,
                                 ServiceType, Unit, UnitType)
from repro.kernel.rcu import RCUSubsystem
from repro.sim.process import Compute, Interrupted, Timeout, Wait
from repro.sim.sync import Mutex, PriorityMutex

if TYPE_CHECKING:
    from repro.sim.engine import Simulator
    from repro.sim.process import Process, ProcessGenerator

#: Default scheduling priority for ordinary service start jobs.
SERVICE_PRIORITY = 100

#: How one start attempt ended (the restart policies distinguish a crash
#: from a JobTimeout watchdog interruption).
ATTEMPT_OK = "ok"
ATTEMPT_CRASHED = "crashed"
ATTEMPT_TIMED_OUT = "timed-out"


class PathRegistry:
    """The simulated filesystem-path namespace.

    Services *provide* paths (``var.mount`` provides ``/var``); path
    conditions and the out-of-order path-check mechanism test or wait for
    them.
    """

    def __init__(self, engine: "Simulator", preexisting: set[str] | None = None):
        self._engine = engine
        self._paths: set[str] = set(preexisting or ())
        self._watchers: dict[str, list] = {}
        self._blocked: set[str] = set()
        self.suppressed_provides = 0
        self.suppressed_paths: set[str] = set()

    def exists(self, path: str) -> bool:
        """Whether ``path`` currently exists."""
        return path in self._paths

    def provide(self, path: str) -> None:
        """Create ``path``, waking any processes waiting for it."""
        if path in self._blocked:
            # Fault injection: the device/file refuses to appear; whoever
            # tried to provide it proceeds none the wiser (udev would not
            # tell the provider either).
            self.suppressed_provides += 1
            self.suppressed_paths.add(path)
            return
        if path in self._paths:
            return
        self._paths.add(path)
        for completion in self._watchers.pop(path, []):
            completion.fire(path)

    def block(self, path: str) -> None:
        """Suppress every provide of ``path`` (and hide it if it exists)."""
        self._blocked.add(path)
        self._paths.discard(path)

    def unblock(self, path: str, provide: bool = False) -> None:
        """Lift a block; with ``provide=True`` the path appears at once."""
        self._blocked.discard(path)
        if provide:
            self.provide(path)

    def wait_for(self, path: str) -> "ProcessGenerator":
        """Generator: block until ``path`` exists (no polling cost)."""
        if path in self._paths:
            return
        completion = self._engine.completion(f"path:{path}")
        self._watchers.setdefault(path, []).append(completion)
        yield Wait(completion)

    def poll_for(self, path: str, interval_ns: int,
                 check_cpu_ns: int) -> "ProcessGenerator":
        """Generator: poll until ``path`` exists (the §2.5.1 path-check).

        Unlike :meth:`wait_for`, each probe costs CPU and the discovery
        latency is quantized to the polling interval — the inefficiency
        that makes retrofitted out-of-order schemes slow.

        Returns:
            Number of polls taken.
        """
        polls = 0
        while path not in self._paths:
            yield Compute(check_cpu_ns)
            polls += 1
            yield Timeout(interval_ns)
        return polls

    @property
    def paths(self) -> frozenset[str]:
        """Snapshot of all existing paths."""
        return frozenset(self._paths)


class ServiceRunner:
    """Performs the simulated start work of a unit.

    ``path_faulter``, when given, handles a missing device path the unit
    waits on (``WaitsForPaths``) by loading the deferred built-in driver
    on demand — the On-demand Modularizer Control.  Without it the unit
    blocks until another process (the kmod worker) provides the path.
    """

    def __init__(self, engine: "Simulator", storage: StorageDevice,
                 rcu: RCUSubsystem, paths: PathRegistry,
                 manager_lock: "Mutex | PriorityMutex | None" = None,
                 path_faulter: "Callable[[str], ProcessGenerator] | None" = None,
                 ready_gate: "Callable[[str], object | None] | None" = None,
                 fault_injector=None):
        self._engine = engine
        self._storage = storage
        self._rcu = rcu
        self._paths = paths
        self._manager_lock = manager_lock
        self._path_faulter = path_faulter
        # Socket activation: maps a unit name to its readiness completion
        # so a client's first IPC call can block on it (None = no lookup,
        # e.g. under the sequential baseline where everything is ordered).
        self._ready_gate = ready_gate
        # Seeded fault injection (repro.faults); None = healthy boot.
        self._fault_injector = fault_injector

    def run(self, job: Job) -> "ProcessGenerator":
        """Generator: execute one start attempt of ``job``.

        Returns :data:`ATTEMPT_OK` on success (completions fired per the
        service type); :data:`ATTEMPT_CRASHED` if the attempt failed —
        injected via the unit's ``failures_before_success`` or a fault
        plan's ``ServiceFault``; the crash happens after exec but before
        the unit signals any readiness.
        """
        unit = job.unit
        engine = self._engine
        job.attempts += 1
        job.attempt_began_ns.append(engine.now)
        decision = (self._fault_injector.service_decision(unit.name, job.attempts)
                    if self._fault_injector is not None else None)
        span = engine.tracer.begin(unit.name, "service",
                                   unit_type=unit.unit_type.value,
                                   service_type=unit.service_type.value,
                                   attempt=job.attempts)
        job.state = JobState.RUNNING

        # Fork each of the unit's processes through the manager (systemd is
        # single threaded; concurrent forks serialize on it).
        for _ in range(unit.cost.processes):
            if self._manager_lock is not None:
                yield from self._manager_lock.acquire()
                try:
                    yield Compute(unit.cost.fork_ns)
                finally:
                    self._manager_lock.release()
            else:
                yield Compute(unit.cost.fork_ns)

        # Exec: load the binary (and libraries) from storage.
        if unit.cost.exec_bytes:
            yield from self._storage.read(unit.cost.exec_bytes, AccessPattern.RANDOM)
        if not unit.static_build and unit.cost.dynamic_link_ns:
            yield Compute(unit.cost.dynamic_link_ns)

        if (job.attempts <= unit.failures_before_success
                or (decision is not None and decision.fail)):
            # Injected failure: the process crashes mid-initialization,
            # before signalling readiness.
            yield Compute(unit.cost.init_cpu_ns // 2)
            engine.tracer.end(span)
            engine.tracer.instant(f"{unit.name}.failed", "service")
            return ATTEMPT_CRASHED

        self._mark_started(job)
        if unit.service_type is ServiceType.SIMPLE:
            # Simple services count as active the moment they are forked.
            self._mark_ready(job)

        if decision is not None and decision.hang_ns:
            # Injected stall: the daemon wedges mid-start; a long enough
            # hang trips the unit's JobTimeout watchdog.
            yield Timeout(decision.hang_ns)

        # Device availability: wait for (or on-demand load) the driver
        # behind each device path the unit opens.
        for path in unit.waits_for_paths:
            if not self._paths.exists(path):
                if self._path_faulter is not None:
                    yield from self._path_faulter(path)
                if not self._paths.exists(path):
                    # No faulter, or the demand-load could not surface the
                    # node (fault-blocked path): block until it appears.
                    yield from self._paths.wait_for(path)

        yield from self._initialization_work(unit, job.attempts)

        if unit.service_type is ServiceType.NOTIFY and unit.cost.ready_extra_ns:
            yield Timeout(unit.cost.ready_extra_ns)
        # Provide paths before signalling readiness so dependents woken by
        # the ready edge observe the paths this unit creates.
        for path in unit.provides_paths:
            self._paths.provide(path)
        if job.ready_at_ns is None:
            self._mark_ready(job)

        job.state = JobState.DONE
        job.done_at_ns = engine.now
        engine.tracer.end(span)
        return ATTEMPT_OK

    def _initialization_work(self, unit: Unit,
                             attempt: int = 1) -> "ProcessGenerator":
        """CPU init chunks interleaved with synchronize_rcu calls.

        If the unit declares socket-activation IPC targets, the first
        chunk runs in parallel with the providers; the first IPC call
        (after that chunk) blocks until each provider is ready — the
        kernel buffers the connect in the provider's listening socket.
        """
        syncs = unit.cost.rcu_syncs
        chunks = syncs + 1
        chunk_ns = unit.cost.init_cpu_ns // chunks
        remainder = unit.cost.init_cpu_ns - chunk_ns * chunks
        for index in range(chunks):
            cpu = chunk_ns + (remainder if index == chunks - 1 else 0)
            if cpu:
                yield Compute(cpu)
            if index == 0 and unit.ipc_targets and self._ready_gate is not None:
                for target in unit.ipc_targets:
                    gate = self._ready_gate(target)
                    if gate is not None and not gate.fired:
                        yield Wait(gate)
            if index < syncs:
                yield from self._rcu.synchronize_rcu()
        settle_ns = unit.cost.hw_settle_ns
        if settle_ns and self._fault_injector is not None:
            settle_ns = self._fault_injector.settle_ns(unit.name, attempt,
                                                       settle_ns)
        if settle_ns:
            yield Timeout(settle_ns)

    def _mark_started(self, job: Job) -> None:
        # Every attempt records its own launch time: started_at_ns must
        # reflect the attempt that ultimately succeeded, not attempt 1 of
        # a unit that was watchdogged and restarted.  The completion keeps
        # first-fire semantics — dependents wait for the first launch.
        now = self._engine.now
        job.attempt_started_ns.append(now)
        job.started_at_ns = now
        monitor = self._engine.monitor
        if monitor is not None:
            monitor.on_job_started(job)
        assert job.started is not None
        if not job.started.fired:
            job.started.fire(job.name)

    def _mark_ready(self, job: Job) -> None:
        if job.ready_at_ns is None:
            job.state = JobState.READY
            job.ready_at_ns = self._engine.now
            assert job.ready is not None
            job.ready.fire(job.name)
            if job.settled is not None and not job.settled.fired:
                job.settled.fire(job.name)


class JobExecutor:
    """Runs a whole transaction in parallel, respecting ordering edges."""

    def __init__(self, engine: "Simulator", transaction: Transaction,
                 storage: StorageDevice, rcu: RCUSubsystem, paths: PathRegistry,
                 manager_lock: "Mutex | PriorityMutex | None" = None,
                 edge_filter: Callable[[OrderingEdge], bool] | None = None,
                 priority_fn: Callable[[Unit], int] | None = None,
                 path_faulter: "Callable[[str], ProcessGenerator] | None" = None,
                 fault_injector=None,
                 restart_seed: int = 0,
                 restart_jitter: float = 0.0):
        self._engine = engine
        self.transaction = transaction
        self._restart_seed = restart_seed
        self._restart_jitter = restart_jitter

        def ready_gate(name: str):
            if name in transaction:
                return transaction.job(name).ready
            return None

        self._runner = ServiceRunner(engine, storage, rcu, paths,
                                     manager_lock=manager_lock,
                                     path_faulter=path_faulter,
                                     ready_gate=ready_gate,
                                     fault_injector=fault_injector)
        self._paths = paths
        self._edge_filter = edge_filter
        self._priority_fn = priority_fn
        self.ignored_edges: list[OrderingEdge] = []
        self.failed_jobs: list[str] = []
        # (failed unit, handler unit) pairs, in activation order.
        self.on_failure_activated: list[tuple[str, str]] = []
        self._shepherds: list["Process"] = []

    def start_all(self) -> list["Process"]:
        """Spawn one shepherd per job; returns the shepherd processes."""
        # Create completions up front so shepherds can wait on each other
        # regardless of spawn order.
        monitor = self._engine.monitor
        if monitor is not None:
            monitor.on_executor(self)
        for job in self.transaction.jobs.values():
            job.started = self._engine.completion(f"{job.name}.started")
            job.ready = self._engine.completion(f"{job.name}.ready")
            job.settled = self._engine.completion(f"{job.name}.settled")
        for job in self.transaction.jobs.values():
            priority = (self._priority_fn(job.unit) if self._priority_fn
                        else SERVICE_PRIORITY)
            shepherd = self._engine.spawn(self._shepherd(job),
                                          name=f"job:{job.name}",
                                          priority=priority)
            self._shepherds.append(shepherd)
        return list(self._shepherds)

    def wait_all(self) -> "ProcessGenerator":
        """Generator: block until every shepherd finished."""
        for shepherd in self._shepherds:
            if shepherd.alive:
                yield Wait(shepherd.done)

    def _shepherd(self, job: Job) -> "ProcessGenerator":
        for edge in self.transaction.predecessors(job.name):
            if self._edge_filter is not None and not self._edge_filter(edge):
                self.ignored_edges.append(edge)
                continue
            predecessor = self.transaction.job(edge.predecessor)
            # Strong edges wait for the predecessor to settle (ready or
            # permanently failed); weak edges only for its launch.
            gate = (predecessor.settled if edge.kind is EdgeKind.STRONG
                    else predecessor.started)
            assert gate is not None
            if not gate.fired:
                yield Wait(gate)
            # Requirement failure propagates; a failed unit that was only
            # an ordering constraint (After=/Before=) merely unblocks.
            if (predecessor.state is JobState.FAILED
                    and predecessor.name in job.unit.requires):
                self._fail(job, f"required unit {predecessor.name} failed")
                return

        unit = job.unit
        missing = [p for p in unit.condition_paths if not self._paths.exists(p)]
        if missing:
            # Condition not met: systemd skips the unit but the job still
            # counts as complete so dependents are not wedged.
            job.state = JobState.SKIPPED
            job.started_at_ns = job.ready_at_ns = job.done_at_ns = self._engine.now
            self._fire_all(job)
            self._engine.tracer.instant(f"{job.name}.skipped", "service")
            return

        if unit.unit_type is UnitType.TARGET:
            # Targets have no work: ready once predecessors are satisfied.
            # State must be final BEFORE firing: Completion.fire resumes
            # waiting dependents synchronously, and a dependent's strong-
            # edge check reads predecessor.state the moment it wakes.
            job.started_at_ns = job.ready_at_ns = job.done_at_ns = self._engine.now
            job.state = JobState.DONE
            self._fire_all(job)
            return

        restarts = 0
        while True:
            outcome = yield from self._attempt_with_watchdog(job)
            if outcome == ATTEMPT_OK:
                if job.settled is not None and not job.settled.fired:
                    job.settled.fire(job.name)
                return
            if not self._should_restart(unit, outcome, restarts):
                self._fail(job,
                           f"start job failed after {job.attempts} attempt(s)")
                return
            if self._start_limit_hit(job):
                self._fail(job, f"start-limit-hit: {job.attempts} starts "
                                f"within {unit.start_limit_interval_ns} ns")
                return
            # Monitoring and recovery (§2.5.2): restart after a delay.
            restarts += 1
            delay = self._restart_delay(unit, restarts)
            job.restart_delays_ns.append(delay)
            if delay:
                yield Timeout(delay)

    def _should_restart(self, unit: Unit, outcome: str, restarts: int) -> bool:
        """Whether the unit's restart policy allows another attempt.

        ``on-failure`` restarts after any failed attempt (crash or
        JobTimeout), ``on-watchdog`` only after a JobTimeout interruption
        — both bounded by ``max_restarts``.  ``always`` ignores
        ``max_restarts`` and is bounded only by the start-rate limit.
        """
        policy = unit.restart_policy
        if policy is RestartPolicy.NO:
            return False
        if policy is RestartPolicy.ALWAYS:
            return True
        if restarts >= unit.max_restarts:
            return False
        if policy is RestartPolicy.ON_WATCHDOG:
            return outcome == ATTEMPT_TIMED_OUT
        return True  # ON_FAILURE: crash or timeout

    def _start_limit_hit(self, job: Job) -> bool:
        """systemd start-rate limiting over the attempt-launch history.

        A burst of 0 means unlimited — except under ``Restart=always``,
        which would loop forever without a limit, so it gets systemd's
        default of 5 starts per 10 s.
        """
        unit = job.unit
        burst = unit.start_limit_burst
        if burst == 0 and unit.restart_policy is RestartPolicy.ALWAYS:
            burst = DEFAULT_START_LIMIT_BURST
        if burst <= 0:
            return False
        window_start = self._engine.now - unit.start_limit_interval_ns
        recent = sum(1 for t in job.attempt_began_ns if t >= window_start)
        return recent >= burst

    def _restart_delay(self, unit: Unit, restart_number: int) -> int:
        """Seeded exponential backoff with deterministic jitter."""
        delay = (unit.restart_delay_ns
                 * unit.restart_backoff_factor ** (restart_number - 1))
        if self._restart_jitter:
            digest = hashlib.sha256(repr(
                (self._restart_seed, "restart-jitter", unit.name,
                 restart_number)).encode()).digest()
            unit_draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
            delay *= 1.0 + self._restart_jitter * (2.0 * unit_draw - 1.0)
        return int(delay)

    def _attempt_with_watchdog(self, job: Job) -> "ProcessGenerator":
        """One start attempt, guarded by the unit's JobTimeout watchdog.

        A unit that exceeds ``start_timeout_ns`` without becoming ready is
        interrupted (its held simulation locks are released by the
        generator's ``finally`` blocks) and the attempt counts as
        :data:`ATTEMPT_TIMED_OUT`, so the unit's restart policy applies.
        The watchdog event is cancelled whatever the outcome — a
        successful attempt leaves no stray timer in the event queue.
        """
        unit = job.unit
        engine = self._engine
        if not unit.start_timeout_ns:
            result = yield from self._runner.run(job)
            return result
        me = engine.current_process
        assert me is not None

        def watchdog() -> None:
            if job.ready_at_ns is None and me.alive:
                engine.interrupt(me, Interrupted(
                    f"{unit.name}: start timed out"))

        event = engine.call_after(unit.start_timeout_ns, watchdog)
        try:
            result = yield from self._runner.run(job)
        except Interrupted:
            engine.tracer.instant(f"{unit.name}.start-timeout", "service")
            return ATTEMPT_TIMED_OUT
        finally:
            engine.events.cancel(event)
        return result

    def _fail(self, job: Job, reason: str) -> None:
        """Settle a job as permanently failed without wedging dependents."""
        job.state = JobState.FAILED
        job.failure_reason = reason
        if job.started is not None and not job.started.fired:
            job.started_at_ns = self._engine.now
            job.started.fire(job.name)
        if job.settled is not None and not job.settled.fired:
            job.settled.fire(job.name)
        self.failed_jobs.append(job.name)
        self._engine.tracer.instant(f"{job.name}.start-failed", "service")
        for handler in job.unit.on_failure:
            self._activate_on_failure(job.name, handler)

    def _activate_on_failure(self, failed: str, handler: str) -> None:
        """``OnFailure=``: enqueue a start job for ``handler``.

        A handler already part of the transaction is merely recorded (its
        job runs regardless); one outside it gets a fresh edge-free job
        and shepherd, appended to ``_shepherds`` — ``wait_all`` iterates
        the live list, so late additions are still drained.
        """
        engine = self._engine
        if handler in self.transaction.jobs:
            self.on_failure_activated.append((failed, handler))
            return
        try:
            unit = self.transaction.registry.get(handler)
        except UnitNotFoundError:
            engine.tracer.instant(f"{handler}.on-failure-missing", "service")
            return
        job = Job(unit=unit, pulled_strongly=False)
        job.started = engine.completion(f"{job.name}.started")
        job.ready = engine.completion(f"{job.name}.ready")
        job.settled = engine.completion(f"{job.name}.settled")
        self.transaction.jobs[handler] = job
        priority = (self._priority_fn(unit) if self._priority_fn
                    else SERVICE_PRIORITY)
        shepherd = engine.spawn(self._shepherd(job),
                                name=f"job:{job.name}",
                                priority=priority)
        self._shepherds.append(shepherd)
        self.on_failure_activated.append((failed, handler))
        engine.tracer.instant(f"{handler}.on-failure-activated", "service")

    def _fire_all(self, job: Job) -> None:
        monitor = self._engine.monitor
        if monitor is not None:
            monitor.on_job_started(job)
        for completion in (job.started, job.ready, job.settled):
            if completion is not None and not completion.fired:
                completion.fire(job.name)
