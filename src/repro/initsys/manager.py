"""The init manager — the simulation's systemd.

:class:`InitManager` drives user-space boot end to end:

1. manager start-up tasks (Fig. 6(b); deferrable ones skipped under BB),
2. unit loading and dependency parsing (text, or the Pre-parser cache),
3. init-scheme sub-modules (run in-line without BB, deferred with it),
4. the external-module (kmod) worker (skipped under On-demand Modularizer),
5. transaction build for the goal target and parallel execution,
6. boot-completion detection: the instant every unit named in
   :class:`BootCompletion` is ready (for a TV: broadcast playing and the
   remote responding),
7. post-completion execution of everything deferred.

BB's engines plug in through the constructor hooks (``edge_filter``,
``priority_fn``, ``on_boot_complete``) and the :class:`ManagerConfig`
flags; the manager itself stays a general init scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigurationError, ServiceFailureError
from repro.hw.storage import StorageDevice
from repro.initsys.executor import JobExecutor, PathRegistry
from repro.initsys.preparser import PreParsedCache, PreParser
from repro.initsys.registry import UnitRegistry
from repro.initsys.startup_tasks import STARTUP_TASKS, SUBMODULE_TASKS, StartupTask
from repro.initsys.transaction import OrderingEdge, Transaction
from repro.initsys.units import Unit
from repro.kernel.modules import KernelModule, ModuleLoader
from repro.kernel.rcu import RCUSubsystem
from repro.sim.process import Timeout, Wait
from repro.sim.sync import PriorityMutex

if TYPE_CHECKING:
    from repro.sim.engine import Simulator
    from repro.sim.process import Process, ProcessGenerator

#: Scheduling priority of the manager process and its in-line sub-modules.
MANAGER_PRIORITY = 50

#: Priority of post-completion deferred work (lower than any boot task).
DEFERRED_PRIORITY = 300

#: Bounded backoff for deferred tasks whose run fails (fault injection):
#: first retry after 50 ms, doubling up to 400 ms, at most 5 retries.
DEFERRED_RETRY_BASE_NS = 50_000_000
DEFERRED_RETRY_CAP_NS = 400_000_000
DEFERRED_MAX_RETRIES = 5


@dataclass(slots=True)
class ManagerConfig:
    """Init-manager behaviour flags (the BB switchboard).

    Attributes:
        goal: Unit whose start transaction defines user-space boot.
        completion_units: Units whose readiness defines boot completion.
        defer_startup_tasks: BB Boot-up Engine — skip deferrable manager
            start-up tasks until after completion.
        defer_submodules: BB Deferred Executor — run init sub-modules
            after completion instead of during service launch.
        use_preparser: BB Pre-parser — load units from the binary cache.
        ondemand_modules: BB On-demand Modularizer — no kmod bulk loading.
        startup_tasks: Manager start-up task list (Fig. 6(b) by default).
        submodule_tasks: Init sub-module list (Fig. 6(c) by default).
        restart_seed: Seed for the executor's deterministic restart
            jitter draws (recovery replay determinism).
        restart_jitter: Relative jitter applied to restart backoff
            delays (0.0 = constant delays, the pre-recovery behaviour).
    """

    goal: str = "multi-user.target"
    completion_units: tuple[str, ...] = ()
    defer_startup_tasks: bool = False
    defer_submodules: bool = False
    use_preparser: bool = False
    ondemand_modules: bool = False
    startup_tasks: tuple[StartupTask, ...] = STARTUP_TASKS
    submodule_tasks: tuple[StartupTask, ...] = SUBMODULE_TASKS
    restart_seed: int = 0
    restart_jitter: float = 0.0

    def __post_init__(self) -> None:
        if not self.completion_units:
            raise ConfigurationError("boot completion needs at least one unit")


@dataclass(slots=True)
class BootCompletion:
    """When and how boot completed."""

    time_ns: int
    unit_ready_ns: dict[str, int] = field(default_factory=dict)


class InitManager:
    """The first user process: starts and supervises every other one."""

    def __init__(self, engine: "Simulator", registry: UnitRegistry,
                 storage: StorageDevice, rcu: RCUSubsystem,
                 config: ManagerConfig,
                 preparser: PreParser | None = None,
                 cache: PreParsedCache | None = None,
                 boot_modules: tuple[KernelModule, ...] = (),
                 preexisting_paths: set[str] | None = None,
                 edge_filter: Callable[[OrderingEdge], bool] | None = None,
                 priority_fn: Callable[[Unit], int] | None = None,
                 on_boot_complete: Callable[[], None] | None = None,
                 path_faulter_factory=None,
                 fault_injector=None):
        self._engine = engine
        self.registry = registry
        self.storage = storage
        self.rcu = rcu
        self.config = config
        self.preparser = preparser if preparser is not None else PreParser()
        self._cache = cache
        self.boot_modules = tuple(boot_modules)
        self.module_loader = ModuleLoader(storage)
        self.paths = PathRegistry(engine, preexisting=preexisting_paths)
        # The single-threaded manager serializes forks; the queue honours
        # process priority so the BB Manager's boosted services are not
        # stuck behind a hundred application forks (priority inversion on
        # the init scheme itself — one of the paper's "bottlenecks in the
        # infrastructure").
        self.fork_lock = PriorityMutex(engine, name="manager.fork",
                                       wake_cost_ns=1_000)
        self._edge_filter = edge_filter
        self._priority_fn = priority_fn
        self._on_boot_complete = on_boot_complete
        # Seeded fault injection (repro.faults): module-load failures are
        # wired into the loader, missing/late device paths are blocked in
        # the registry now (before anything can provide them) and lifted
        # on schedule once the manager runs.
        self._fault_injector = fault_injector
        if fault_injector is not None:
            self.module_loader.fault_hook = fault_injector.module_decision
            for path in sorted(fault_injector.blocked_paths):
                self.paths.block(path)
                fault_injector.stats.paths_blocked += 1
            for path, _delay in fault_injector.late_paths():
                self.paths.block(path)
        # The faulter needs the manager's path registry, so it is built
        # from a factory once that registry exists.
        self._path_faulter = (path_faulter_factory(self.paths)
                              if path_faulter_factory is not None else None)
        self.transaction: Transaction | None = None
        self.executor: JobExecutor | None = None
        self.completion: BootCompletion | None = None
        self.deferred_processes: list["Process"] = []
        self.deferred_failed: list[str] = []
        self.all_done_ns: int | None = None

    # ---------------------------------------------------------------- boot

    def spawn(self) -> "Process":
        """Start the manager as the init process (PID 1)."""
        return self._engine.spawn(self.run(), name="init-manager",
                                  priority=MANAGER_PRIORITY)

    def run(self) -> "ProcessGenerator":
        """Generator: the whole user-space boot."""
        engine = self._engine
        self._schedule_late_paths()
        deferred_startup = yield from self._run_startup_tasks()
        yield from self._load_units()

        services_span = engine.tracer.begin("init.services", "boot-stage")
        self.registry.apply_install_sections()
        self.transaction = Transaction(self.registry, [self.config.goal])
        self._check_completion_units()

        # Init-scheme sub-modules run inside the single-threaded manager:
        # without BB they block job dispatch for their full duration, which
        # is exactly why the Deferred Executor's saving equals their cost.
        if not self.config.defer_submodules:
            for task in self.config.submodule_tasks:
                yield from task.run(engine)
        kmod_process = self._spawn_kmod_worker()

        self.executor = JobExecutor(
            engine, self.transaction, self.storage, self.rcu, self.paths,
            manager_lock=self.fork_lock, edge_filter=self._edge_filter,
            priority_fn=self._priority_fn, path_faulter=self._path_faulter,
            fault_injector=self._fault_injector,
            restart_seed=self.config.restart_seed,
            restart_jitter=self.config.restart_jitter)
        self.executor.start_all()

        yield from self._wait_for_completion()
        self._handle_boot_complete(deferred_startup)

        # Drain the rest of the boot (not counted in the boot time).
        yield from self.executor.wait_all()
        if kmod_process is not None and kmod_process.alive:
            yield Wait(kmod_process.done)
        for process in self.deferred_processes:
            if process.alive:
                yield Wait(process.done)
        engine.tracer.end(services_span)
        self.all_done_ns = engine.now
        return self.completion

    # ------------------------------------------------------------- phases

    def _run_startup_tasks(self) -> "ProcessGenerator":
        """Phase (b): manager initialization; returns the deferred tasks."""
        engine = self._engine
        span = engine.tracer.begin("init.initialization", "boot-stage")
        deferred: list[StartupTask] = []
        for task in self.config.startup_tasks:
            if task.deferrable and self.config.defer_startup_tasks:
                deferred.append(task)
                continue
            yield from task.run(engine)
        engine.tracer.end(span)
        return deferred

    def _load_units(self) -> "ProcessGenerator":
        if self.config.use_preparser:
            cache = self._cache
            if cache is None:
                cache = self.preparser.build_cache(self.registry)
            if not cache.is_fresh(self.registry):
                # §2.5 dynamicity: a service was installed or updated after
                # the cache was built — fall back to the full text parse so
                # the boot stays correct (and pays the conventional cost).
                self._engine.tracer.instant("preparser.cache-stale", "init-task")
                yield from self.preparser.load_from_text(
                    self._engine, self.registry, self.storage)
                return
            yield from self.preparser.load_from_cache(self._engine, cache,
                                                      self.storage)
        else:
            yield from self.preparser.load_from_text(self._engine, self.registry,
                                                     self.storage)

    def _check_completion_units(self) -> None:
        assert self.transaction is not None
        missing = [u for u in self.config.completion_units
                   if u not in self.transaction]
        if missing:
            raise ConfigurationError(
                f"completion units not in boot transaction: {missing}")

    def _spawn_kmod_worker(self) -> "Process | None":
        """Bulk external-module loading (absent under On-demand Modularizer)."""
        if self.config.ondemand_modules or not self.boot_modules:
            return None

        def worker() -> "ProcessGenerator":
            span = self._engine.tracer.begin("init.kmod-worker", "init-task")
            for module in self.boot_modules:
                loaded = yield from self.module_loader.load(self._engine, module)
                # Each loaded driver exposes its device node, unblocking
                # services that wait on it (WaitsForPaths); a failed load
                # never surfaces the node.
                if loaded:
                    self.paths.provide(f"/dev/{module.name}")
            self._engine.tracer.end(span)

        return self._engine.spawn(worker(), name="kmod-worker", priority=60)

    def _schedule_late_paths(self) -> None:
        """Arrange for fault-delayed device paths to appear on schedule.

        Delays are relative to manager start.  At the deadline the block
        is lifted; if some producer (kmod worker, on-demand faulter)
        already tried to provide the path meanwhile, it appears at once —
        otherwise it appears whenever the producer eventually gets there.
        """
        if self._fault_injector is None:
            return
        for path, delay_ns in self._fault_injector.late_paths():
            self._engine.call_after(delay_ns, self._lift_path_fault, path)

    def _lift_path_fault(self, path: str) -> None:
        provide = path in self.paths.suppressed_paths
        self.paths.unblock(path, provide=provide)
        assert self._fault_injector is not None
        self._fault_injector.stats.paths_delayed += 1
        self._engine.tracer.instant(f"path:{path}.appeared-late", "init-task")

    def _wait_for_completion(self) -> "ProcessGenerator":
        assert self.transaction is not None
        ready_ns: dict[str, int] = {}
        for name in self.config.completion_units:
            job = self.transaction.job(name)
            assert job.settled is not None
            if not job.settled.fired:
                yield Wait(job.settled)
            if job.ready_at_ns is None:
                raise ServiceFailureError(name, job.failure_reason
                                          or "start job failed")
            ready_ns[name] = job.ready_at_ns
        self.completion = BootCompletion(time_ns=self._engine.now,
                                         unit_ready_ns=ready_ns)

    def _handle_boot_complete(self, deferred_startup: list[StartupTask]) -> None:
        engine = self._engine
        engine.tracer.instant("boot.complete", "boot-stage")
        for task in deferred_startup:
            self.deferred_processes.append(engine.spawn(
                self._run_deferred(task), name=f"deferred:{task.name}",
                priority=DEFERRED_PRIORITY))
        if self.config.defer_submodules:
            for task in self.config.submodule_tasks:
                self.deferred_processes.append(engine.spawn(
                    self._run_deferred(task), name=f"deferred:{task.name}",
                    priority=DEFERRED_PRIORITY))
        if self._on_boot_complete is not None:
            self._on_boot_complete()

    def _run_deferred(self, task: StartupTask) -> "ProcessGenerator":
        """Run one deferred task, retrying failures with bounded backoff.

        Post-completion work also deserves §2.5.2 monitoring and
        recovery: a deferred task whose run fails (per the fault plan) is
        retried after an exponentially growing delay, at most
        :data:`DEFERRED_MAX_RETRIES` times, then recorded as given up —
        a degraded but live system, never an infinite retry loop.
        """
        attempt = 0
        delay_ns = DEFERRED_RETRY_BASE_NS
        while True:
            attempt += 1
            yield from task.run(self._engine)
            injector = self._fault_injector
            if injector is None or not injector.deferred_fails(task.name,
                                                               attempt):
                return
            if attempt > DEFERRED_MAX_RETRIES:
                injector.stats.deferred_giveups += 1
                self.deferred_failed.append(task.name)
                self._engine.tracer.instant(
                    f"deferred:{task.name}.gave-up", "init-task")
                return
            injector.stats.deferred_retries += 1
            yield Timeout(delay_ns)
            delay_ns = min(delay_ns * 2, DEFERRED_RETRY_CAP_NS)

    # ------------------------------------------------------------- queries

    @property
    def boot_complete_ns(self) -> int:
        """Boot-completion time.

        Raises:
            ConfigurationError: If boot has not completed yet.
        """
        if self.completion is None:
            raise ConfigurationError("boot has not completed")
        return self.completion.time_ns
