"""Memory-pressure management (§2.5).

Modern init schemes "adjust priorities between user processes and choose
the victim to be expelled from the main memory when the memory pressure
becomes critical".  The manager tracks each running unit's resident
memory against the platform's DRAM budget and, past a critical threshold,
expels victims — never a protected (BB-Group) unit, preferring the largest
low-importance resident first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import ConfigurationError
from repro.initsys.units import Unit

#: Default fraction of DRAM available to services (rest is kernel/graphics).
DEFAULT_BUDGET_FRACTION = 0.6

#: Default usage fraction of the budget at which reclaim starts.
DEFAULT_CRITICAL_FRACTION = 0.9


@dataclass(slots=True)
class PressureEvent:
    """One reclaim decision."""

    requested_by: str
    victims: list[str]
    freed_bytes: int


class MemoryPressureManager:
    """Tracks resident services and expels victims under pressure.

    Args:
        dram_bytes: Platform DRAM size.
        budget_fraction: Fraction of DRAM the service set may use.
        critical_fraction: Budget fraction at which reclaim triggers.
        protected: Unit names that are never chosen as victims (the BB
            Group in a BB system).
        importance_fn: Lower value = expelled first; defaults to negative
            memory size (biggest consumer goes first).
    """

    def __init__(self, dram_bytes: int,
                 budget_fraction: float = DEFAULT_BUDGET_FRACTION,
                 critical_fraction: float = DEFAULT_CRITICAL_FRACTION,
                 protected: Iterable[str] = (),
                 importance_fn: Callable[[Unit], float] | None = None):
        if dram_bytes <= 0:
            raise ConfigurationError("DRAM size must be positive")
        if not 0.0 < budget_fraction <= 1.0:
            raise ConfigurationError("budget_fraction must be in (0, 1]")
        if not 0.0 < critical_fraction <= 1.0:
            raise ConfigurationError("critical_fraction must be in (0, 1]")
        self.budget_bytes = round(dram_bytes * budget_fraction)
        self.critical_bytes = round(self.budget_bytes * critical_fraction)
        self.protected = frozenset(protected)
        self._importance_fn = importance_fn
        self.resident: dict[str, Unit] = {}
        self.used_bytes = 0
        self.events: list[PressureEvent] = []

    def _importance(self, unit: Unit) -> float:
        if self._importance_fn is not None:
            return self._importance_fn(unit)
        return -float(unit.cost.memory_bytes)

    @property
    def pressure(self) -> float:
        """Current usage as a fraction of the budget."""
        return self.used_bytes / self.budget_bytes

    def admit(self, unit: Unit) -> PressureEvent | None:
        """Account a newly started unit; reclaim if pressure is critical.

        Returns the reclaim event if one was needed, else ``None``.

        Raises:
            ConfigurationError: If the unit alone exceeds the whole budget,
                or pressure cannot be relieved (every resident protected).
        """
        if unit.cost.memory_bytes > self.budget_bytes:
            raise ConfigurationError(
                f"{unit.name}: needs {unit.cost.memory_bytes} B, budget is "
                f"{self.budget_bytes} B")
        self.resident[unit.name] = unit
        self.used_bytes += unit.cost.memory_bytes
        if self.used_bytes <= self.critical_bytes:
            return None
        return self._reclaim(requested_by=unit.name)

    def release(self, name: str) -> None:
        """Account a stopped/expelled unit."""
        unit = self.resident.pop(name, None)
        if unit is not None:
            self.used_bytes -= unit.cost.memory_bytes

    def _reclaim(self, requested_by: str) -> PressureEvent:
        event = PressureEvent(requested_by=requested_by, victims=[],
                              freed_bytes=0)
        candidates = sorted(
            (u for name, u in self.resident.items()
             if name not in self.protected and name != requested_by),
            key=lambda u: (self._importance(u), u.name))
        for victim in candidates:
            if self.used_bytes <= self.critical_bytes:
                break
            self.release(victim.name)
            event.victims.append(victim.name)
            event.freed_bytes += victim.cost.memory_bytes
        if self.used_bytes > self.critical_bytes:
            raise ConfigurationError(
                "memory pressure critical and every resident unit is "
                "protected; cannot reclaim")
        self.events.append(event)
        return event
