"""The out-of-order baseline (§2.5.1).

Out-of-order schemes (BSD init, SysVinit with parallel rc, Busybox init,
launchd, svscan...) start services "without consideration of completion of
services intended to be prior": every job launches immediately.  Two
behaviours are modeled:

* ``path_check=False`` — pure out-of-order.  A unit whose strong
  dependencies are not ready when it starts suffers a **correctness
  violation**; the violation is recorded and the unit pays a retry penalty
  (crash-and-restart), matching the paper's point that such schemes
  "cannot handle the boot sequence correctly" with dynamic dependencies.
* ``path_check=True`` — the retrofitted path-check method: before
  starting, a unit polls for the paths its strong dependencies provide,
  becoming "partially in-order" at the cost of polling latency and CPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.hw.storage import StorageDevice
from repro.initsys.executor import PathRegistry, ServiceRunner
from repro.initsys.registry import UnitRegistry
from repro.initsys.transaction import Transaction
from repro.initsys.units import UnitType
from repro.kernel.rcu import RCUSubsystem
from repro.quantities import msec, usec
from repro.sim.process import Compute, Timeout, Wait

if TYPE_CHECKING:
    from repro.sim.engine import Simulator
    from repro.sim.process import Process, ProcessGenerator


@dataclass(slots=True)
class OutOfOrderResult:
    """Outcome of an out-of-order boot."""

    boot_complete_ns: int | None = None
    violations: list[tuple[str, str]] = field(default_factory=list)
    total_polls: int = 0


class OutOfOrderInitScheme:
    """Launch every job of the goal closure immediately and in parallel."""

    def __init__(self, engine: "Simulator", registry: UnitRegistry,
                 storage: StorageDevice, rcu: RCUSubsystem,
                 goal: str, completion_units: tuple[str, ...],
                 path_check: bool = False,
                 poll_interval_ns: int = msec(10),
                 poll_cpu_ns: int = usec(50),
                 violation_penalty_ns: int = msec(30),
                 preexisting_paths: set[str] | None = None):
        self._engine = engine
        self.registry = registry
        self.storage = storage
        self.rcu = rcu
        self.goal = goal
        self.completion_units = completion_units
        self.path_check = path_check
        self.poll_interval_ns = poll_interval_ns
        self.poll_cpu_ns = poll_cpu_ns
        self.violation_penalty_ns = violation_penalty_ns
        self.paths = PathRegistry(engine, preexisting=preexisting_paths)
        self.transaction: Transaction | None = None
        self.result = OutOfOrderResult()

    def spawn(self) -> "Process":
        """Start the out-of-order init as the init process."""
        return self._engine.spawn(self.run(), name="ooo-init", priority=50)

    def run(self) -> "ProcessGenerator":
        """Generator: launch all jobs at once, then wait for completion."""
        engine = self._engine
        self.registry.apply_install_sections()
        self.transaction = Transaction(self.registry, [self.goal])
        runner = ServiceRunner(engine, self.storage, self.rcu, self.paths)

        for job in self.transaction.jobs.values():
            job.started = engine.completion(f"{job.name}.started")
            job.ready = engine.completion(f"{job.name}.ready")
        workers = []
        for job in self.transaction.jobs.values():
            workers.append(engine.spawn(self._start_unit(runner, job),
                                        name=f"ooo:{job.name}", priority=100))

        for name in self.completion_units:
            job = self.transaction.job(name)
            assert job.ready is not None
            if not job.ready.fired:
                yield Wait(job.ready)
        self.result.boot_complete_ns = engine.now
        engine.tracer.instant("boot.complete", "boot-stage")

        for worker in workers:
            if worker.alive:
                yield Wait(worker.done)
        return self.result

    def _start_unit(self, runner: ServiceRunner, job) -> "ProcessGenerator":
        engine = self._engine
        unit = job.unit
        if unit.unit_type is UnitType.TARGET:
            job.started.fire(job.name)
            job.ready.fire(job.name)
            job.started_at_ns = job.ready_at_ns = job.done_at_ns = engine.now
            return

        strong_deps = [d for d in unit.requires if d in self.transaction]
        if self.path_check:
            # Poll for each dependency's provided paths (or its readiness
            # when it provides none — a proxy path like a pid file).
            for dep in strong_deps:
                dep_unit = self.registry.get(dep)
                probe_paths = dep_unit.provides_paths or [f"/run/{dep}.pid"]
                dep_job = self.transaction.job(dep)
                for path in probe_paths:
                    polls = yield from self._poll_for(path, dep_job)
                    self.result.total_polls += polls
        else:
            for dep in strong_deps:
                dep_job = self.transaction.job(dep)
                if dep_job.ready is not None and not dep_job.ready.fired:
                    # Started before its requirement: record the violation
                    # and pay the crash-and-retry penalty, then block until
                    # the dependency is up (the retried start succeeds).
                    self.result.violations.append((unit.name, dep))
                    yield Compute(self.violation_penalty_ns)
                    yield Wait(dep_job.ready)
        yield from runner.run(job)
        # Out-of-order schemes have no provides mechanism of their own; a
        # unit's pid file stands in for "it is up" for path checkers.
        self.paths.provide(f"/run/{unit.name}.pid")

    def _poll_for(self, path: str, dep_job) -> "ProcessGenerator":
        polls = 0
        while not self.paths.exists(path):
            # A ready dependency that will never create the probe path
            # (no provides declared) is detected via its pid file.
            if dep_job.ready is not None and dep_job.ready.fired:
                break
            yield Compute(self.poll_cpu_ns)
            polls += 1
            yield Timeout(self.poll_interval_ns)
        return polls
