"""The Pre-parser: build-time parsing of unit files (§3.3, Fig. 6(d)).

Without BB, systemd reads and parses every unit file at boot ("text files
written by hundreds of services") and resolves the dependency lists into
its in-memory graph.  The Pre-parser does both at *build time* and ships a
compact binary cache, so boot pays one sequential read plus a cheap
deserialization instead of hundreds of file operations and text parses.

The cost model is explicit and calibrated against Fig. 6(d): on the
Tizen TV workload the cache saves ~150 ms of "loading services" and
~231 ms of "parsing service dependencies".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.hw.storage import AccessPattern, StorageDevice
from repro.initsys.registry import UnitRegistry
from repro.quantities import usec
from repro.sim.process import Compute

if TYPE_CHECKING:
    from repro.sim.engine import Simulator
    from repro.sim.process import ProcessGenerator


def dependency_edge_count(registry: UnitRegistry) -> int:
    """Total declared dependency/ordering references across the registry."""
    return sum(len(u.requires) + len(u.wants) + len(u.before) + len(u.after)
               + len(u.conflicts) for u in registry)


def registry_fingerprint(registry: UnitRegistry) -> str:
    """Stable content hash of every unit file in the registry.

    §2.5's dynamicity is why this exists: "users may install additional
    services, services may be updated ... or a service may update its own
    description at any time".  A cache built before such a change must be
    detected as stale at boot.
    """
    import hashlib

    digest = hashlib.sha256()
    for name in sorted(registry.names):
        digest.update(name.encode())
        digest.update(registry.dump_unit_text(name).encode())
    return digest.hexdigest()


@dataclass(frozen=True, slots=True)
class PreParsedCache:
    """A build-time parse cache for one unit set.

    Attributes:
        unit_count: Units serialized into the cache.
        edge_count: Pre-resolved dependency references.
        blob_bytes: On-disk cache size (compact binary, smaller than text).
        fingerprint: Content hash of the unit files the cache was built
            from; a mismatch at boot means the cache is stale.
    """

    unit_count: int
    edge_count: int
    blob_bytes: int
    fingerprint: str = ""

    def is_fresh(self, registry: UnitRegistry) -> bool:
        """Whether the cache still matches the on-disk unit files."""
        return bool(self.fingerprint) and \
            self.fingerprint == registry_fingerprint(registry)


class PreParser:
    """Build-time parser and boot-time loader with explicit cost model.

    Args:
        file_op_ns: CPU cost of one file operation (stat/open/read/close).
        file_ops_per_unit: File operations systemd performs per unit when
            loading from text (unit file, drop-in dirs, aliases...).
        parse_base_ns: Fixed parse cost per unit file.
        parse_per_byte_ns: Parse cost per byte of unit-file text.
        resolve_per_edge_ns: Cost of resolving one dependency reference
            into the in-memory graph (list scans, hash inserts).
        cached_unit_ns: Deserialization cost per unit when loading the
            binary cache.
        cache_compression: Cache size as a fraction of the text size.
    """

    def __init__(self, file_op_ns: int = usec(145),
                 file_ops_per_unit: int = 9,
                 parse_base_ns: int = usec(140),
                 parse_per_byte_ns: float = 150.0,
                 resolve_per_edge_ns: int = usec(600),
                 cached_unit_ns: int = usec(18),
                 cache_compression: float = 0.45):
        if min(file_op_ns, file_ops_per_unit, parse_base_ns,
               resolve_per_edge_ns, cached_unit_ns) < 0:
            raise ConfigurationError("pre-parser costs cannot be negative")
        if not 0.0 < cache_compression <= 1.0:
            raise ConfigurationError(
                f"cache_compression must be in (0, 1]: {cache_compression}")
        self.file_op_ns = file_op_ns
        self.file_ops_per_unit = file_ops_per_unit
        self.parse_base_ns = parse_base_ns
        self.parse_per_byte_ns = parse_per_byte_ns
        self.resolve_per_edge_ns = resolve_per_edge_ns
        self.cached_unit_ns = cached_unit_ns
        self.cache_compression = cache_compression

    # -------------------------------------------------------------- build

    def build_cache(self, registry: UnitRegistry) -> PreParsedCache:
        """Produce the build-time cache for a unit set (costs nothing at boot)."""
        text_bytes = registry.total_text_bytes()
        return PreParsedCache(
            unit_count=len(registry),
            edge_count=dependency_edge_count(registry),
            blob_bytes=max(1, round(text_bytes * self.cache_compression)),
            fingerprint=registry_fingerprint(registry),
        )

    # ----------------------------------------------------- cost estimation

    def text_loading_cpu_ns(self, registry: UnitRegistry) -> int:
        """CPU portion of loading every unit file from text."""
        per_unit = self.file_op_ns * self.file_ops_per_unit
        return per_unit * len(registry)

    def text_parsing_cpu_ns(self, registry: UnitRegistry) -> int:
        """CPU portion of parsing text and resolving the dependency graph."""
        parse = sum(self.parse_base_ns
                    + round(self.parse_per_byte_ns
                            * len(registry.dump_unit_text(u.name).encode()))
                    for u in registry)
        resolve = self.resolve_per_edge_ns * dependency_edge_count(registry)
        return parse + resolve

    # --------------------------------------------------------- boot loading

    def load_from_text(self, engine: "Simulator", registry: UnitRegistry,
                       storage: StorageDevice) -> "ProcessGenerator":
        """Generator: the conventional boot-time load (no cache).

        Charges two traced phases exactly as Fig. 6(d) splits them:
        ``init.load-units`` (file operations + storage reads) and
        ``init.parse-deps`` (text parse + dependency resolution).
        """
        load_span = engine.tracer.begin("init.load-units", "init-task")
        total_bytes = registry.total_text_bytes()
        yield Compute(self.text_loading_cpu_ns(registry))
        yield from storage.read(total_bytes, AccessPattern.RANDOM)
        engine.tracer.end(load_span)

        parse_span = engine.tracer.begin("init.parse-deps", "init-task")
        yield Compute(self.text_parsing_cpu_ns(registry))
        engine.tracer.end(parse_span)

    def load_from_cache(self, engine: "Simulator", cache: PreParsedCache,
                        storage: StorageDevice) -> "ProcessGenerator":
        """Generator: the BB boot-time load from the pre-parsed cache."""
        load_span = engine.tracer.begin("init.load-units", "init-task", cached=True)
        yield from storage.read(cache.blob_bytes, AccessPattern.SEQUENTIAL)
        engine.tracer.end(load_span)

        parse_span = engine.tracer.begin("init.parse-deps", "init-task", cached=True)
        yield Compute(self.cached_unit_ns * cache.unit_count)
        engine.tracer.end(parse_span)
