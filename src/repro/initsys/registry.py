"""The unit registry: every unit the init manager knows about."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import UnitError, UnitNotFoundError
from repro.initsys.unitfile import parse_unit_file, render_unit_file
from repro.initsys.units import Unit


class UnitRegistry:
    """A named collection of units with reference validation."""

    def __init__(self, units: Iterable[Unit] = ()):
        self._units: dict[str, Unit] = {}
        for unit in units:
            self.add(unit)

    def add(self, unit: Unit) -> None:
        """Register a unit.

        Raises:
            UnitError: On duplicate names.
        """
        if unit.name in self._units:
            raise UnitError(f"duplicate unit {unit.name!r}")
        self._units[unit.name] = unit

    def replace(self, unit: Unit) -> None:
        """Register or overwrite a unit (service updates, §2.5)."""
        self._units[unit.name] = unit

    def remove(self, name: str) -> None:
        """Remove a unit.

        Raises:
            UnitNotFoundError: If absent.
        """
        if name not in self._units:
            raise UnitNotFoundError(name)
        del self._units[name]

    def get(self, name: str) -> Unit:
        """Look up a unit.

        Raises:
            UnitNotFoundError: If absent.
        """
        try:
            return self._units[name]
        except KeyError:
            raise UnitNotFoundError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._units

    def __len__(self) -> int:
        return len(self._units)

    def __iter__(self) -> Iterator[Unit]:
        return iter(self._units.values())

    @property
    def names(self) -> list[str]:
        """All unit names, in registration order."""
        return list(self._units)

    def load_unit_text(self, text: str, name: str) -> Unit:
        """Parse unit-file text and register the resulting unit."""
        unit = Unit.from_parsed(parse_unit_file(text, name=name))
        self.add(unit)
        return unit

    def load_directory(self, path) -> list[Unit]:
        """Load every unit file from a directory (like /usr/lib/systemd).

        Files whose suffix is a known unit type (``.service``, ``.socket``,
        ``.mount``, ``.target``, ``.path``, ``.device``) are parsed and
        registered, in sorted filename order for determinism.  Drop-in
        directories are honoured: every ``<unit>.d/*.conf`` is merged onto
        its unit with systemd semantics (scalars override, list keys
        append, an empty assignment resets).

        Returns:
            The units loaded.

        Raises:
            UnitError: On duplicates; parse errors propagate as
                :class:`~repro.errors.UnitParseError` with the filename.
        """
        from pathlib import Path

        from repro.initsys.unitfile import merge_parsed
        from repro.initsys.units import UnitType

        suffixes = {f".{t.value}" for t in UnitType}
        directory = Path(path)
        loaded = []
        for file_path in sorted(directory.iterdir()):
            if file_path.suffix not in suffixes or not file_path.is_file():
                continue
            parsed = parse_unit_file(file_path.read_text(), name=file_path.name)
            dropin_dir = directory / f"{file_path.name}.d"
            if dropin_dir.is_dir():
                for conf in sorted(dropin_dir.glob("*.conf")):
                    overlay = parse_unit_file(conf.read_text(),
                                              name=str(conf.name))
                    overlay.name = parsed.name
                    parsed = merge_parsed(parsed, overlay)
            unit = Unit.from_parsed(parsed)
            self.add(unit)
            loaded.append(unit)
        return loaded

    def dump_unit_text(self, name: str) -> str:
        """Render a registered unit back to unit-file text."""
        return render_unit_file(self.get(name).to_parsed())

    def apply_install_sections(self) -> None:
        """Resolve ``WantedBy=``/``RequiredBy=`` into reverse dependencies.

        Equivalent to ``systemctl enable``: for each unit U with
        ``WantedBy=T``, add U to T's ``wants`` (respectively ``requires``).
        Unknown targets are ignored, matching systemd's behaviour for
        not-installed targets.
        """
        for unit in self:
            for target_name in unit.wanted_by:
                if target_name in self:
                    target = self.get(target_name)
                    if unit.name not in target.wants:
                        target.wants.append(unit.name)
            for target_name in unit.required_by:
                if target_name in self:
                    target = self.get(target_name)
                    if unit.name not in target.requires:
                        target.requires.append(unit.name)

    def dangling_references(self) -> dict[str, list[str]]:
        """References to units that do not exist, keyed by referrer.

        Ordering references (``Before``/``After``) to missing units are
        legal in systemd (they are ignored), but requirement references are
        reported so the Service Analyzer can flag them.
        """
        missing: dict[str, list[str]] = {}
        for unit in self:
            bad = [dep for dep in (*unit.requires, *unit.wants, *unit.conflicts)
                   if dep not in self]
            if bad:
                missing[unit.name] = bad
        return missing

    def total_text_bytes(self) -> int:
        """Total serialized size of every unit file (Pre-parser input size)."""
        return sum(len(self.dump_unit_text(name).encode()) for name in self.names)
