"""The Advanced Boot Script baseline (§2.5.2): run-levels.

Advanced Boot Script [Gooch 2002] was the first in-order init scheme with
parallelism, but with two limitations the paper calls out:

1. "It is based on run-levels ... and run-levels are in a total order.
   Programs in different run-levels cannot be invoked in parallel."
2. "It does not allow system developers ... to prioritize specific
   programs for faster booting."

The scheme derives each unit's run-level from its dependency depth (the
longest ordering chain beneath it), starts one level at a time, runs the
level's units fully in parallel, and only advances when **every** unit of
the level is ready — the inter-level barrier that systemd removed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hw.storage import StorageDevice
from repro.initsys.executor import PathRegistry, ServiceRunner
from repro.initsys.registry import UnitRegistry
from repro.initsys.transaction import Transaction
from repro.initsys.units import UnitType
from repro.kernel.rcu import RCUSubsystem
from repro.sim.process import Wait

if TYPE_CHECKING:
    from repro.sim.engine import Simulator
    from repro.sim.process import Process, ProcessGenerator


class AdvancedBootScript:
    """Run-level init: in-order, parallel within a level, barrier between."""

    def __init__(self, engine: "Simulator", registry: UnitRegistry,
                 storage: StorageDevice, rcu: RCUSubsystem,
                 goal: str, completion_units: tuple[str, ...],
                 preexisting_paths: set[str] | None = None):
        self._engine = engine
        self.registry = registry
        self.storage = storage
        self.rcu = rcu
        self.goal = goal
        self.completion_units = completion_units
        self.paths = PathRegistry(engine, preexisting=preexisting_paths)
        self.transaction: Transaction | None = None
        self.levels: list[list[str]] = []
        self.boot_complete_ns: int | None = None

    def compute_levels(self) -> list[list[str]]:
        """Partition the transaction into run-levels by dependency depth."""
        assert self.transaction is not None
        predecessors: dict[str, list[str]] = {name: []
                                              for name in self.transaction.jobs}
        for edge in self.transaction.edges:
            predecessors[edge.successor].append(edge.predecessor)

        depth: dict[str, int] = {}

        def depth_of(name: str) -> int:
            if name in depth:
                return depth[name]
            depth[name] = 0  # cycle guard; transaction is already acyclic
            preds = predecessors[name]
            depth[name] = 1 + max((depth_of(p) for p in preds), default=-1)
            return depth[name]

        max_depth = 0
        for name in self.transaction.jobs:
            max_depth = max(max_depth, depth_of(name))
        levels: list[list[str]] = [[] for _ in range(max_depth + 1)]
        for name in sorted(self.transaction.jobs):
            levels[depth[name]].append(name)
        return levels

    def spawn(self) -> "Process":
        """Start the run-level init as the init process."""
        return self._engine.spawn(self.run(), name="abs-init", priority=50)

    def run(self) -> "ProcessGenerator":
        """Generator: the whole run-level boot."""
        engine = self._engine
        self.registry.apply_install_sections()
        self.transaction = Transaction(self.registry, [self.goal])
        self.levels = self.compute_levels()
        runner = ServiceRunner(engine, self.storage, self.rcu, self.paths)
        remaining_completion = set(self.completion_units)

        for level_index, level in enumerate(self.levels):
            span = engine.tracer.begin(f"runlevel-{level_index}", "runlevel")
            workers = []
            for name in level:
                job = self.transaction.job(name)
                job.started = engine.completion(f"{name}.started")
                job.ready = engine.completion(f"{name}.ready")
                if job.unit.unit_type is UnitType.TARGET:
                    job.started.fire(name)
                    job.ready.fire(name)
                    job.started_at_ns = job.ready_at_ns = engine.now
                    job.done_at_ns = engine.now
                    continue
                workers.append(engine.spawn(runner.run(job),
                                            name=f"abs:{name}", priority=100))
            # The run-level barrier: nothing from the next level starts
            # until everything in this one is done.
            for worker in workers:
                if worker.alive:
                    yield Wait(worker.done)
            engine.tracer.end(span)
            for name in level:
                remaining_completion.discard(name)
            if not remaining_completion and self.boot_complete_ns is None:
                self.boot_complete_ns = engine.now
                engine.tracer.instant("boot.complete", "boot-stage")
        return self.boot_complete_ns
