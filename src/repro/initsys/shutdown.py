"""Shutdown sequencing: the other half of process life-cycle management.

§2.5: the init process "takes charge of user process management,
including boot-up and shut-down sequences".  Shutdown matters to BB's
story because the hibernation alternative must *write* its snapshot at
shutdown (§2.1), so a TV that powers off slowly cannot be unplugged —
exactly the user behaviour that rules snapshot booting out.

Stop semantics mirror systemd: units stop in reverse dependency order — a
unit is stopped only after everything that depends on it has stopped —
with independent units stopping in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.initsys.registry import UnitRegistry
from repro.initsys.transaction import EdgeKind, Transaction
from repro.initsys.units import Unit, UnitType
from repro.sim.process import Compute, Wait

if TYPE_CHECKING:
    from repro.sim.engine import Simulator
    from repro.sim.process import Process, ProcessGenerator
    from repro.sim.sync import Completion


@dataclass(slots=True)
class ShutdownReport:
    """Outcome of one shutdown sequence."""

    duration_ns: int
    stop_order: list[str]

    @property
    def stopped(self) -> int:
        """Number of units stopped."""
        return len(self.stop_order)


class ShutdownSequencer:
    """Stops a booted system's units in reverse dependency order."""

    def __init__(self, engine: "Simulator", registry: UnitRegistry,
                 goal: str = "multi-user.target"):
        self._engine = engine
        self.registry = registry
        self.goal = goal
        self.report: ShutdownReport | None = None

    def spawn(self, running_units: Iterable[str] | None = None) -> "Process":
        """Start the shutdown as a simulated process.

        Args:
            running_units: Units currently up; defaults to the goal's
                whole transaction.
        """
        return self._engine.spawn(self.run(running_units), name="shutdown",
                                  priority=40)

    def run(self, running_units: Iterable[str] | None = None) -> "ProcessGenerator":
        """Generator: execute the full shutdown; returns the report."""
        engine = self._engine
        start = engine.now
        transaction = Transaction(self.registry, [self.goal])
        if running_units is None:
            names = [n for n in transaction.jobs
                     if transaction.job(n).unit.unit_type is not UnitType.TARGET]
        else:
            names = [n for n in running_units if n in transaction]

        # Reverse the boot ordering: a unit stops once all its ordering
        # successors (the units that needed it) have stopped.
        name_set = set(names)
        stop_gates: dict[str, "Completion"] = {
            name: engine.completion(f"{name}.stopped") for name in names}
        blockers: dict[str, list[str]] = {name: [] for name in names}
        for edge in transaction.edges:
            if edge.kind is EdgeKind.WEAK:
                continue  # weak ordering does not constrain shutdown
            if edge.predecessor in name_set and edge.successor in name_set:
                blockers[edge.predecessor].append(edge.successor)

        stop_order: list[str] = []

        def stopper(unit: Unit) -> "ProcessGenerator":
            for successor in blockers[unit.name]:
                gate = stop_gates[successor]
                if not gate.fired:
                    yield Wait(gate)
            span = engine.tracer.begin(f"stop:{unit.name}", "shutdown")
            yield Compute(unit.cost.stop_ns)
            engine.tracer.end(span)
            stop_order.append(unit.name)
            stop_gates[unit.name].fire(unit.name)

        workers = [engine.spawn(stopper(transaction.job(name).unit),
                                name=f"stop:{name}", priority=40)
                   for name in names]
        for worker in workers:
            if worker.alive:
                yield Wait(worker.done)
        self.report = ShutdownReport(duration_ns=engine.now - start,
                                     stop_order=stop_order)
        return self.report
