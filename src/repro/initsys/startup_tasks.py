"""Init-manager internal tasks with the paper's measured costs.

Two pools:

* :data:`STARTUP_TASKS` — the manager's own initialization (Fig. 6(b)).
  The six deferrable entries carry exactly the costs the paper defers
  ("enable logging scheme" 28 ms, "setup kernel module" 28 ms, "setup
  hostname" 13 ms, "setup machine ID" 9 ms, "setup loopback device"
  17 ms, "test directory" 29 ms — 124 ms total), leaving the 71 ms
  non-deferrable core that BB still pays.
* :data:`SUBMODULE_TASKS` — heavier init-scheme sub-modules that are "not
  required to start OS services" (§3.2); without BB they execute inside
  the service-launch phase, with BB the Deferred Executor runs them after
  boot completion, worth 496 ms (Fig. 6(c)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import UnitError
from repro.quantities import msec
from repro.sim.process import Compute

if TYPE_CHECKING:
    from repro.sim.engine import Simulator
    from repro.sim.process import ProcessGenerator


@dataclass(frozen=True, slots=True)
class StartupTask:
    """One manager-internal initialization task.

    Attributes:
        name: Task label as it appears in the paper's Fig. 6.
        cpu_ns: CPU cost of the task.
        deferrable: Whether BB may postpone it past boot completion.
    """

    name: str
    cpu_ns: int
    deferrable: bool

    def __post_init__(self) -> None:
        if self.cpu_ns < 0:
            raise UnitError(f"startup task {self.name}: negative cost")

    def run(self, engine: "Simulator") -> "ProcessGenerator":
        """Generator: execute the task."""
        span = engine.tracer.begin(f"init.{self.name}", "init-task",
                                   deferrable=self.deferrable)
        yield Compute(self.cpu_ns)
        engine.tracer.end(span)


#: Fig. 6(b): manager initialization; 71 ms core + 124 ms deferrable.
STARTUP_TASKS: tuple[StartupTask, ...] = (
    StartupTask("read-configuration", cpu_ns=msec(24), deferrable=False),
    StartupTask("mount-api-filesystems", cpu_ns=msec(21), deferrable=False),
    StartupTask("setup-signals-and-cgroups", cpu_ns=msec(16), deferrable=False),
    StartupTask("initialize-job-engine", cpu_ns=msec(10), deferrable=False),
    StartupTask("enable-logging-scheme", cpu_ns=msec(28), deferrable=True),
    StartupTask("setup-kernel-module", cpu_ns=msec(28), deferrable=True),
    StartupTask("setup-hostname", cpu_ns=msec(13), deferrable=True),
    StartupTask("setup-machine-id", cpu_ns=msec(9), deferrable=True),
    StartupTask("setup-loopback-device", cpu_ns=msec(17), deferrable=True),
    StartupTask("test-directory", cpu_ns=msec(29), deferrable=True),
)

#: §3.2 / Fig. 6(c): init-scheme sub-modules deferred by Deferred Executor.
SUBMODULE_TASKS: tuple[StartupTask, ...] = (
    StartupTask("journal-flush-and-rotate", cpu_ns=msec(118), deferrable=True),
    StartupTask("device-coldplug-scan", cpu_ns=msec(136), deferrable=True),
    StartupTask("cgroup-hierarchy-population", cpu_ns=msec(92), deferrable=True),
    StartupTask("session-seat-setup", cpu_ns=msec(84), deferrable=True),
    StartupTask("timer-and-calendar-setup", cpu_ns=msec(66), deferrable=True),
)


def core_startup_cost_ns() -> int:
    """Total cost of the non-deferrable manager start-up (71 ms)."""
    return sum(t.cpu_ns for t in STARTUP_TASKS if not t.deferrable)


def deferrable_startup_cost_ns() -> int:
    """Total cost BB removes from manager start-up (124 ms)."""
    return sum(t.cpu_ns for t in STARTUP_TASKS if t.deferrable)


def submodule_cost_ns() -> int:
    """Total init sub-module cost deferred by the Deferred Executor (496 ms)."""
    return sum(t.cpu_ns for t in SUBMODULE_TASKS)
