"""The sequential rcS baseline (§2.5, "BSD init" / SysVinit lineage).

One service at a time, in a deterministic topological order of the
declared dependencies: correct, but with zero parallelism — the scheme the
multi-core init evolution left behind.  Used by the ablation benches to
show where in-order parallel execution (systemd) and BB stand relative to
the starting point.
"""

from __future__ import annotations

from graphlib import TopologicalSorter
from typing import TYPE_CHECKING

from repro.errors import DependencyCycleError
from repro.hw.storage import StorageDevice
from repro.initsys.executor import PathRegistry, ServiceRunner
from repro.initsys.registry import UnitRegistry
from repro.initsys.transaction import Transaction
from repro.initsys.units import UnitType
from repro.kernel.rcu import RCUSubsystem

if TYPE_CHECKING:
    from repro.sim.engine import Simulator
    from repro.sim.process import Process, ProcessGenerator


class SysVInitScheme:
    """Start every unit of the goal's closure strictly sequentially."""

    def __init__(self, engine: "Simulator", registry: UnitRegistry,
                 storage: StorageDevice, rcu: RCUSubsystem,
                 goal: str, completion_units: tuple[str, ...],
                 preexisting_paths: set[str] | None = None):
        self._engine = engine
        self.registry = registry
        self.storage = storage
        self.rcu = rcu
        self.goal = goal
        self.completion_units = completion_units
        self.paths = PathRegistry(engine, preexisting=preexisting_paths)
        self.transaction: Transaction | None = None
        self.boot_complete_ns: int | None = None

    def start_order(self) -> list[str]:
        """Deterministic topological order of the transaction's units.

        Raises:
            DependencyCycleError: If the ordering graph is cyclic even
                after the transaction's weak-job cycle breaking.
        """
        assert self.transaction is not None
        sorter: TopologicalSorter[str] = TopologicalSorter()
        for name in self.transaction.jobs:
            sorter.add(name)
        for edge in self.transaction.edges:
            sorter.add(edge.successor, edge.predecessor)
        try:
            return list(sorter.static_order())
        except Exception as exc:  # graphlib.CycleError
            raise DependencyCycleError([self.goal]) from exc

    def spawn(self) -> "Process":
        """Start the sequential init as the init process."""
        return self._engine.spawn(self.run(), name="sysv-init", priority=50)

    def run(self) -> "ProcessGenerator":
        """Generator: the whole sequential boot."""
        engine = self._engine
        self.registry.apply_install_sections()
        self.transaction = Transaction(self.registry, [self.goal])
        runner = ServiceRunner(engine, self.storage, self.rcu, self.paths)
        remaining_completion = set(self.completion_units)
        for name in self.start_order():
            job = self.transaction.job(name)
            job.started = engine.completion(f"{name}.started")
            job.ready = engine.completion(f"{name}.ready")
            if job.unit.unit_type is UnitType.TARGET:
                job.started.fire(name)
                job.ready.fire(name)
                job.started_at_ns = job.ready_at_ns = job.done_at_ns = engine.now
            else:
                yield from runner.run(job)
            remaining_completion.discard(name)
            if not remaining_completion and self.boot_complete_ns is None:
                self.boot_complete_ns = engine.now
                engine.tracer.instant("boot.complete", "boot-stage")
        return self.boot_complete_ns
