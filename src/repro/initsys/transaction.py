"""Job transactions: dependency closure, ordering edges, cycle breaking.

Building a start transaction for a goal unit (normally
``multi-user.target``) follows systemd's model:

1. pull in the transitive closure of ``Requires`` and ``Wants``,
2. derive ordering edges — strong edges (wait until the predecessor is
   *ready*) from ``Requires``/``After``/``Before``, weak edges (wait until
   the predecessor has been *launched*) from ``Wants``,
3. verify no two units in the transaction conflict,
4. detect ordering cycles; a cycle is broken by deleting a job that is
   only weakly pulled (``Wants``), mirroring systemd's behaviour of
   dropping non-essential jobs; an all-strong cycle is a hard error —
   exactly the situation the paper's Fig. 3 warns about.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.errors import DependencyCycleError, TransactionError, UnitNotFoundError
from repro.initsys.registry import UnitRegistry
from repro.initsys.units import Unit

if TYPE_CHECKING:
    from repro.sim.sync import Completion


class JobState(enum.Enum):
    """Lifecycle of a start job."""

    WAITING = "waiting"  # ordering predecessors not yet satisfied
    RUNNING = "running"  # start work in progress
    READY = "ready"  # unit active (dependents may proceed)
    DONE = "done"  # start work fully finished
    FAILED = "failed"
    SKIPPED = "skipped"  # condition (ConditionPathExists) not met


class EdgeKind(enum.Enum):
    """Ordering edge strength (the red/green split of Fig. 2)."""

    STRONG = "strong"  # successor waits for predecessor readiness
    WEAK = "weak"  # successor waits for predecessor launch


@dataclass(frozen=True, slots=True)
class OrderingEdge:
    """``successor`` must wait for ``predecessor`` (per ``kind``)."""

    predecessor: str
    successor: str
    kind: EdgeKind


@dataclass(slots=True)
class Job:
    """A start job for one unit within a transaction.

    The two completions implement the two ordering strengths: ``started``
    fires when the unit's main process has been launched, ``ready`` when
    the unit counts as active for its service type.
    """

    unit: Unit
    state: JobState = JobState.WAITING
    pulled_strongly: bool = True
    started: "Completion | None" = None
    ready: "Completion | None" = None
    settled: "Completion | None" = None  # fires on ready OR permanent failure
    started_at_ns: int | None = None
    ready_at_ns: int | None = None
    done_at_ns: int | None = None
    attempts: int = 0
    # Launch time of every attempt, in order; ``started_at_ns`` tracks the
    # most recent one (the attempt that eventually succeeded, for a unit
    # that was restarted), while the ``started`` completion keeps
    # first-fire semantics for dependents.
    attempt_started_ns: list[int] = field(default_factory=list)
    # Launch instants of *every* attempt including ones that crashed
    # before the unit counted as started (start-rate limiting counts
    # those too), and the backoff delay slept before each restart —
    # the §2.5.2 restart/backoff history the recovery report exports.
    attempt_began_ns: list[int] = field(default_factory=list)
    restart_delays_ns: list[int] = field(default_factory=list)
    failure_reason: str | None = None

    @property
    def name(self) -> str:
        """Unit name this job starts."""
        return self.unit.name


class Transaction:
    """A validated set of start jobs plus their ordering edges."""

    def __init__(self, registry: UnitRegistry, goals: Iterable[str]):
        self.registry = registry
        self.goals = list(goals)
        self.jobs: dict[str, Job] = {}
        self.edges: list[OrderingEdge] = []
        self.dropped_jobs: list[str] = []
        self._build()

    # ------------------------------------------------------------- building

    def _build(self) -> None:
        self._pull_closure()
        self._derive_edges()
        self._check_conflicts()
        self._break_cycles()

    def _pull_closure(self) -> None:
        """Closure over Requires (strong pull) and Wants (weak pull)."""
        queue: list[tuple[str, bool]] = [(goal, True) for goal in self.goals]
        while queue:
            name, strong = queue.pop(0)
            if name in self.jobs:
                if strong and not self.jobs[name].pulled_strongly:
                    self.jobs[name].pulled_strongly = True
                    # Re-walk so its requires become strongly pulled too.
                    unit = self.jobs[name].unit
                    queue.extend((dep, True) for dep in unit.requires)
                continue
            try:
                unit = self.registry.get(name)
            except UnitNotFoundError:
                if strong:
                    raise
                continue  # missing Wants are ignored, like systemd
            job = Job(unit=unit, pulled_strongly=strong)
            self.jobs[name] = job
            queue.extend((dep, strong) for dep in unit.requires)
            queue.extend((dep, False) for dep in unit.wants)

    def _derive_edges(self) -> None:
        seen: set[tuple[str, str, EdgeKind]] = set()

        def add(pred: str, succ: str, kind: EdgeKind) -> None:
            if pred not in self.jobs or succ not in self.jobs or pred == succ:
                return
            key = (pred, succ, kind)
            if key not in seen:
                seen.add(key)
                self.edges.append(OrderingEdge(pred, succ, kind))

        for job in self.jobs.values():
            unit = job.unit
            for dep in unit.requires:
                add(dep, unit.name, EdgeKind.STRONG)
            for dep in unit.wants:
                add(dep, unit.name, EdgeKind.WEAK)
            for dep in unit.after:
                add(dep, unit.name, EdgeKind.STRONG)
            for succ in unit.before:
                add(unit.name, succ, EdgeKind.STRONG)

    def _check_conflicts(self) -> None:
        for job in self.jobs.values():
            for enemy in job.unit.conflicts:
                if enemy in self.jobs:
                    raise TransactionError(
                        f"units {job.name!r} and {enemy!r} conflict but are "
                        f"both pulled into the transaction")

    def _break_cycles(self) -> None:
        """Delete weakly pulled jobs until the ordering graph is acyclic."""
        while True:
            cycle = self._find_cycle()
            if cycle is None:
                return
            victim = next((name for name in cycle
                           if not self.jobs[name].pulled_strongly
                           and name not in self.goals), None)
            if victim is None:
                raise DependencyCycleError(cycle)
            self._drop_job(victim)

    def _drop_job(self, name: str) -> None:
        del self.jobs[name]
        self.edges = [e for e in self.edges
                      if e.predecessor != name and e.successor != name]
        self.dropped_jobs.append(name)

    def _find_cycle(self) -> list[str] | None:
        """Iterative DFS cycle search over the ordering graph."""
        successors: dict[str, list[str]] = {name: [] for name in self.jobs}
        for edge in self.edges:
            successors[edge.predecessor].append(edge.successor)
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self.jobs}
        parent: dict[str, str] = {}
        for root in self.jobs:
            if color[root] != WHITE:
                continue
            stack: list[tuple[str, int]] = [(root, 0)]
            color[root] = GRAY
            while stack:
                node, index = stack[-1]
                if index < len(successors[node]):
                    stack[-1] = (node, index + 1)
                    child = successors[node][index]
                    if color[child] == GRAY:
                        # Reconstruct the cycle child -> ... -> node -> child.
                        cycle = [node]
                        walker = node
                        while walker != child:
                            walker = parent[walker]
                            cycle.append(walker)
                        cycle.reverse()
                        return cycle
                    if color[child] == WHITE:
                        color[child] = GRAY
                        parent[child] = node
                        stack.append((child, 0))
                else:
                    color[node] = BLACK
                    stack.pop()
        return None

    # -------------------------------------------------------------- queries

    def predecessors(self, name: str) -> list[OrderingEdge]:
        """Ordering edges pointing into ``name``."""
        return [e for e in self.edges if e.successor == name]

    def job(self, name: str) -> Job:
        """The job for ``name``.

        Raises:
            TransactionError: If the unit is not part of the transaction.
        """
        try:
            return self.jobs[name]
        except KeyError:
            raise TransactionError(f"unit {name!r} not in transaction") from None

    def __len__(self) -> int:
        return len(self.jobs)

    def __contains__(self, name: str) -> bool:
        return name in self.jobs
