"""The unit-file text format (systemd.unit syntax, Listing 1).

Unit files are INI-like::

    [Unit]
    Description=Summarized explanation of Myapp.service
    Before=socket.service

    [Service]
    Type=oneshot
    ExecStart=/usr/bin/myapp-service-daemon

    [Install]
    WantedBy=multi-user.target

Rules implemented (matching systemd):

* ``#`` and ``;`` start comment lines,
* a trailing backslash continues a value on the next line,
* repeated assignments to a *list* key accumulate; an empty assignment
  (``Requires=``) resets the accumulated list,
* repeated assignments to a scalar key keep the last value,
* section and key names are case-sensitive.

The parser records how many lines and bytes it consumed so the Pre-parser
(§3.3) can charge realistic boot-time costs for parsing a whole service
set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import UnitParseError

#: Keys whose values are whitespace-separated lists that accumulate.
LIST_KEYS = frozenset({
    "Requires", "Wants", "Before", "After", "Conflicts", "WantedBy",
    "RequiredBy", "OnFailure", "ProvidesPaths", "WaitsForPaths",
    "IpcTargets",
})


@dataclass(slots=True)
class ParsedUnitFile:
    """The raw parse result of one unit file.

    Attributes:
        name: Unit name (e.g. ``"dbus.service"``), from the filename.
        sections: Mapping of section name to key/value mapping; list keys
            map to lists of strings, scalar keys to strings.
        line_count: Number of physical lines parsed.
        byte_count: Number of bytes parsed.
    """

    name: str
    sections: dict[str, dict[str, object]] = field(default_factory=dict)
    line_count: int = 0
    byte_count: int = 0

    def get(self, section: str, key: str, default: object = None) -> object:
        """Value of ``key`` in ``section``, or ``default``."""
        return self.sections.get(section, {}).get(key, default)

    def get_list(self, section: str, key: str) -> list[str]:
        """List value of ``key`` in ``section`` (empty list if absent)."""
        value = self.get(section, key)
        if value is None:
            return []
        if isinstance(value, list):
            return list(value)
        raise UnitParseError(f"key {key} in [{section}] is not a list key", self.name)


class UnitFileParser:
    """Parses unit-file text into :class:`ParsedUnitFile` records."""

    def parse(self, text: str, name: str = "<string>") -> ParsedUnitFile:
        """Parse one unit file.

        Args:
            text: Unit file contents.
            name: Unit name, normally the filename (``foo.service``).

        Raises:
            UnitParseError: On malformed sections or assignments.
        """
        result = ParsedUnitFile(name=name, byte_count=len(text.encode()))
        current_section: str | None = None
        pending_key: str | None = None
        pending_value: list[str] = []
        lines = text.splitlines()
        result.line_count = len(lines)

        def commit_pending(lineno: int) -> None:
            nonlocal pending_key, pending_value
            if pending_key is None:
                return
            assert current_section is not None
            value = " ".join(pending_value)
            self._assign(result, current_section, pending_key, value, name, lineno)
            pending_key = None
            pending_value = []

        for lineno, raw_line in enumerate(lines, start=1):
            if pending_key is not None:
                # Continuation body of a backslash-extended value.
                stripped = raw_line.rstrip()
                if stripped.endswith("\\"):
                    pending_value.append(stripped[:-1].strip())
                else:
                    pending_value.append(stripped.strip())
                    commit_pending(lineno)
                continue
            line = raw_line.strip()
            if not line or line.startswith("#") or line.startswith(";"):
                continue
            if line.startswith("["):
                if not line.endswith("]") or len(line) < 3:
                    raise UnitParseError(f"malformed section header: {line!r}",
                                         name, lineno)
                current_section = line[1:-1]
                result.sections.setdefault(current_section, {})
                continue
            if "=" not in line:
                raise UnitParseError(f"expected 'Key=Value', got {line!r}",
                                     name, lineno)
            if current_section is None:
                raise UnitParseError(f"assignment outside any section: {line!r}",
                                     name, lineno)
            key, _, value = line.partition("=")
            key = key.strip()
            value = value.strip()
            if value.endswith("\\"):
                pending_key = key
                pending_value = [value[:-1].strip()]
                continue
            self._assign(result, current_section, key, value, name, lineno)

        if pending_key is not None:
            raise UnitParseError(f"dangling continuation for key {pending_key!r}",
                                 name, result.line_count)
        return result

    def _assign(self, result: ParsedUnitFile, section: str, key: str,
                value: str, name: str, lineno: int) -> None:
        if not key:
            raise UnitParseError("empty key", name, lineno)
        table = result.sections.setdefault(section, {})
        if key in LIST_KEYS:
            if value == "":
                table[key] = []  # systemd: empty assignment resets the list
            else:
                existing = table.setdefault(key, [])
                assert isinstance(existing, list)
                existing.extend(value.split())
        else:
            table[key] = value


def parse_unit_file(text: str, name: str = "<string>") -> ParsedUnitFile:
    """Convenience wrapper around :class:`UnitFileParser`."""
    return UnitFileParser().parse(text, name=name)


def merge_parsed(base: ParsedUnitFile, overlay: ParsedUnitFile) -> ParsedUnitFile:
    """Apply a drop-in overlay to a parsed unit file (systemd semantics).

    Scalar keys in the overlay override the base; list keys *append* to
    the base — except that an overlay which reset the list (``Requires=``
    with an empty value parses to ``[]``) replaces it, which is exactly
    how administrators neutralize a vendor's abusive ordering without
    touching the vendor's file.
    """
    merged = ParsedUnitFile(name=base.name,
                            line_count=base.line_count + overlay.line_count,
                            byte_count=base.byte_count + overlay.byte_count)
    for section, table in base.sections.items():
        merged.sections[section] = {
            key: (list(value) if isinstance(value, list) else value)
            for key, value in table.items()}
    for section, table in overlay.sections.items():
        target = merged.sections.setdefault(section, {})
        for key, value in table.items():
            if isinstance(value, list):
                if not value:
                    target[key] = []  # explicit reset
                else:
                    existing = target.get(key)
                    if isinstance(existing, list):
                        target[key] = existing + list(value)
                    else:
                        target[key] = list(value)
            else:
                target[key] = value
    return merged


def render_unit_file(parsed: ParsedUnitFile) -> str:
    """Serialize a :class:`ParsedUnitFile` back to unit-file text.

    Round-trips with :func:`parse_unit_file` (comments are not preserved —
    they are not part of the parse result).
    """
    chunks: list[str] = []
    for section, table in parsed.sections.items():
        chunks.append(f"[{section}]")
        for key, value in table.items():
            if isinstance(value, list):
                if value:
                    chunks.append(f"{key}={' '.join(value)}")
                else:
                    chunks.append(f"{key}=")
            else:
                chunks.append(f"{key}={value}")
        chunks.append("")
    return "\n".join(chunks)
