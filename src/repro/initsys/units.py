"""Semantic unit model: services, sockets, mounts, targets, and costs.

Dependency semantics follow the paper's reading of systemd (§2.5.2 and
Fig. 2):

* ``Requires`` — strong dependency: the required unit is pulled into the
  transaction **and** this unit starts only after it is ready
  ("launch B after A is ready", the red edges of Fig. 2),
* ``Wants`` — weak dependency: the wanted unit is pulled in, and this unit
  is not launched before the wanted unit is launched
  ("launch B not before launching A", the green edges),
* ``Before`` / ``After`` — pure ordering, no pulling,
* ``Conflicts`` — the two units cannot be in the same transaction,
* ``ConditionPathExists`` — skip the unit when the path is absent
  ("I want to be launched after file path D is available" becomes an
  ``After`` on the providing unit *or* a condition skip).

Each unit carries a :class:`SimCost` describing the simulated work of its
start job; in unit-file form it lives in a vendor ``[X-Simulation]``
section, so workload definitions are plain unit files.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.errors import UnitError, UnitParseError
from repro.initsys.unitfile import ParsedUnitFile
from repro.quantities import usec


class UnitType(enum.Enum):
    """Unit kinds, derived from the name suffix."""

    SERVICE = "service"
    SOCKET = "socket"
    MOUNT = "mount"
    TARGET = "target"
    PATH = "path"
    DEVICE = "device"

    @classmethod
    def from_name(cls, name: str) -> "UnitType":
        """Derive the type from a unit name's suffix.

        Raises:
            UnitError: If the suffix is not a known unit type.
        """
        _, _, suffix = name.rpartition(".")
        for member in cls:
            if member.value == suffix:
                return member
        raise UnitError(f"unknown unit type for {name!r}")


class ServiceType(enum.Enum):
    """``Type=`` of a service: when is the unit considered started?"""

    SIMPLE = "simple"  # started as soon as the process is forked
    FORKING = "forking"  # started when the initial process forks a daemon
    ONESHOT = "oneshot"  # started when ExecStart completes
    NOTIFY = "notify"  # started when the daemon signals readiness


class RestartPolicy(enum.Enum):
    """``Restart=`` recovery policy (the init scheme's monitoring and
    recovery mechanism, §2.5.2).

    ``on-failure`` restarts after any failed attempt (crash or watchdog
    timeout), ``on-watchdog`` only after a ``JobTimeout`` interruption,
    and ``always`` restarts regardless of the failure kind and ignores
    ``max_restarts`` — it is bounded only by the unit's start-rate limit
    (``StartLimitBurst``/``StartLimitIntervalNs``), like systemd.
    """

    NO = "no"
    ON_FAILURE = "on-failure"
    ON_WATCHDOG = "on-watchdog"
    ALWAYS = "always"


#: systemd's DefaultStartLimitBurst / DefaultStartLimitIntervalSec:
#: at most 5 starts within any 10 s window for rate-limited policies.
DEFAULT_START_LIMIT_BURST = 5
DEFAULT_START_LIMIT_INTERVAL_NS = 10_000_000_000


def default_service_type(unit_type: "UnitType") -> ServiceType:
    """Start semantics a unit type gets when no ``Type=`` is declared.

    Mount and socket jobs complete when the mount/listen succeeds —
    oneshot semantics; services default to ``simple`` as in systemd.
    """
    if unit_type in (UnitType.MOUNT, UnitType.SOCKET):
        return ServiceType.ONESHOT
    return ServiceType.SIMPLE


@dataclass(frozen=True, slots=True)
class SimCost:
    """Simulated cost of starting (and running) a unit.

    Attributes:
        fork_ns: Manager-side cost of forking the unit's main process.
        exec_bytes: Binary + library bytes read from storage at exec time.
        dynamic_link_ns: Dynamic-linker CPU cost (0 for statically built
            BB-Group binaries, §5).
        init_cpu_ns: CPU work of the service's own initialization.
        rcu_syncs: Number of ``synchronize_rcu`` calls issued during
            initialization (driver-ish services do several).
        hw_settle_ns: Hardware settle time (tuner lock, panel power-up).
        ready_extra_ns: Additional delay between finishing work and
            signalling readiness (notify services).
        processes: Number of OS processes the service comprises (a
            service averages about three, §2.5); scales the fork cost.
        stop_ns: Time to stop the unit at shutdown (signal + exit wait).
        memory_bytes: Resident memory once running (memory-pressure
            management input, §2.5).
    """

    fork_ns: int = usec(300)
    exec_bytes: int = 256 * 1024
    dynamic_link_ns: int = usec(900)
    init_cpu_ns: int = usec(2_000)
    rcu_syncs: int = 0
    hw_settle_ns: int = 0
    ready_extra_ns: int = 0
    processes: int = 1
    stop_ns: int = usec(2_000)
    memory_bytes: int = 4 * 1024 * 1024

    def __post_init__(self) -> None:
        if min(self.fork_ns, self.exec_bytes, self.dynamic_link_ns,
               self.init_cpu_ns, self.rcu_syncs, self.hw_settle_ns,
               self.ready_extra_ns, self.stop_ns, self.memory_bytes) < 0:
            raise UnitError("SimCost fields cannot be negative")
        if self.processes < 1:
            raise UnitError("a unit has at least one process")


@dataclass(slots=True)
class Unit:
    """One unit known to the init manager."""

    name: str
    description: str = ""
    service_type: ServiceType = ServiceType.SIMPLE
    requires: list[str] = field(default_factory=list)
    wants: list[str] = field(default_factory=list)
    before: list[str] = field(default_factory=list)
    after: list[str] = field(default_factory=list)
    conflicts: list[str] = field(default_factory=list)
    condition_paths: list[str] = field(default_factory=list)
    wanted_by: list[str] = field(default_factory=list)
    required_by: list[str] = field(default_factory=list)
    provides_paths: list[str] = field(default_factory=list)
    waits_for_paths: list[str] = field(default_factory=list)
    # Socket-activation clients: services whose readiness this unit's
    # FIRST IPC call blocks on (the kernel buffers the connect, so the
    # unit launches and initializes in parallel with the provider and
    # only synchronizes at the call — systemd's parallelization trick).
    ipc_targets: list[str] = field(default_factory=list)
    cost: SimCost = field(default_factory=SimCost)
    static_build: bool = False
    bb_deferrable: bool = False
    restart_policy: RestartPolicy = RestartPolicy.NO
    restart_delay_ns: int = 100_000_000
    max_restarts: int = 3
    failures_before_success: int = 0
    start_timeout_ns: int = 0  # 0 = no watchdog (JobTimeoutSec=infinity)
    # §2.5.2 escalation knobs: OnFailure= units activated when this unit
    # fails permanently, systemd-style start-rate limiting (0 burst means
    # "use the policy default": unlimited unless Restart=always, which
    # falls back to the systemd 5-per-10 s default), and the exponential
    # growth factor applied to restart_delay_ns between restarts.
    on_failure: list[str] = field(default_factory=list)
    start_limit_burst: int = 0
    start_limit_interval_ns: int = DEFAULT_START_LIMIT_INTERVAL_NS
    restart_backoff_factor: float = 1.0
    unit_type: UnitType = field(init=False)

    def __post_init__(self) -> None:
        self.unit_type = UnitType.from_name(self.name)
        if self.name in self.requires or self.name in self.wants:
            raise UnitError(f"{self.name}: unit depends on itself")
        if self.name in self.on_failure:
            raise UnitError(f"{self.name}: unit is its own OnFailure handler")
        if self.restart_backoff_factor < 1.0:
            raise UnitError(f"{self.name}: restart_backoff_factor must be "
                            f">= 1.0, got {self.restart_backoff_factor}")
        if self.start_limit_burst < 0 or self.start_limit_interval_ns < 0:
            raise UnitError(f"{self.name}: start-limit values cannot be "
                            f"negative")

    @property
    def is_daemon(self) -> bool:
        """Whether the main process keeps running after start-up."""
        return (self.unit_type is UnitType.SERVICE
                and self.service_type is not ServiceType.ONESHOT)

    def with_cost(self, **changes: object) -> "Unit":
        """Copy of this unit with :class:`SimCost` fields replaced."""
        clone = replace_unit(self)
        clone.cost = replace(self.cost, **changes)  # type: ignore[arg-type]
        return clone

    @classmethod
    def from_parsed(cls, parsed: ParsedUnitFile) -> "Unit":
        """Build a semantic unit from a parsed unit file.

        Raises:
            UnitParseError: On invalid ``Type=`` or ``[X-Simulation]`` values.
        """
        declared = parsed.get("Service", "Type")
        if declared is None:
            service_type = default_service_type(UnitType.from_name(parsed.name))
        else:
            try:
                service_type = ServiceType(str(declared))
            except ValueError:
                raise UnitParseError(f"invalid Type={declared!r}",
                                     parsed.name) from None

        def sim_int(key: str, default: int) -> int:
            raw = parsed.get("X-Simulation", key)
            if raw is None:
                return default
            try:
                return int(str(raw))
            except ValueError:
                raise UnitParseError(
                    f"[X-Simulation] {key} must be an integer, got {raw!r}",
                    parsed.name) from None

        default_cost = SimCost()
        cost = SimCost(
            fork_ns=sim_int("ForkNs", default_cost.fork_ns),
            exec_bytes=sim_int("ExecBytes", default_cost.exec_bytes),
            dynamic_link_ns=sim_int("DynamicLinkNs", default_cost.dynamic_link_ns),
            init_cpu_ns=sim_int("InitCpuNs", default_cost.init_cpu_ns),
            rcu_syncs=sim_int("RcuSyncs", default_cost.rcu_syncs),
            hw_settle_ns=sim_int("HwSettleNs", default_cost.hw_settle_ns),
            ready_extra_ns=sim_int("ReadyExtraNs", default_cost.ready_extra_ns),
            processes=sim_int("Processes", default_cost.processes),
            stop_ns=sim_int("StopNs", default_cost.stop_ns),
            memory_bytes=sim_int("MemoryBytes", default_cost.memory_bytes),
        )
        restart_value = str(parsed.get("Service", "Restart", "no"))
        try:
            restart_policy = RestartPolicy(restart_value)
        except ValueError:
            raise UnitParseError(f"invalid Restart={restart_value!r}",
                                 parsed.name) from None

        def unit_int(section: str, key: str, default: int) -> int:
            raw = parsed.get(section, key)
            if raw is None:
                return default
            try:
                value = int(str(raw))
            except ValueError:
                raise UnitParseError(
                    f"[{section}] {key} must be an integer, got {raw!r}",
                    parsed.name) from None
            if value < 0:
                raise UnitParseError(
                    f"[{section}] {key} cannot be negative, got {value}",
                    parsed.name)
            return value

        backoff_raw = parsed.get("Service", "RestartBackoffFactor")
        if backoff_raw is None:
            backoff_factor = 1.0
        else:
            try:
                backoff_factor = float(str(backoff_raw))
            except ValueError:
                raise UnitParseError(
                    f"[Service] RestartBackoffFactor must be a number, "
                    f"got {backoff_raw!r}", parsed.name) from None
            if backoff_factor < 1.0:
                raise UnitParseError(
                    f"[Service] RestartBackoffFactor must be >= 1.0, "
                    f"got {backoff_raw!r}", parsed.name)
        condition = parsed.get("Unit", "ConditionPathExists")
        return cls(
            name=parsed.name,
            description=str(parsed.get("Unit", "Description", "")),
            service_type=service_type,
            requires=parsed.get_list("Unit", "Requires"),
            wants=parsed.get_list("Unit", "Wants"),
            before=parsed.get_list("Unit", "Before"),
            after=parsed.get_list("Unit", "After"),
            conflicts=parsed.get_list("Unit", "Conflicts"),
            condition_paths=[str(condition)] if condition else [],
            wanted_by=parsed.get_list("Install", "WantedBy"),
            required_by=parsed.get_list("Install", "RequiredBy"),
            provides_paths=parsed.get_list("X-Simulation", "ProvidesPaths"),
            waits_for_paths=parsed.get_list("X-Simulation", "WaitsForPaths"),
            ipc_targets=parsed.get_list("X-Simulation", "IpcTargets"),
            cost=cost,
            static_build=str(parsed.get("X-Simulation", "StaticBuild", "no")) == "yes",
            bb_deferrable=str(parsed.get("X-Simulation", "BBDeferrable", "no")) == "yes",
            restart_policy=restart_policy,
            restart_delay_ns=sim_int("RestartDelayNs", 100_000_000),
            max_restarts=sim_int("MaxRestarts", 3),
            failures_before_success=sim_int("FailuresBeforeSuccess", 0),
            start_timeout_ns=sim_int("StartTimeoutNs", 0),
            on_failure=parsed.get_list("Unit", "OnFailure"),
            start_limit_burst=unit_int("Unit", "StartLimitBurst", 0),
            start_limit_interval_ns=unit_int(
                "Unit", "StartLimitIntervalNs",
                DEFAULT_START_LIMIT_INTERVAL_NS),
            restart_backoff_factor=backoff_factor,
        )

    def to_parsed(self) -> ParsedUnitFile:
        """Serialize back to a :class:`ParsedUnitFile` (for render/round-trip)."""
        sections: dict[str, dict[str, object]] = {"Unit": {}}
        unit_section = sections["Unit"]
        if self.description:
            unit_section["Description"] = self.description
        for key, values in (("Requires", self.requires), ("Wants", self.wants),
                            ("Before", self.before), ("After", self.after),
                            ("Conflicts", self.conflicts)):
            if values:
                unit_section[key] = list(values)
        if self.condition_paths:
            unit_section["ConditionPathExists"] = self.condition_paths[0]
        if self.on_failure:
            unit_section["OnFailure"] = list(self.on_failure)
        if self.start_limit_burst:
            unit_section["StartLimitBurst"] = str(self.start_limit_burst)
        if self.start_limit_interval_ns != DEFAULT_START_LIMIT_INTERVAL_NS:
            unit_section["StartLimitIntervalNs"] = str(
                self.start_limit_interval_ns)
        if (self.unit_type is UnitType.SERVICE
                or self.service_type is not default_service_type(self.unit_type)):
            sections["Service"] = {"Type": self.service_type.value}
        if self.restart_policy is not RestartPolicy.NO:
            sections.setdefault("Service", {})["Restart"] = self.restart_policy.value
        if self.restart_backoff_factor != 1.0:
            sections.setdefault("Service", {})["RestartBackoffFactor"] = (
                repr(self.restart_backoff_factor))
        install: dict[str, object] = {}
        if self.wanted_by:
            install["WantedBy"] = list(self.wanted_by)
        if self.required_by:
            install["RequiredBy"] = list(self.required_by)
        if install:
            sections["Install"] = install
        sim: dict[str, object] = {
            "ForkNs": str(self.cost.fork_ns),
            "ExecBytes": str(self.cost.exec_bytes),
            "DynamicLinkNs": str(self.cost.dynamic_link_ns),
            "InitCpuNs": str(self.cost.init_cpu_ns),
            "RcuSyncs": str(self.cost.rcu_syncs),
            "HwSettleNs": str(self.cost.hw_settle_ns),
            "ReadyExtraNs": str(self.cost.ready_extra_ns),
            "Processes": str(self.cost.processes),
            "StopNs": str(self.cost.stop_ns),
            "MemoryBytes": str(self.cost.memory_bytes),
        }
        if self.restart_delay_ns != 100_000_000:
            sim["RestartDelayNs"] = str(self.restart_delay_ns)
        if self.max_restarts != 3:
            sim["MaxRestarts"] = str(self.max_restarts)
        if self.failures_before_success:
            sim["FailuresBeforeSuccess"] = str(self.failures_before_success)
        if self.start_timeout_ns:
            sim["StartTimeoutNs"] = str(self.start_timeout_ns)
        if self.provides_paths:
            sim["ProvidesPaths"] = list(self.provides_paths)
        if self.waits_for_paths:
            sim["WaitsForPaths"] = list(self.waits_for_paths)
        if self.ipc_targets:
            sim["IpcTargets"] = list(self.ipc_targets)
        if self.static_build:
            sim["StaticBuild"] = "yes"
        if self.bb_deferrable:
            sim["BBDeferrable"] = "yes"
        sections["X-Simulation"] = sim
        parsed = ParsedUnitFile(name=self.name, sections=sections)
        return parsed


def replace_unit(unit: Unit) -> Unit:
    """Deep-ish copy of a unit (lists copied, cost shared until replaced)."""
    return Unit(
        name=unit.name, description=unit.description,
        service_type=unit.service_type,
        requires=list(unit.requires), wants=list(unit.wants),
        before=list(unit.before), after=list(unit.after),
        conflicts=list(unit.conflicts),
        condition_paths=list(unit.condition_paths),
        wanted_by=list(unit.wanted_by), required_by=list(unit.required_by),
        provides_paths=list(unit.provides_paths),
        waits_for_paths=list(unit.waits_for_paths),
        ipc_targets=list(unit.ipc_targets),
        cost=unit.cost, static_build=unit.static_build,
        bb_deferrable=unit.bb_deferrable,
        restart_policy=unit.restart_policy,
        restart_delay_ns=unit.restart_delay_ns,
        max_restarts=unit.max_restarts,
        failures_before_success=unit.failures_before_success,
        start_timeout_ns=unit.start_timeout_ns,
        on_failure=list(unit.on_failure),
        start_limit_burst=unit.start_limit_burst,
        start_limit_interval_ns=unit.start_limit_interval_ns,
        restart_backoff_factor=unit.restart_backoff_factor,
    )
