"""Kernel boot-sequence models.

This package models everything between the power-on signal and the first
user process (plus the background §2 models the paper uses to motivate a
fast cold boot):

* :mod:`repro.kernel.bootloader` — ROM + bootloader stage,
* :mod:`repro.kernel.image` — kernel image load, with the §2.3 compression
  trade-off model,
* :mod:`repro.kernel.meminit` — memory initialization (full vs BB-deferred),
* :mod:`repro.kernel.initcalls` — initcall levels, built-in vs deferred
  drivers (the On-demand Modularizer substrate),
* :mod:`repro.kernel.modules` — external ``.ko`` loading with per-module
  syscall and storage costs,
* :mod:`repro.kernel.rootfs` — root filesystem mount, ext4 journal deferral,
* :mod:`repro.kernel.rcu` — ``synchronize_rcu`` under the conventional
  ticket spinlock (Algorithm 1) vs the boosted mutex (Algorithm 2),
* :mod:`repro.kernel.config` — kernel build configuration (§2.4 debug
  features and modularization),
* :mod:`repro.kernel.sequence` — the orchestrated kernel boot,
* :mod:`repro.kernel.snapshot` — §2.1 hibernation / suspend-to-RAM models.
"""

from repro.kernel.bootloader import Bootloader
from repro.kernel.config import DebugFeature, KernelConfig
from repro.kernel.image import KernelImage
from repro.kernel.initcalls import Initcall, InitcallLevel, InitcallRegistry
from repro.kernel.meminit import MemoryInitializer
from repro.kernel.modules import KernelModule, ModuleLoader
from repro.kernel.rcu import RCUMode, RCUSubsystem
from repro.kernel.rootfs import RootFilesystem
from repro.kernel.sequence import KernelBootSequence, KernelBootTimings
from repro.kernel.snapshot import HibernationModel, SuspendToRamModel

__all__ = [
    "Bootloader",
    "DebugFeature",
    "HibernationModel",
    "Initcall",
    "InitcallLevel",
    "InitcallRegistry",
    "KernelBootSequence",
    "KernelBootTimings",
    "KernelConfig",
    "KernelImage",
    "KernelModule",
    "MemoryInitializer",
    "ModuleLoader",
    "RCUMode",
    "RCUSubsystem",
    "RootFilesystem",
    "SuspendToRamModel",
]
