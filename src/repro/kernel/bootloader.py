"""ROM and bootloader stage.

Upon the power-on signal the CPU runs instructions from internal ROM,
which load the bootloader from a predefined storage location; the
bootloader initializes the hardware needed to start the kernel, then loads
and launches the kernel image (§2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import KernelError
from repro.hw.platform import HardwarePlatform
from repro.kernel.image import KernelImage
from repro.quantities import msec
from repro.sim.process import Timeout

if TYPE_CHECKING:
    from repro.sim.engine import Simulator
    from repro.sim.process import ProcessGenerator


@dataclass(frozen=True, slots=True)
class Bootloader:
    """The pre-kernel boot stage.

    Attributes:
        rom_stage_ns: Internal-ROM execution time (mask ROM + BL1).
        hw_init_ns: Bootloader hardware initialization (DRAM controller,
            clocks, storage controller) before the kernel can run.
        loader_size_bytes: The bootloader binary itself, read from storage.
    """

    rom_stage_ns: int = msec(20)
    hw_init_ns: int = msec(30)
    loader_size_bytes: int = 512 * 1024

    def __post_init__(self) -> None:
        if min(self.rom_stage_ns, self.hw_init_ns, self.loader_size_bytes) < 0:
            raise KernelError("bootloader parameters cannot be negative")

    def run(self, engine: "Simulator", platform: HardwarePlatform,
            image: KernelImage) -> "ProcessGenerator":
        """Generator: execute the full pre-kernel stage.

        ROM stage, bootloader load, hardware init, then the kernel image
        load (including the §2.3 decompression pipeline when compressed).
        """
        span = engine.tracer.begin("bootloader", "boot-stage")
        yield Timeout(self.rom_stage_ns)
        yield from platform.storage.read(self.loader_size_bytes)
        yield Timeout(self.hw_init_ns)
        # The image loader bypasses the filesystem: raw sequential read,
        # possibly pipelined with decompression.
        load_ns = image.load_time_ns(platform.storage, platform.decompress_bps)
        yield Timeout(load_ns)
        engine.tracer.end(span)
        return span
