"""Kernel build configuration and the §2.4 conventional optimizations.

Before BB, the authors brought the kernel from 6.127 s down to 0.698 s by
conventional means: disabling debugging/tracing/logging/profiling and
aggressively modularizing drivers so their initialization leaves the boot
path.  This module models that starting point so the T-KERNELOPT
experiment can regenerate the 6.127 → 0.698 s reduction, and so the BB
experiments start from the optimized 698 ms baseline exactly as the paper
does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.quantities import msec


class DebugFeature(enum.Enum):
    """Kernel diagnostic subsystems disabled by the §2.4 optimization."""

    DEBUGGING = "debugging"
    TRACING = "tracing"
    LOGGING = "logging"
    PROFILING = "profiling"


#: Boot-time cost of each diagnostic subsystem in the unoptimized kernel.
#: Calibrated so that an unoptimized kernel boots in 6.127 s on the
#: UE48H6200 (see tests/kernel/test_config.py).
DEBUG_FEATURE_COST_NS: dict[DebugFeature, int] = {
    DebugFeature.DEBUGGING: msec(810),
    DebugFeature.TRACING: msec(640),
    DebugFeature.LOGGING: msec(520),
    DebugFeature.PROFILING: msec(430),
}


@dataclass(slots=True)
class KernelConfig:
    """Build-time kernel configuration.

    Attributes:
        debug_features: Diagnostic subsystems compiled in (each adds its
            cost from :data:`DEBUG_FEATURE_COST_NS` to kernel boot).
        drivers_built_in_and_eager: True for the unoptimized kernel where
            every driver initializes inside the kernel boot path; False
            once §2.4's "extensive kernel modularization" moved
            non-essential drivers out (they then load from user space, see
            :mod:`repro.kernel.modules`).
        eager_driver_cost_ns: Kernel-boot cost of initializing every driver
            eagerly (only paid when ``drivers_built_in_and_eager``).
        base_cost_ns: Irreducible kernel work: arch setup, scheduler, core
            subsystems — part of the optimized 698 ms budget.
    """

    debug_features: frozenset[DebugFeature] = field(default_factory=frozenset)
    drivers_built_in_and_eager: bool = False
    eager_driver_cost_ns: int = msec(3_029)
    base_cost_ns: int = msec(83)

    def __post_init__(self) -> None:
        if self.eager_driver_cost_ns < 0 or self.base_cost_ns < 0:
            raise ConfigurationError("kernel cost parameters cannot be negative")

    @classmethod
    def unoptimized(cls) -> "KernelConfig":
        """The pre-§2.4 kernel: all diagnostics on, all drivers eager."""
        return cls(debug_features=frozenset(DebugFeature),
                   drivers_built_in_and_eager=True)

    @classmethod
    def commercial(cls) -> "KernelConfig":
        """The §2.4-optimized kernel: the 698 ms baseline BB starts from."""
        return cls()

    def diagnostics_cost_ns(self) -> int:
        """Boot cost of the compiled-in diagnostic subsystems."""
        return sum(DEBUG_FEATURE_COST_NS[f] for f in self.debug_features)

    def driver_cost_ns(self) -> int:
        """Boot cost of eager driver initialization (0 when modularized)."""
        return self.eager_driver_cost_ns if self.drivers_built_in_and_eager else 0

    def extra_cost_ns(self) -> int:
        """Total kernel-boot cost beyond the optimized baseline phases."""
        return self.base_cost_ns + self.diagnostics_cost_ns() + self.driver_cost_ns()
