"""Kernel image loading and the §2.3 compression trade-off.

Historically, flash I/O was the boot bottleneck, so kernel and rootfs
images were compressed.  The paper observes this no longer pays: the
Galaxy S6's flash reads 300 MiB/s sequentially while all eight cores
decompress at only 35 MiB/s.  The model here is a pipelined loader —
reading compressed blocks overlaps decompression — so the load time is
``max(read_time(compressed), decompress_time(uncompressed))``; compression
only wins when storage is slower than the decompressor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KernelError
from repro.hw.storage import StorageDevice
from repro.quantities import transfer_time_ns


@dataclass(frozen=True, slots=True)
class KernelImage:
    """A bootable kernel image.

    Attributes:
        size_bytes: Uncompressed image size (a 2015 TV kernel is ~10 MiB).
        compressed: Whether the image is stored compressed.
        compression_ratio: Stored size = ``size_bytes / compression_ratio``
            (e.g. 2.0 halves the stored bytes).
    """

    size_bytes: int
    compressed: bool = False
    compression_ratio: float = 2.0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise KernelError(f"kernel image size must be positive: {self.size_bytes}")
        if self.compression_ratio <= 1.0:
            raise KernelError(
                f"compression ratio must exceed 1.0: {self.compression_ratio}")

    @property
    def stored_bytes(self) -> int:
        """Bytes occupied on storage."""
        if not self.compressed:
            return self.size_bytes
        return round(self.size_bytes / self.compression_ratio)

    def load_time_ns(self, storage: StorageDevice, decompress_bps: int) -> int:
        """Time for the bootloader to place the image in RAM.

        Uncompressed images are bounded by sequential read throughput.
        Compressed images are read and decompressed in a pipeline, so the
        slower of the two stages dominates.

        Raises:
            KernelError: If ``decompress_bps`` is not positive for a
                compressed image.
        """
        read_ns = storage.request_latency_ns + transfer_time_ns(
            self.stored_bytes, storage.seq_read_bps)
        if not self.compressed:
            return read_ns
        if decompress_bps <= 0:
            raise KernelError(f"decompression throughput must be positive: {decompress_bps}")
        decompress_ns = transfer_time_ns(self.size_bytes, decompress_bps)
        return max(read_ns, decompress_ns)

    def compression_helps(self, storage: StorageDevice, decompress_bps: int) -> bool:
        """§2.3's question: is the compressed load faster on this device?"""
        plain = KernelImage(self.size_bytes, compressed=False)
        packed = KernelImage(self.size_bytes, compressed=True,
                             compression_ratio=self.compression_ratio)
        return (packed.load_time_ns(storage, decompress_bps)
                < plain.load_time_ns(storage, decompress_bps))


def compression_crossover_bps(compression_ratio: float, decompress_bps: int) -> int:
    """Storage sequential throughput below which compression starts to pay.

    Compression helps iff the uncompressed read is slower than both
    pipeline stages::

        size/bps > max(size/(ratio*bps), size/decompress_bps)

    The compressed read stage (``size/(ratio*bps)``) is always faster than
    the uncompressed read, so the comparison reduces to the decompressor:
    compression pays exactly when ``seq_read_bps < decompress_bps``.  This
    is the paper's observation inverted: the Galaxy S6's 300 MiB/s flash is
    far past the 35 MiB/s crossover, so compression is "of little help".

    Returns:
        The sequential-read throughput (bytes/s) at which compressed and
        uncompressed loads take equal time.
    """
    if compression_ratio <= 1.0:
        raise KernelError(f"compression ratio must exceed 1.0: {compression_ratio}")
    if decompress_bps <= 0:
        raise KernelError(f"decompression throughput must be positive: {decompress_bps}")
    return decompress_bps
