"""Kernel initcall machinery and BB's On-demand Modularizer substrate.

Linux runs driver and subsystem initialization through ordered *initcall*
levels.  BB's On-demand Modularizer "modularizes built-in kernel
components, which defers and concurrently starts subsystems not required
to start the init scheme" (§3.1): a deferrable built-in initcall is skipped
during kernel boot and executed on first use — without the syscall and
storage cost of an external module, because its code is already in the
kernel image.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import KernelError
from repro.quantities import usec
from repro.sim.process import Compute, Timeout

if TYPE_CHECKING:
    from repro.sim.engine import Simulator
    from repro.sim.process import ProcessGenerator


class InitcallLevel(enum.IntEnum):
    """Linux initcall levels, executed in ascending order."""

    EARLY = 0
    CORE = 1
    POSTCORE = 2
    ARCH = 3
    SUBSYS = 4
    FS = 5
    DEVICE = 6
    LATE = 7


@dataclass(frozen=True, slots=True)
class Initcall:
    """One built-in initialization function.

    Attributes:
        name: Function/driver name.
        level: Initcall level.
        cpu_ns: Software initialization cost.
        hw_settle_ns: Hardware settle time (no CPU) after the software part.
        deferrable: True if BB may skip it at boot and run it on demand.
    """

    name: str
    level: InitcallLevel
    cpu_ns: int
    hw_settle_ns: int = 0
    deferrable: bool = False

    def __post_init__(self) -> None:
        if self.cpu_ns < 0 or self.hw_settle_ns < 0:
            raise KernelError(f"initcall {self.name}: negative cost")

    def run(self, engine: "Simulator") -> "ProcessGenerator":
        """Generator: execute the initcall."""
        yield Compute(self.cpu_ns)
        if self.hw_settle_ns:
            yield Timeout(self.hw_settle_ns)


class InitcallRegistry:
    """Ordered collection of built-in initcalls with deferral support.

    Duplicate names are rejected; initcalls execute level by level in
    registration order within a level, matching the kernel's link order.
    """

    def __init__(self) -> None:
        self._calls: dict[str, Initcall] = {}
        self.completed: set[str] = set()
        self.deferred: set[str] = set()
        self.on_demand_loads = 0

    def register(self, call: Initcall) -> None:
        """Add an initcall.

        Raises:
            KernelError: On duplicate names.
        """
        if call.name in self._calls:
            raise KernelError(f"duplicate initcall {call.name!r}")
        self._calls[call.name] = call

    def __len__(self) -> int:
        return len(self._calls)

    def get(self, name: str) -> Initcall:
        """Look up an initcall by name.

        Raises:
            KernelError: If unknown.
        """
        try:
            return self._calls[name]
        except KeyError:
            raise KernelError(f"unknown initcall {name!r}") from None

    def boot_sequence(self, defer: bool) -> list[Initcall]:
        """The initcalls executed in-line at boot.

        With ``defer`` True (On-demand Modularizer active) deferrable calls
        are excluded and recorded in :attr:`deferred`.
        """
        selected = []
        for call in self._calls.values():
            if defer and call.deferrable:
                self.deferred.add(call.name)
            else:
                selected.append(call)
        return sorted(selected, key=lambda c: c.level)

    def run_boot(self, engine: "Simulator", defer: bool) -> "ProcessGenerator":
        """Generator: run the boot-time initcall sequence (single-threaded)."""
        for call in self.boot_sequence(defer):
            yield from call.run(engine)
            self.completed.add(call.name)

    def load_on_demand(self, engine: "Simulator", name: str,
                       demand_overhead_ns: int = usec(500)) -> "ProcessGenerator":
        """Generator: run a deferred initcall on first use (idempotent).

        ``demand_overhead_ns`` is the on-demand manager's dispatch cost —
        kept small because the code is built in (no module-load syscalls).

        Raises:
            KernelError: If ``name`` is unknown.
        """
        call = self.get(name)
        if call.name in self.completed:
            return
        yield Compute(demand_overhead_ns)
        yield from call.run(engine)
        self.completed.add(call.name)
        self.deferred.discard(call.name)
        self.on_demand_loads += 1
