"""Kernel memory initialization — full, or BB's early + deferred split.

The Core Engine "shortens the time to begin user processes by initializing
only the required size of memory and defers initializing the remaining
area" (§3.1).  On the evaluation TV this turns a 370 ms boot phase into a
110 ms phase plus a 260 ms background task executed after boot completion
(Fig. 6(a)).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hw.memory import DRAMModel
from repro.sim.process import Compute

if TYPE_CHECKING:
    from repro.sim.engine import Simulator
    from repro.sim.process import Process, ProcessGenerator


class MemoryInitializer:
    """Runs DRAM initialization inside the kernel boot sequence.

    Args:
        dram: The platform's DRAM model.
        deferred: True enables BB's split: only the boot-required region is
            initialized in-line; the rest runs later via
            :meth:`spawn_deferred_remainder`.
    """

    def __init__(self, dram: DRAMModel, deferred: bool = False):
        self.dram = dram
        self.deferred = deferred
        self.remainder_done = False

    def boot_phase_ns(self) -> int:
        """In-line cost paid during kernel boot."""
        return self.dram.early_init_ns() if self.deferred else self.dram.full_init_ns()

    def run_boot_phase(self, engine: "Simulator") -> "ProcessGenerator":
        """Generator: the in-line initialization (single-threaded, early boot)."""
        span = engine.tracer.begin("kernel.meminit", "kernel",
                                   deferred=self.deferred)
        yield Compute(self.boot_phase_ns())
        if not self.deferred:
            self.remainder_done = True
        engine.tracer.end(span)

    def spawn_deferred_remainder(self, engine: "Simulator",
                                 priority: int = 300) -> "Process | None":
        """Start the deferred remainder as a low-priority background task.

        Returns the spawned process, or ``None`` when there is nothing to
        defer (full init already ran).
        """
        if not self.deferred or self.remainder_done:
            return None

        def remainder() -> "ProcessGenerator":
            span = engine.tracer.begin("kernel.meminit.deferred", "deferred")
            yield Compute(self.dram.deferred_init_ns())
            self.remainder_done = True
            engine.tracer.end(span)

        return engine.spawn(remainder(), name="meminit-deferred", priority=priority)
