"""External kernel module (``.ko``) loading.

A 2015 Samsung TV ships 408 kernel modules (§2.4).  Loading an external
module costs user-space syscalls (open, read, close), a random read of the
module file, symbol resolution and linking.  BB's On-demand Modularizer
eliminates this for boot-path drivers by turning them into *deferred
built-in* initcalls: "we drastically reduced the number of system calls
(e.g. open, read, and close) required to load many external modules into
volatile memory" (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import KernelError
from repro.hw.storage import AccessPattern, StorageDevice
from repro.quantities import KiB, usec
from repro.sim.process import Compute, Timeout

if TYPE_CHECKING:
    from repro.sim.engine import Simulator
    from repro.sim.process import ProcessGenerator

#: Syscall cost on the embedded A9 (entry/exit, file table work).
SYSCALL_COST_NS = usec(8)

#: Syscalls issued per module load: open, (multiple) read, mmap, close...
SYSCALLS_PER_LOAD = 12


@dataclass(frozen=True, slots=True)
class KernelModule:
    """An external loadable module.

    Attributes:
        name: Module name (``tuner_drv`` and friends).
        size_bytes: On-disk ``.ko`` size.
        link_cpu_ns: Symbol resolution + relocation CPU cost.
        hw_settle_ns: Hardware settle time for the device it drives.
        boot_required: True if the no-BB boot loads it before completion.
    """

    name: str
    size_bytes: int = KiB(64)
    link_cpu_ns: int = usec(800)
    hw_settle_ns: int = 0
    boot_required: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise KernelError(f"module {self.name}: size must be positive")
        if self.link_cpu_ns < 0 or self.hw_settle_ns < 0:
            raise KernelError(f"module {self.name}: negative cost")


class ModuleLoader:
    """Loads external modules from storage with full syscall accounting."""

    def __init__(self, storage: StorageDevice):
        self.storage = storage
        self.loaded: set[str] = set()
        self.failed: set[str] = set()
        self.syscalls_issued = 0
        self.bytes_loaded = 0
        # Fault hook: called once per first load attempt with the module
        # name, returns (load fails, extra latency ns).  See repro.faults.
        self.fault_hook: Callable[[str], tuple[bool, int]] | None = None

    def load(self, engine: "Simulator", module: KernelModule) -> "ProcessGenerator":
        """Generator: load one module (idempotent).

        Returns True if the module is loaded afterwards, False if the
        load failed (injected fault); a failed module stays failed — the
        kernel would return the same error on a retry.
        """
        if module.name in self.loaded:
            return True
        if module.name in self.failed:
            return False
        fail, extra_ns = (self.fault_hook(module.name)
                          if self.fault_hook is not None else (False, 0))
        yield Compute(SYSCALL_COST_NS * SYSCALLS_PER_LOAD)
        self.syscalls_issued += SYSCALLS_PER_LOAD
        yield from self.storage.read(module.size_bytes, AccessPattern.RANDOM)
        if extra_ns:
            yield Timeout(extra_ns)
        yield Compute(module.link_cpu_ns)
        if fail:
            # insmod returned an error after the file was read and linked.
            self.failed.add(module.name)
            engine.tracer.instant(f"kmod:{module.name}.load-failed", "init-task")
            return False
        if module.hw_settle_ns:
            yield Timeout(module.hw_settle_ns)
        self.loaded.add(module.name)
        self.bytes_loaded += module.size_bytes
        return True

    def load_all(self, engine: "Simulator",
                 modules: list[KernelModule]) -> "ProcessGenerator":
        """Generator: load a list of modules sequentially (one kmod worker)."""
        for module in modules:
            yield from self.load(engine, module)
