"""The RCU synchronization subsystem: conventional vs boosted.

``synchronize_rcu`` waits for a grace period — until every CPU has passed
a quiescent state — and is called with extreme frequency during boot
(driver registration, namespace setup, security hooks).  The paper models
two implementations:

* **Algorithm 1 (conventional)**: the ticket-spinlock path.  A caller that
  finds the grace-period machinery busy *spins*, occupying a CPU core, and
  waits a full normal grace period.  Fine after boot (0-1 concurrent
  callers), terrible during boot.
* **Algorithm 2 (RCU Booster)**: memory barriers + a blocking mutex +
  forced quiescent states ("force all RCU readers onto task lists; do
  synchronized scheduling").  Waiters sleep — releasing their core to other
  boot work — and the forced-quiescent pass expedites the grace period, at
  the price of extra per-operation CPU (barriers, context switches).

The subsystem exposes a simulated *sysfs* knob
(:meth:`RCUSubsystem.write_sysfs`), which is how the user-space RCU Booster
Control of the Boot-up Engine enables boosting at init start and disables
it at boot completion (§3.2).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.errors import KernelError
from repro.quantities import msec, usec
from repro.sim.process import Compute, Timeout, Wait
from repro.sim.sync import Mutex, SpinLock

if TYPE_CHECKING:
    from repro.sim.engine import Simulator
    from repro.sim.process import ProcessGenerator


class RCUMode(enum.Enum):
    """Active ``synchronize_rcu`` implementation."""

    CONVENTIONAL = "conventional"  # Algorithm 1: ticket spinlock, spin wait
    BOOSTED = "boosted"  # Algorithm 2: mutex + expedited grace period


class RCUSubsystem:
    """Kernel RCU state shared by every simulated ``synchronize_rcu`` call.

    Args:
        engine: Owning simulator.
        grace_period_ns: Normal grace-period length (a few jiffies; 12 ms
            by default, HZ=100 class embedded kernel).
        expedited_grace_period_ns: Grace period under the boosted forced
            quiescent-state pass.
        conventional_op_cpu_ns: Per-call CPU cost of Algorithm 1 (RCU head
            init, wait-queue manipulation).
        boosted_op_cpu_ns: Per-call CPU cost of Algorithm 2 (memory
            barriers, snapshot comparison, forcing readers onto task
            lists) — deliberately larger, this is the §4.3 trade-off.
        spin_slice_ns: CPU burned per spin iteration in Algorithm 1.
    """

    SYSFS_PATH = "/sys/kernel/rcu_boost"

    def __init__(self, engine: "Simulator",
                 grace_period_ns: int = msec(12),
                 expedited_grace_period_ns: int = msec(1.5),
                 conventional_op_cpu_ns: int = usec(30),
                 boosted_op_cpu_ns: int = usec(120),
                 spin_slice_ns: int = 500_000,
                 reader_tracking: bool = False):
        if grace_period_ns <= 0 or expedited_grace_period_ns <= 0:
            raise KernelError("grace periods must be positive")
        if expedited_grace_period_ns > grace_period_ns:
            raise KernelError("expedited grace period cannot exceed the normal one")
        self._engine = engine
        self.mode = RCUMode.CONVENTIONAL
        self.grace_period_ns = grace_period_ns
        self.expedited_grace_period_ns = expedited_grace_period_ns
        self.conventional_op_cpu_ns = conventional_op_cpu_ns
        self.boosted_op_cpu_ns = boosted_op_cpu_ns
        self._wait_lock = SpinLock(engine, name="rcu.wait_lock",
                                   spin_slice_ns=spin_slice_ns)
        self._boost_mutex = Mutex(engine, name="rcu.boost_mutex")
        # Reader tracking (two-phase): with it on, a grace period waits
        # until the readers that existed at its start have all exited —
        # McKenney's actual semantics — instead of a fixed duration.  The
        # fixed-duration model is the calibrated default (DESIGN S4 #1).
        self.reader_tracking = reader_tracking
        self._phase = 0
        self._reader_counts = [0, 0]
        self._drain_waiters: list = [None, None]  # Completion per phase
        # Statistics for the evaluation harness.
        self.sync_count = 0
        self.total_sync_wall_ns = 0
        self.mode_switches = 0
        self.reader_sections = 0

    # ------------------------------------------------------------- controls

    def set_mode(self, mode: RCUMode) -> None:
        """Switch the active algorithm (kernel-internal interface)."""
        if mode is not self.mode:
            self.mode = mode
            self.mode_switches += 1

    def write_sysfs(self, value: str) -> None:
        """The user-space control interface (§3.2, via sysfs [37]).

        Accepts ``"1"``/``"0"`` exactly as a real sysfs boolean attribute.

        Raises:
            KernelError: On any other value.
        """
        if value == "1":
            self.set_mode(RCUMode.BOOSTED)
        elif value == "0":
            self.set_mode(RCUMode.CONVENTIONAL)
        else:
            raise KernelError(f"invalid write to {self.SYSFS_PATH}: {value!r}")

    def read_sysfs(self) -> str:
        """Current sysfs value (``"1"`` when boosted)."""
        return "1" if self.mode is RCUMode.BOOSTED else "0"

    @property
    def spin_time_ns(self) -> int:
        """Total CPU burned spinning in Algorithm 1 so far."""
        return self._wait_lock.spin_time_ns

    # ------------------------------------------------------------ operation

    def synchronize_rcu(self) -> "ProcessGenerator":
        """Generator: one ``synchronize_rcu`` call under the current mode.

        The mode is sampled at call entry, as in the real implementation
        where the boosted path is patched in behind a static branch.
        """
        start = self._engine.now
        self.sync_count += 1
        if self.mode is RCUMode.BOOSTED:
            yield from self._synchronize_boosted()
        else:
            yield from self._synchronize_conventional()
        self.total_sync_wall_ns += self._engine.now - start

    def _synchronize_conventional(self) -> "ProcessGenerator":
        # Algorithm 1: init RCU head, join the wait queue, spin on the
        # wait-lock (burning a core) until the grace period elapses.
        yield Compute(self.conventional_op_cpu_ns)
        yield from self._wait_lock.acquire()
        try:
            yield from self._grace_period(self.grace_period_ns)
        finally:
            self._wait_lock.release()

    def _synchronize_boosted(self) -> "ProcessGenerator":
        # Algorithm 2: barriers + snapshot, blocking mutex (sleep, not
        # spin), forced quiescent states expedite the grace period.
        yield Compute(self.boosted_op_cpu_ns)
        yield from self._boost_mutex.acquire()
        try:
            yield from self._grace_period(self.expedited_grace_period_ns)
        finally:
            self._boost_mutex.release()

    def _grace_period(self, floor_ns: int) -> "ProcessGenerator":
        """One grace period under the active model.

        Fixed model: a constant wait (jiffy-based quiescent detection,
        calibrated).  Reader-tracking model: flip the phase and wait for
        every reader of the *old* phase to exit — readers arriving after
        the flip never extend this grace period — plus the detection
        floor.
        """
        if not self.reader_tracking:
            yield Timeout(floor_ns)
            return
        old_phase = self._phase
        self._phase ^= 1
        if self._reader_counts[old_phase] > 0:
            drain = self._engine.completion(f"rcu.drain.{old_phase}")
            self._drain_waiters[old_phase] = drain
            yield Wait(drain)
            self._drain_waiters[old_phase] = None
        yield Timeout(floor_ns)

    # ----------------------------------------------------------- read side

    def read_lock(self) -> int:
        """Enter a read-side critical section; returns the phase token."""
        phase = self._phase
        self._reader_counts[phase] += 1
        self.reader_sections += 1
        return phase

    def read_unlock(self, token: int) -> None:
        """Exit a read-side critical section entered with ``token``.

        Raises:
            KernelError: On unbalanced unlock.
        """
        if self._reader_counts[token] <= 0:
            raise KernelError("rcu_read_unlock without a matching lock")
        self._reader_counts[token] -= 1
        drain = self._drain_waiters[token]
        if self._reader_counts[token] == 0 and drain is not None:
            drain.fire(None)

    @property
    def active_readers(self) -> int:
        """Readers currently inside a read-side critical section."""
        return sum(self._reader_counts)

    def __repr__(self) -> str:
        return (f"RCUSubsystem(mode={self.mode.value}, syncs={self.sync_count}, "
                f"spin_ms={self.spin_time_ns / 1e6:.1f})")
