"""Root filesystem mount, with BB's deferred ext4 journal.

"Enabling EXT4 journal mode of the root file system is deferred ... because
we virtually are read-only while booting and we can remount the root file
system in writable journal mode later as a deferred task" (§3.2).  On the
TV the mount phase drops from 110 ms to 75 ms (Fig. 6(a)); the journal
remount then runs after boot completion.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import KernelError
from repro.hw.storage import AccessPattern, StorageDevice
from repro.quantities import KiB, msec
from repro.sim.process import Compute

if TYPE_CHECKING:
    from repro.sim.engine import Simulator
    from repro.sim.process import Process, ProcessGenerator


class RootFilesystem:
    """The ext4 root filesystem of the device.

    Args:
        storage: Device holding the filesystem.
        superblock_bytes: Metadata read at mount time.
        mount_cpu_ns: Mount-path CPU work excluding the journal.
        journal_setup_ns: Cost of enabling writable journal mode.
        deferred_journal: BB flag: mount read-only now, enable the journal
            after boot completion via :meth:`spawn_deferred_journal`.
    """

    def __init__(self, storage: StorageDevice,
                 superblock_bytes: int = KiB(256),
                 mount_cpu_ns: int = msec(68),
                 journal_setup_ns: int = msec(35),
                 deferred_journal: bool = False):
        if min(superblock_bytes, mount_cpu_ns, journal_setup_ns) < 0:
            raise KernelError("rootfs parameters cannot be negative")
        self.storage = storage
        self.superblock_bytes = superblock_bytes
        self.mount_cpu_ns = mount_cpu_ns
        self.journal_setup_ns = journal_setup_ns
        self.deferred_journal = deferred_journal
        self.mounted = False
        self.journal_enabled = False

    def mount(self, engine: "Simulator") -> "ProcessGenerator":
        """Generator: mount the root filesystem during kernel boot."""
        span = engine.tracer.begin("kernel.rootfs", "kernel",
                                   deferred_journal=self.deferred_journal)
        yield from self.storage.read(self.superblock_bytes, AccessPattern.RANDOM)
        yield Compute(self.mount_cpu_ns)
        if not self.deferred_journal:
            yield Compute(self.journal_setup_ns)
            self.journal_enabled = True
        self.mounted = True
        engine.tracer.end(span)

    def spawn_deferred_journal(self, engine: "Simulator",
                               priority: int = 300) -> "Process | None":
        """Remount with the journal enabled, after boot completion.

        Returns the spawned process, or ``None`` if the journal is already
        enabled (or the mount has not happened — a model bug).

        Raises:
            KernelError: If called before :meth:`mount` completed.
        """
        if not self.mounted:
            raise KernelError("deferred journal requested before rootfs mount")
        if self.journal_enabled:
            return None

        def remount() -> "ProcessGenerator":
            span = engine.tracer.begin("kernel.rootfs.journal", "deferred")
            yield Compute(self.journal_setup_ns)
            self.journal_enabled = True
            engine.tracer.end(span)

        return engine.spawn(remount(), name="rootfs-journal-deferred", priority=priority)
