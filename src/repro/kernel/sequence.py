"""The orchestrated kernel boot: power-on signal to first user process.

Runs the stages of Fig. 1 / Fig. 6(a) in order — bootloader, memory
initialization, core kernel work, built-in initcalls, root filesystem
mount — with per-stage timings recorded for the evaluation harness, and
exposes the deferred-task spawners that BB's engines trigger after boot
completion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.hw.platform import HardwarePlatform
from repro.kernel.bootloader import Bootloader
from repro.kernel.config import KernelConfig
from repro.kernel.image import KernelImage
from repro.kernel.initcalls import InitcallRegistry
from repro.kernel.meminit import MemoryInitializer
from repro.kernel.rcu import RCUSubsystem
from repro.kernel.rootfs import RootFilesystem
from repro.quantities import MiB
from repro.sim.process import Compute

if TYPE_CHECKING:
    from repro.sim.engine import Simulator
    from repro.sim.process import Process, ProcessGenerator


@dataclass(frozen=True, slots=True)
class KernelBootTimings:
    """Per-stage wall-clock times of one kernel boot (nanoseconds)."""

    bootloader_ns: int
    meminit_ns: int
    core_ns: int
    initcalls_ns: int
    rootfs_ns: int

    @property
    def total_ns(self) -> int:
        """Power-on signal to init-process handoff."""
        return (self.bootloader_ns + self.meminit_ns + self.core_ns
                + self.initcalls_ns + self.rootfs_ns)


class KernelBootSequence:
    """One kernel boot on a given platform.

    Args:
        platform: Hardware the kernel boots on (storage must be attached
            by :meth:`run`'s engine beforehand — use
            ``platform.attach(engine)``).
        config: Kernel build configuration; defaults to the §2.4-optimized
            commercial kernel.
        image: Kernel image; defaults to the 10 MiB uncompressed TV kernel.
        initcalls: Built-in initcall registry (driver plan); empty default.
        deferred_meminit: BB Core Engine flag — initialize only the
            boot-required memory region now.
        deferred_journal: BB flag — mount the rootfs without enabling the
            ext4 journal.
        defer_initcalls: BB On-demand Modularizer flag — skip deferrable
            initcalls at boot.
    """

    def __init__(self, platform: HardwarePlatform,
                 config: KernelConfig | None = None,
                 image: KernelImage | None = None,
                 initcalls: InitcallRegistry | None = None,
                 deferred_meminit: bool = False,
                 deferred_journal: bool = False,
                 defer_initcalls: bool = False):
        self.platform = platform
        self.config = config if config is not None else KernelConfig.commercial()
        self.image = image if image is not None else KernelImage(size_bytes=MiB(10))
        self.initcalls = initcalls if initcalls is not None else InitcallRegistry()
        self.defer_initcalls = defer_initcalls
        self.bootloader = Bootloader()
        self.meminit = MemoryInitializer(platform.dram, deferred=deferred_meminit)
        self.rootfs = RootFilesystem(platform.storage, deferred_journal=deferred_journal)
        self.rcu: RCUSubsystem | None = None  # created when run() starts
        self.timings: KernelBootTimings | None = None

    def run(self, engine: "Simulator") -> "ProcessGenerator":
        """Generator: execute the kernel boot; returns the stage timings."""
        self.rcu = RCUSubsystem(engine)
        overall = engine.tracer.begin("kernel.boot", "boot-stage")

        mark = engine.now
        yield from self.bootloader.run(engine, self.platform, self.image)
        bootloader_ns = engine.now - mark

        mark = engine.now
        yield from self.meminit.run_boot_phase(engine)
        meminit_ns = engine.now - mark

        # Core kernel bring-up: arch setup, scheduler, core subsystems, and
        # (on unoptimized kernels) diagnostics and eager driver init.
        mark = engine.now
        yield Compute(self.config.extra_cost_ns())
        core_ns = engine.now - mark

        mark = engine.now
        yield from self.initcalls.run_boot(engine, defer=self.defer_initcalls)
        initcalls_ns = engine.now - mark

        mark = engine.now
        yield from self.rootfs.mount(engine)
        rootfs_ns = engine.now - mark

        engine.tracer.end(overall)
        self.timings = KernelBootTimings(
            bootloader_ns=bootloader_ns, meminit_ns=meminit_ns, core_ns=core_ns,
            initcalls_ns=initcalls_ns, rootfs_ns=rootfs_ns)
        return self.timings

    def spawn_deferred_tasks(self, engine: "Simulator",
                             priority: int = 300) -> list["Process"]:
        """Launch the kernel-side deferred work (BB post-completion hook).

        Returns the spawned background processes (deferred memory
        initialization, ext4 journal remount) — empty when nothing was
        deferred.
        """
        spawned = []
        remainder = self.meminit.spawn_deferred_remainder(engine, priority=priority)
        if remainder is not None:
            spawned.append(remainder)
        journal = self.rootfs.spawn_deferred_journal(engine, priority=priority)
        if journal is not None:
            spawned.append(journal)
        return spawned
