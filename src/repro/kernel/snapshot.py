"""§2.1 background models: hibernation (snapshot boot) and suspend-to-RAM.

These are the alternatives BB rejects for smart TVs, modeled so the
T-SNAPSHOT experiment can regenerate the paper's arithmetic: a 3 GiB
hibernation image on the Galaxy S6's 300 MiB/s UFS takes ~10 s to read
back, snapshot *creation* blocks shutdown even longer, and suspend-to-RAM
is fast but forbidden whenever the user unplugs the TV (and silent
boot-then-suspend violates the EU 1 W standby regulation [9]).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import KernelError
from repro.hw.platform import HardwarePlatform
from repro.quantities import msec, transfer_time_ns

#: EU Commission Regulation No 801/2013: standby power cap for TVs.
EU_STANDBY_LIMIT_W = 1.0


@dataclass(frozen=True, slots=True)
class HibernationModel:
    """Snapshot booting: store RAM to flash at power-off, restore at boot.

    Attributes:
        image_fraction: Fraction of DRAM captured in the snapshot image
            (1.0 = whole RAM; real snapshots skip free pages).
        restore_overhead_ns: Fixed bootloader/kernel cost around the image
            read (device reinit, page table fix-up).
        third_party_apps: True when users can install apps, which
            invalidates factory snapshot images: the image must then be
            (re)created at run time, paying :meth:`create_time_ns` at
            shutdown and risking corruption if power is cut mid-write.
    """

    image_fraction: float = 1.0
    restore_overhead_ns: int = msec(300)
    third_party_apps: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.image_fraction <= 1.0:
            raise KernelError(f"image_fraction must be in (0, 1]: {self.image_fraction}")
        if self.restore_overhead_ns < 0:
            raise KernelError("restore overhead cannot be negative")

    def image_bytes(self, platform: HardwarePlatform) -> int:
        """Snapshot image size on this platform."""
        return round(platform.dram.size_bytes * self.image_fraction)

    def restore_time_ns(self, platform: HardwarePlatform) -> int:
        """Cold-boot time via snapshot restore (the paper's ~10 s for 3 GiB)."""
        read_ns = transfer_time_ns(self.image_bytes(platform),
                                   platform.storage.seq_read_bps)
        return self.restore_overhead_ns + read_ns

    def create_time_ns(self, platform: HardwarePlatform) -> int:
        """Shutdown-time cost of writing the snapshot image."""
        return transfer_time_ns(self.image_bytes(platform),
                                platform.storage.seq_write_bps)

    def usable_with_factory_image(self) -> bool:
        """Factory (pre-loaded) snapshots only work without third-party apps."""
        return not self.third_party_apps


@dataclass(frozen=True, slots=True)
class SnapshotVerification:
    """Verdict of a snapshot-image integrity check.

    Attributes:
        intact: Whether the stored image checksums clean; a corrupt image
            must not be restored (half a restored kernel is worse than a
            slow boot), so the boot falls back to the conventional path.
        verify_time_ns: Time the check itself took — charged to the boot
            whichever way the verdict goes.
    """

    intact: bool
    verify_time_ns: int


def verify_snapshot(model: HibernationModel, platform: HardwarePlatform,
                    seed: int, corrupt_rate: float = 0.0,
                    checksum_fraction: float = 0.02,
                    checksum_overhead_ns: int = msec(50),
                    ) -> SnapshotVerification:
    """Simulated integrity check of a stored hibernation image.

    The bootloader reads ``checksum_fraction`` of the image (header plus
    sampled pages) and verifies checksums before committing to a restore —
    the fail-safe real devices ship, because a power cut mid-
    :meth:`HibernationModel.create_time_ns` leaves a torn image on flash.
    The verdict is seed-deterministic: the corruption draw is addressed by
    ``(seed, "snapshot-corrupt")``, never by global RNG state, so recovery
    replays are byte-identical.

    Raises:
        KernelError: If ``corrupt_rate`` or ``checksum_fraction`` is out
            of range.
    """
    if not 0.0 <= corrupt_rate <= 1.0:
        raise KernelError(f"corrupt_rate must be in [0, 1]: {corrupt_rate}")
    if not 0.0 < checksum_fraction <= 1.0:
        raise KernelError(
            f"checksum_fraction must be in (0, 1]: {checksum_fraction}")
    if checksum_overhead_ns < 0:
        raise KernelError("checksum overhead cannot be negative")
    read_bytes = round(model.image_bytes(platform) * checksum_fraction)
    verify_ns = checksum_overhead_ns + transfer_time_ns(
        read_bytes, platform.storage.seq_read_bps)
    digest = hashlib.sha256(
        repr((seed, "snapshot-corrupt")).encode()).digest()
    draw = int.from_bytes(digest[:8], "big") / 2.0**64
    return SnapshotVerification(intact=draw >= corrupt_rate,
                                verify_time_ns=verify_ns)


@dataclass(frozen=True, slots=True)
class SuspendToRamModel:
    """Suspend-to-RAM ("Instant On"): keep DRAM powered while "off".

    Attributes:
        resume_time_ns: Wake-up latency (< 2 s per §1's Instant-On figure).
        standby_power_w: Power drawn while suspended.
    """

    resume_time_ns: int = msec(1_500)
    standby_power_w: float = 0.5

    def __post_init__(self) -> None:
        if self.resume_time_ns < 0:
            raise KernelError("resume time cannot be negative")
        if self.standby_power_w < 0:
            raise KernelError("standby power cannot be negative")

    def available_after_unplug(self) -> bool:
        """Suspend-to-RAM state is lost the moment the TV is unplugged."""
        return False

    def meets_eu_standby_regulation(self) -> bool:
        """Whether standby consumption stays within the 1 W EU cap.

        The rejected "silent boot then suspend" design kept the application
        processor active (well over 1 W), so it fails this check.
        """
        return self.standby_power_w <= EU_STANDBY_LIMIT_W
