"""Unit helpers for simulated time and data sizes.

All simulated time in :mod:`repro` is kept as **integer nanoseconds** so the
simulation is exact and platform independent (no float drift, bit-for-bit
reproducible runs).  All data sizes are integer bytes.  This module provides
the conversion helpers used throughout the library so call sites read like
the paper: ``msec(698)`` for the kernel time, ``MiB(117)`` for eMMC
sequential throughput.
"""

from __future__ import annotations

#: Number of nanoseconds per microsecond/millisecond/second.
NSEC_PER_USEC = 1_000
NSEC_PER_MSEC = 1_000_000
NSEC_PER_SEC = 1_000_000_000

#: Number of bytes per KiB/MiB/GiB.
BYTES_PER_KIB = 1024
BYTES_PER_MIB = 1024 * 1024
BYTES_PER_GIB = 1024 * 1024 * 1024


def usec(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return round(value * NSEC_PER_USEC)


def msec(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return round(value * NSEC_PER_MSEC)


def sec(value: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return round(value * NSEC_PER_SEC)


def to_msec(ns: int) -> float:
    """Convert integer nanoseconds to float milliseconds."""
    return ns / NSEC_PER_MSEC


def to_sec(ns: int) -> float:
    """Convert integer nanoseconds to float seconds."""
    return ns / NSEC_PER_SEC


def KiB(value: float) -> int:
    """Convert KiB to integer bytes."""
    return round(value * BYTES_PER_KIB)


def MiB(value: float) -> int:
    """Convert MiB to integer bytes."""
    return round(value * BYTES_PER_MIB)


def GiB(value: float) -> int:
    """Convert GiB to integer bytes."""
    return round(value * BYTES_PER_GIB)


def to_mib(nbytes: int) -> float:
    """Convert integer bytes to float MiB."""
    return nbytes / BYTES_PER_MIB


def transfer_time_ns(nbytes: int, throughput_bytes_per_sec: int) -> int:
    """Time to transfer ``nbytes`` at ``throughput_bytes_per_sec``.

    Rounds up to a whole nanosecond so a transfer never takes zero time.

    Raises:
        ValueError: If the throughput is not positive.
    """
    if throughput_bytes_per_sec <= 0:
        raise ValueError(f"throughput must be positive, got {throughput_bytes_per_sec}")
    if nbytes <= 0:
        return 0
    return -(-nbytes * NSEC_PER_SEC // throughput_bytes_per_sec)


def format_ns(ns: int) -> str:
    """Render a nanosecond duration in the most readable unit.

    >>> format_ns(3_500_000_000)
    '3.500 s'
    >>> format_ns(461_000_000)
    '461.0 ms'
    >>> format_ns(1_500)
    '1.500 us'
    """
    if ns >= NSEC_PER_SEC:
        return f"{ns / NSEC_PER_SEC:.3f} s"
    if ns >= NSEC_PER_MSEC:
        return f"{ns / NSEC_PER_MSEC:.1f} ms"
    if ns >= NSEC_PER_USEC:
        return f"{ns / NSEC_PER_USEC:.3f} us"
    return f"{ns} ns"


def format_bytes(nbytes: int) -> str:
    """Render a byte count in the most readable binary unit.

    >>> format_bytes(8 * BYTES_PER_GIB)
    '8.00 GiB'
    """
    if nbytes >= BYTES_PER_GIB:
        return f"{nbytes / BYTES_PER_GIB:.2f} GiB"
    if nbytes >= BYTES_PER_MIB:
        return f"{nbytes / BYTES_PER_MIB:.2f} MiB"
    if nbytes >= BYTES_PER_KIB:
        return f"{nbytes / BYTES_PER_KIB:.2f} KiB"
    return f"{nbytes} B"
