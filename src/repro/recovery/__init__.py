"""Boot-recovery orchestration: restart ladders and snapshot fallback.

The paper's init scheme is not just fast — it is the component that must
get the device to a usable state *no matter what* (§2.5.2's monitoring
and recovery, §4's snapshot fail-safe).  This package supplies the
orchestrator: :class:`BootSupervisor` drives repeated
:class:`~repro.core.BootSimulation` boots up a declarative
:class:`RecoveryPolicy` ladder until one completes, recording every rung,
restart, and masked unit in a schema-pinned recovery section.
"""

from repro.recovery.policy import (DEFAULT_LADDER, RUNG_AS_CONFIGURED,
                                   RUNG_ISOLATE, RUNG_RESCUE, RUNG_RESTART,
                                   RUNG_SAFE_MODE, RUNG_SLOT_ROLLBACK,
                                   RUNG_SNAPSHOT, AttemptRecord,
                                   RecoveryOutcome, RecoveryPolicy,
                                   SnapshotPolicy)
from repro.recovery.supervisor import (OUTCOME_COMPLETED, OUTCOME_DEGRADED,
                                       OUTCOME_FAILED, OUTCOME_REGRESSED,
                                       OUTCOME_SKIPPED, OUTCOME_WEDGED,
                                       RESCUE_TARGET, BootSupervisor)

__all__ = [
    "AttemptRecord",
    "BootSupervisor",
    "DEFAULT_LADDER",
    "OUTCOME_COMPLETED",
    "OUTCOME_DEGRADED",
    "OUTCOME_FAILED",
    "OUTCOME_REGRESSED",
    "OUTCOME_SKIPPED",
    "OUTCOME_WEDGED",
    "RESCUE_TARGET",
    "RecoveryOutcome",
    "RecoveryPolicy",
    "RUNG_AS_CONFIGURED",
    "RUNG_ISOLATE",
    "RUNG_RESCUE",
    "RUNG_RESTART",
    "RUNG_SAFE_MODE",
    "RUNG_SLOT_ROLLBACK",
    "RUNG_SNAPSHOT",
    "SnapshotPolicy",
]
