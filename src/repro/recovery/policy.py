"""Declarative recovery policies and their outcome records.

A :class:`RecoveryPolicy` describes *how far* a device is willing to go
to finish booting (§2.5.2: a consumer device must always come up) and
*how* each rung of the escalation ladder behaves: the snapshot fast path
and its integrity gate, forced restart semantics (timeout, backoff,
jitter), and the per-retry reboot overhead.  Policies are pure data, so
they pickle across sweep workers and participate in job fingerprints the
same way :class:`~repro.faults.FaultPlan` does.

:class:`RecoveryOutcome` is the machine-readable result of one supervised
recovery run: which rungs were tried, where the ladder converged, the
cumulative recovered boot time, and the restart/backoff history — the
``recovery`` section of the exported boot report
(:func:`repro.analysis.schema.validate_recovery_dict` pins its shape).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.config import BBConfig
from repro.errors import ConfigurationError
from repro.kernel.snapshot import HibernationModel
from repro.quantities import msec

if TYPE_CHECKING:
    from repro.analysis.metrics import BootReport
    from repro.core.degraded import DegradedBootReport

#: Ladder rung names, in default escalation order.
RUNG_SNAPSHOT = "snapshot"
RUNG_AS_CONFIGURED = "as-configured"
RUNG_RESTART = "restart"
RUNG_ISOLATE = "isolate"
RUNG_SAFE_MODE = "safe-mode"
RUNG_RESCUE = "rescue"
RUNG_SLOT_ROLLBACK = "slot-rollback"

#: The full default ladder (the snapshot rung only runs when the policy
#: configures a snapshot).  ``slot-rollback`` is not part of it — flipping
#: back to the standby A/B slot only makes sense on a device with
#: generation state, so the OTA engine (:mod:`repro.generations`) appends
#: the rung explicitly via :attr:`RecoveryPolicy.fallback_workload`.
DEFAULT_LADDER = (RUNG_SNAPSHOT, RUNG_AS_CONFIGURED, RUNG_RESTART,
                  RUNG_ISOLATE, RUNG_SAFE_MODE, RUNG_RESCUE)

_KNOWN_RUNGS = frozenset(DEFAULT_LADDER) | {RUNG_SLOT_ROLLBACK}


@dataclass(frozen=True, slots=True)
class SnapshotPolicy:
    """The hibernation fast path tried before any full boot.

    Attributes:
        model: The snapshot model (image size, restore overhead).
        corrupt_rate: Probability the stored image is torn/corrupt; the
            verdict is drawn deterministically from the recovery seed, so
            a given (policy, seed) pair always takes the same branch.
    """

    model: HibernationModel = field(default_factory=HibernationModel)
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.corrupt_rate <= 1.0:
            raise ConfigurationError(
                f"SnapshotPolicy.corrupt_rate must be in [0, 1], "
                f"got {self.corrupt_rate!r}")


@dataclass(frozen=True, slots=True)
class RecoveryPolicy:
    """How the :class:`~repro.recovery.BootSupervisor` escalates.

    Attributes:
        label: Human-facing policy name (enters the recovery section).
        seed: Root of every probabilistic recovery decision — restart
            jitter and the snapshot-corruption draw.  Same policy + same
            seed + same fault plan ⇒ byte-identical recovery JSON.
        ladder: Rung names to try, in order (subset/reorder to study
            individual rungs).  Unknown names are a configuration error.
        snapshot: Optional snapshot fast path; ``None`` skips the
            snapshot rung entirely.
        base_bb: BB feature set for the ``as-configured``/``restart``
            rungs (``None`` = :meth:`BBConfig.none`).
        reboot_overhead_ns: Extra time charged per escalation reboot
            (watchdog reset + firmware), on top of each failed boot's
            own give-up time.
        forced_start_timeout_ns: ``JobTimeout`` forced onto units that
            declare none, at the ``restart`` rung and beyond — converts
            silent hangs into failed attempts the restart policy can act
            on.
        restart_backoff_factor: Exponential backoff factor forced onto
            units that keep the 1.0 default.
        restart_jitter: Relative jitter on restart delays at the
            ``restart`` rung and beyond (seeded, deterministic).
        on_failure_handler: Name of a lightweight diagnostic unit the
            supervisor injects and wires as ``OnFailure=`` on every
            BB-group unit at the ``restart`` rung and beyond (``None``
            disables the injection).
        max_boot_ns: Optional boot-time regression gate.  A rung whose
            boot *completes* but takes longer than this is recorded as
            ``regressed`` and the ladder escalates — the OTA engine sets
            it to ``threshold × predicted known-good boot time`` so a
            firmware update that merely slows the device down still
            triggers the ``slot-rollback`` rung (``None`` disables the
            gate).
        fallback_workload: Registry name of the known-good generation's
            workload, booted by the ``slot-rollback`` rung (``None``
            skips the rung).  A name, not a factory, so the policy stays
            pure data for fingerprints and worker pickles.
        fallback_bb: BB feature set for the ``slot-rollback`` boot
            (``None`` = :meth:`BBConfig.none`).  The fallback boot never
            carries the trial's fault plan: the known-good image does not
            contain the broken update.
    """

    label: str = "default"
    seed: int = 0
    ladder: tuple[str, ...] = DEFAULT_LADDER
    snapshot: SnapshotPolicy | None = None
    base_bb: BBConfig | None = None
    reboot_overhead_ns: int = msec(400)
    forced_start_timeout_ns: int = msec(5_000)
    restart_backoff_factor: float = 2.0
    restart_jitter: float = 0.1
    on_failure_handler: str | None = "recovery-notifier.service"
    max_boot_ns: int | None = None
    fallback_workload: str | None = None
    fallback_bb: BBConfig | None = None

    def __post_init__(self) -> None:
        if not self.label:
            raise ConfigurationError("RecoveryPolicy.label cannot be empty")
        if not self.ladder:
            raise ConfigurationError("RecoveryPolicy.ladder cannot be empty")
        unknown = [rung for rung in self.ladder if rung not in _KNOWN_RUNGS]
        if unknown:
            raise ConfigurationError(
                f"unknown ladder rungs {unknown}; choose from "
                f"{', '.join(DEFAULT_LADDER)}")
        if self.reboot_overhead_ns < 0 or self.forced_start_timeout_ns < 0:
            raise ConfigurationError("recovery overheads cannot be negative")
        if self.restart_backoff_factor < 1.0:
            raise ConfigurationError(
                f"restart_backoff_factor must be >= 1.0, "
                f"got {self.restart_backoff_factor!r}")
        if not 0.0 <= self.restart_jitter <= 1.0:
            raise ConfigurationError(
                f"restart_jitter must be in [0, 1], "
                f"got {self.restart_jitter!r}")
        if self.max_boot_ns is not None and self.max_boot_ns <= 0:
            raise ConfigurationError(
                f"max_boot_ns must be positive when set, "
                f"got {self.max_boot_ns!r}")
        if self.fallback_workload is not None and not self.fallback_workload:
            raise ConfigurationError(
                "fallback_workload cannot be an empty string")


@dataclass(slots=True)
class AttemptRecord:
    """One ladder rung's attempt, as recorded in the recovery section."""

    rung: str
    outcome: str  # completed | degraded | failed | wedged | skipped
    boot_ns: int
    failed_units: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view (shape pinned by ``RECOVERY_RUNG_KEYS``)."""
        return {"rung": self.rung, "outcome": self.outcome,
                "boot_ns": self.boot_ns,
                "failed_units": list(self.failed_units)}


@dataclass(slots=True)
class RecoveryOutcome:
    """Everything a supervised recovery run produced.

    ``report`` is the final successful :class:`BootReport` (``None`` when
    the ladder was exhausted); ``degraded_report`` the last failure's
    post-mortem.  Both are carried for programmatic consumers but stay
    out of :meth:`to_dict` — the JSON recovery section is summary data.
    """

    policy: str
    seed: int
    converged: bool
    rung: str | None
    rungs: list[AttemptRecord]
    total_recovery_ns: int
    restart_history: dict[str, dict[str, Any]]
    masked_units: list[str]
    snapshot: dict[str, Any] | None
    report: "BootReport | None" = None
    degraded_report: "DegradedBootReport | None" = None

    @property
    def clean(self) -> bool:
        """Recovered on a fast path with nothing lost (exit code 0)."""
        return (self.converged
                and not self.masked_units
                and self.rung in (RUNG_SNAPSHOT, RUNG_AS_CONFIGURED)
                and (self.report is None or not self.report.degraded))

    @property
    def exit_code(self) -> int:
        """CLI contract: 0 clean, 3 recovered-degraded, 1 unrecoverable."""
        if self.clean:
            return 0
        return 3 if self.converged else 1

    def to_dict(self) -> dict[str, Any]:
        """The JSON recovery section (see ``validate_recovery_dict``)."""
        return {
            "policy": self.policy,
            "seed": self.seed,
            "converged": self.converged,
            "rung": self.rung,
            "rungs": [record.to_dict() for record in self.rungs],
            "total_recovery_ns": self.total_recovery_ns,
            "restart_history": {
                unit: {"attempts": entry["attempts"],
                       "delays_ns": list(entry["delays_ns"])}
                for unit, entry in sorted(self.restart_history.items())},
            "masked_units": list(self.masked_units),
            "snapshot": dict(self.snapshot) if self.snapshot else None,
        }

    def summary(self) -> str:
        """One paragraph for humans (the CLI prints this)."""
        if self.converged:
            head = (f"recovered at rung {self.rung!r} after "
                    f"{len(self.rungs)} attempt(s), "
                    f"{self.total_recovery_ns / 1e6:.1f} ms total")
        else:
            head = (f"unrecoverable after {len(self.rungs)} attempt(s), "
                    f"{self.total_recovery_ns / 1e6:.1f} ms spent")
        lines = [head]
        for record in self.rungs:
            line = (f"  {record.rung}: {record.outcome} "
                    f"({record.boot_ns / 1e6:.1f} ms)")
            if record.failed_units:
                line += f" failed: {', '.join(record.failed_units)}"
            lines.append(line)
        if self.masked_units:
            lines.append("  masked: " + ", ".join(self.masked_units))
        restarted = {unit: entry for unit, entry
                     in sorted(self.restart_history.items())
                     if entry["delays_ns"]}
        if restarted:
            lines.append("  restarts: " + ", ".join(
                f"{unit}×{entry['attempts']}"
                for unit, entry in restarted.items()))
        return "\n".join(lines)
