"""The escalating boot-recovery orchestrator.

A consumer device has no operator: whatever breaks during boot, the TV
must come up (§2.5.2 frames systemd's restart/``OnFailure=`` machinery as
exactly this recovery mechanism, and §4 treats the hibernation snapshot
as a fast path that must fail over to a full boot when the image is
torn).  :class:`BootSupervisor` packages that instinct as a deterministic
escalation ladder over :class:`~repro.core.BootSimulation`:

1. ``snapshot`` — verify the hibernation image's integrity; restore when
   intact, fall through to a full boot when corrupt,
2. ``as-configured`` — one ordinary boot under the policy's BB feature
   set,
3. ``restart`` — same boot, but every unit is forced onto
   ``Restart=on-failure`` with exponential backoff + seeded jitter, units
   without a watchdog get one (hangs become failures), and a diagnostic
   ``OnFailure=`` handler is wired onto the BB Group,
4. ``isolate`` — additionally enable BB Group isolation and mask the
   units that failed in earlier rungs (when they are outside the
   completion-critical closure),
5. ``safe-mode`` — vanilla boot (no BB features) with everything outside
   the completion closure masked,
6. ``rescue`` — synthesize a ``rescue.target`` requiring only the
   completion-critical units that are not implicated by the last
   failure's post-mortem, and boot just those.

Devices with A/B boot slots (:mod:`repro.generations`) append a seventh
rung, ``slot-rollback``: boot the known-good generation named by the
policy's ``fallback_workload``/``fallback_bb`` instead of the trial one.
Orthogonally, a policy ``max_boot_ns`` turns slow-but-successful boots
into ``regressed`` attempts, so a firmware update that merely regresses
boot time still escalates down to the rollback.

The ladder stops at the first rung whose boot reaches completion.  Start
attempts accumulate across rungs (``attempt_offsets``), so a fault plan's
``fail_attempts`` budget keeps draining across supervised reboots just as
flash state would persist across real ones.  Everything random is derived
from the policy seed — replaying a recovery run is byte-identical.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING

from repro.core.bb import BootSimulation
from repro.core.config import BBConfig
from repro.core.degraded import DegradedBootError
from repro.errors import ConfigurationError
from repro.graph.depgraph import DependencyGraph
from repro.initsys.registry import UnitRegistry
from repro.initsys.units import (RestartPolicy, ServiceType, SimCost, Unit,
                                 UnitType, replace_unit)
from repro.kernel.snapshot import verify_snapshot
from repro.quantities import usec
from repro.recovery.policy import (RUNG_AS_CONFIGURED, RUNG_ISOLATE,
                                   RUNG_RESCUE, RUNG_RESTART, RUNG_SAFE_MODE,
                                   RUNG_SLOT_ROLLBACK, RUNG_SNAPSHOT,
                                   AttemptRecord, RecoveryOutcome,
                                   RecoveryPolicy)
from repro.workloads.base import Workload

if TYPE_CHECKING:
    from repro.core.degraded import DegradedBootReport
    from repro.faults.plan import FaultPlan

#: The synthesized emergency goal of the ``rescue`` rung.
RESCUE_TARGET = "rescue.target"

#: Rung outcome words (pinned by ``RECOVERY_OUTCOMES`` in the schema).
OUTCOME_COMPLETED = "completed"
OUTCOME_DEGRADED = "degraded"
OUTCOME_FAILED = "failed"
OUTCOME_WEDGED = "wedged"
OUTCOME_SKIPPED = "skipped"
OUTCOME_REGRESSED = "regressed"


class _RungNotApplicable(Exception):
    """This rung cannot run in the current state (recorded as skipped)."""


class BootSupervisor:
    """Drive one workload through the recovery ladder.

    Args:
        workload: Device + service set to boot.
        policy: Escalation policy; defaults to :class:`RecoveryPolicy()`.
        fault_plan: Optional fault plan, shared by every rung's boot (the
            injector is recompiled per boot with the accumulated attempt
            offsets, so transient faults clear across supervised reboots).
        monitor: Optional :class:`~repro.verify.InvariantMonitor`,
            re-attached to every rung's simulator and finalized on the
            converging boot.

    A supervisor is single-shot, like the simulation it wraps.
    """

    def __init__(self, workload: Workload,
                 policy: RecoveryPolicy | None = None,
                 fault_plan: "FaultPlan | None" = None,
                 monitor=None):
        self.workload = workload
        self.policy = policy if policy is not None else RecoveryPolicy()
        self.fault_plan = fault_plan
        self.monitor = monitor
        self.simulations: list[BootSimulation] = []
        self._closure_cache: frozenset[str] | None = None

    # ----------------------------------------------------------------- run

    def run(self) -> RecoveryOutcome:
        """Climb the ladder until a boot completes or rungs run out."""
        policy = self.policy
        records: list[AttemptRecord] = []
        total_ns = 0
        attempt_offsets: dict[str, int] = {}
        restart_history: dict[str, dict] = {}
        failed_ever: set[str] = set()
        snapshot_section: dict | None = None
        last_failure: "DegradedBootReport | None" = None

        for rung in policy.ladder:
            if rung == RUNG_SNAPSHOT:
                if policy.snapshot is None:
                    continue
                snapshot_section, record = self._try_snapshot()
                records.append(record)
                total_ns += record.boot_ns
                if record.outcome == OUTCOME_COMPLETED:
                    return self._converged(rung, records, total_ns,
                                           restart_history, set(),
                                           snapshot_section, report=None)
                continue

            if rung == RUNG_SLOT_ROLLBACK:
                record, fallback_report = self._try_slot_rollback()
                records.append(record)
                total_ns += record.boot_ns
                if record.outcome in (OUTCOME_COMPLETED, OUTCOME_DEGRADED):
                    return self._converged(rung, records, total_ns,
                                           restart_history, set(),
                                           snapshot_section, fallback_report)
                if record.outcome != OUTCOME_SKIPPED:
                    total_ns += policy.reboot_overhead_ns
                continue

            try:
                workload, bb, masked = self._prepare(rung, failed_ever,
                                                     last_failure)
            except _RungNotApplicable:
                records.append(AttemptRecord(rung, OUTCOME_SKIPPED, 0))
                continue

            jitter = policy.restart_jitter if rung != RUNG_AS_CONFIGURED else 0.0
            sim = BootSimulation(
                workload, bb=bb, fault_plan=self.fault_plan,
                monitor=self.monitor, restart_seed=policy.seed,
                restart_jitter=jitter, attempt_offsets=dict(attempt_offsets))
            self.simulations.append(sim)
            try:
                report = sim.run()
            except DegradedBootError as exc:
                self._harvest(sim, attempt_offsets, restart_history)
                last_failure = exc.report
                failed_ever.update(exc.report.failed_units)
                word = OUTCOME_WEDGED if exc.report.boot_wedged else OUTCOME_FAILED
                records.append(AttemptRecord(
                    rung, word, exc.report.time_ns,
                    sorted(exc.report.failed_units)))
                total_ns += exc.report.time_ns + policy.reboot_overhead_ns
                continue

            self._harvest(sim, attempt_offsets, restart_history)
            if (policy.max_boot_ns is not None
                    and report.boot_complete_ns > policy.max_boot_ns):
                # The boot finished, but slower than the policy tolerates
                # (an OTA update regressing boot time): count it as a
                # failed attempt and escalate toward slot-rollback.
                records.append(AttemptRecord(
                    rung, OUTCOME_REGRESSED, report.boot_complete_ns,
                    sorted(report.failed_units)))
                total_ns += report.boot_complete_ns + policy.reboot_overhead_ns
                continue
            word = (OUTCOME_DEGRADED if report.degraded or masked
                    else OUTCOME_COMPLETED)
            records.append(AttemptRecord(rung, word, report.boot_complete_ns,
                                         sorted(report.failed_units)))
            total_ns += report.boot_complete_ns
            return self._converged(rung, records, total_ns, restart_history,
                                   masked, snapshot_section, report)

        return RecoveryOutcome(
            policy=policy.label, seed=policy.seed, converged=False, rung=None,
            rungs=records, total_recovery_ns=total_ns,
            restart_history=self._restarted_only(restart_history),
            masked_units=[], snapshot=snapshot_section,
            report=None, degraded_report=last_failure)

    # --------------------------------------------------------------- rungs

    def _try_snapshot(self) -> tuple[dict, AttemptRecord]:
        """Verify the hibernation image; restore it when intact."""
        policy = self.policy
        assert policy.snapshot is not None
        model = policy.snapshot.model
        if not model.usable_with_factory_image():
            # Third-party apps invalidate the factory snapshot (§4); the
            # gate costs nothing because nothing is read.
            section = {"intact": False, "verify_ns": 0, "restore_ns": 0}
            return section, AttemptRecord(RUNG_SNAPSHOT, OUTCOME_SKIPPED, 0)
        platform = self.workload.platform_factory()
        verdict = verify_snapshot(model, platform, policy.seed,
                                  corrupt_rate=policy.snapshot.corrupt_rate)
        if not verdict.intact:
            section = {"intact": False, "verify_ns": verdict.verify_time_ns,
                       "restore_ns": 0}
            return section, AttemptRecord(RUNG_SNAPSHOT, OUTCOME_SKIPPED,
                                          verdict.verify_time_ns)
        restore_ns = model.restore_time_ns(platform)
        section = {"intact": True, "verify_ns": verdict.verify_time_ns,
                   "restore_ns": restore_ns}
        return section, AttemptRecord(RUNG_SNAPSHOT, OUTCOME_COMPLETED,
                                      verdict.verify_time_ns + restore_ns)

    def _try_slot_rollback(self) -> tuple[AttemptRecord, object]:
        """Boot the known-good A/B slot's generation instead of the trial.

        The fallback profile comes from the policy (a workload *name* and
        a BB feature set, pure data), and the boot deliberately drops the
        trial's fault plan: the standby slot still holds the pre-update
        image, so the update's faults do not apply.  The policy's
        ``max_boot_ns`` gate still does — a "known-good" slot that
        regressed too would not be a recovery.
        """
        policy = self.policy
        if policy.fallback_workload is None:
            return AttemptRecord(RUNG_SLOT_ROLLBACK, OUTCOME_SKIPPED, 0), None
        from repro.workloads import WORKLOAD_FACTORIES

        factory = WORKLOAD_FACTORIES.get(policy.fallback_workload)
        if factory is None:
            raise ConfigurationError(
                f"unknown fallback workload {policy.fallback_workload!r}; "
                f"choose from {', '.join(sorted(WORKLOAD_FACTORIES))}")
        bb = (policy.fallback_bb if policy.fallback_bb is not None
              else BBConfig.none())
        sim = BootSimulation(factory(), bb=bb, fault_plan=None,
                             monitor=self.monitor, restart_seed=policy.seed)
        self.simulations.append(sim)
        try:
            report = sim.run()
        except DegradedBootError as exc:
            word = (OUTCOME_WEDGED if exc.report.boot_wedged
                    else OUTCOME_FAILED)
            return AttemptRecord(RUNG_SLOT_ROLLBACK, word,
                                 exc.report.time_ns,
                                 sorted(exc.report.failed_units)), None
        if (policy.max_boot_ns is not None
                and report.boot_complete_ns > policy.max_boot_ns):
            return AttemptRecord(RUNG_SLOT_ROLLBACK, OUTCOME_REGRESSED,
                                 report.boot_complete_ns,
                                 sorted(report.failed_units)), None
        word = OUTCOME_DEGRADED if report.degraded else OUTCOME_COMPLETED
        return AttemptRecord(RUNG_SLOT_ROLLBACK, word,
                             report.boot_complete_ns,
                             sorted(report.failed_units)), report

    def _prepare(self, rung: str, failed_ever: set[str],
                 last_failure: "DegradedBootReport | None",
                 ) -> tuple[Workload, BBConfig, set[str]]:
        """Build the (workload, bb, masked-units) triple for one rung."""
        base_bb = (self.policy.base_bb if self.policy.base_bb is not None
                   else BBConfig.none())
        if rung == RUNG_AS_CONFIGURED:
            return self.workload, base_bb, set()
        if rung == RUNG_RESTART:
            workload = self._wrap(lambda reg: self._force_restarts(reg))
            return workload, base_bb, set()
        if rung == RUNG_ISOLATE:
            masked = self._mask_cascade(
                failed_ever, set(self._closure()) | {self.workload.goal})

            def mutate(registry: UnitRegistry) -> None:
                self._force_restarts(registry)
                for name in masked:
                    if name in registry:
                        registry.remove(name)

            bb = base_bb.with_feature("group_isolation", True)
            return self._wrap(mutate), bb, masked
        if rung == RUNG_SAFE_MODE:
            return self._prepare_safe_mode()
        if rung == RUNG_RESCUE:
            return self._prepare_rescue(failed_ever, last_failure)
        raise _RungNotApplicable(rung)

    def _prepare_safe_mode(self) -> tuple[Workload, BBConfig, set[str]]:
        """Vanilla boot with only the completion-critical closure."""
        goal = self.workload.goal
        protected = set(self._closure()) | {goal}
        registry = self.workload.fresh_registry()
        masked = self._mask_cascade(
            (name for name in registry.names if name not in protected),
            protected)

        def mutate(reg: UnitRegistry) -> None:
            self._force_restarts(reg)
            for name in masked:
                if name in reg:
                    reg.remove(name)
            # The goal's pull of the completion units usually arrives via
            # WantedBy= of units we just removed; pin it strongly instead.
            goal_unit = replace_unit(reg.get(goal))
            for name in self.workload.completion_units:
                if name not in goal_unit.requires and name != goal:
                    goal_unit.requires.append(name)
            reg.replace(goal_unit)

        return self._wrap(mutate), BBConfig.none(), masked

    def _prepare_rescue(self, failed_ever: set[str],
                        last_failure: "DegradedBootReport | None",
                        ) -> tuple[Workload, BBConfig, set[str]]:
        """Boot only the completion-critical units the post-mortem clears."""
        if last_failure is None and not failed_ever:
            raise _RungNotApplicable("nothing failed, nothing to rescue")
        poison = set(failed_ever)
        if last_failure is not None:
            poison.update(last_failure.failed_units)
            if last_failure.boot_wedged:
                # A drained queue means every unsettled unit is genuinely
                # stuck (a device that never appeared), not merely late.
                poison.update(last_failure.unsettled_units)
                if last_failure.culprit_unit:
                    poison.add(last_failure.culprit_unit)
        poison = self._mask_cascade(poison, protected=set())
        emergency = sorted(self._closure() - poison - {RESCUE_TARGET})
        emergency = [name for name in emergency
                     if UnitType.from_name(name) is not UnitType.TARGET]
        if not emergency:
            raise _RungNotApplicable("every completion-critical unit is "
                                     "implicated by the failure")
        registry = self.workload.fresh_registry()
        masked = {name for name in registry.names if name not in emergency}

        def mutate(reg: UnitRegistry) -> None:
            for name in sorted(masked):
                if name in reg:
                    reg.remove(name)
            reg.add(Unit(name=RESCUE_TARGET,
                         description="emergency recovery goal",
                         requires=list(emergency)))
            self._force_restarts(reg, closure=set(emergency))

        workload = self._wrap(mutate, goal=RESCUE_TARGET,
                              completion_units=(RESCUE_TARGET,))
        return workload, BBConfig.none(), masked

    # ----------------------------------------------------- registry surgery

    def _wrap(self, mutate, goal: str | None = None,
              completion_units: tuple[str, ...] | None = None) -> Workload:
        """A shallow workload copy whose registry factory applies ``mutate``."""
        base = self.workload
        wrapped = copy.copy(base)
        base_factory = base.registry_factory

        def factory() -> UnitRegistry:
            registry = base_factory()
            mutate(registry)
            return registry

        wrapped.registry_factory = factory
        if goal is not None:
            wrapped.goal = goal
        if completion_units is not None:
            wrapped.completion_units = completion_units
        return wrapped

    def _force_restarts(self, registry: UnitRegistry,
                        closure: set[str] | None = None) -> None:
        """Force restartable, watchdogged semantics onto every unit."""
        policy = self.policy
        handler = policy.on_failure_handler
        if closure is None:
            closure = set(self._closure())
        for name in registry.names:
            unit = registry.get(name)
            if unit.unit_type is UnitType.TARGET:
                continue
            clone = replace_unit(unit)
            if clone.restart_policy is RestartPolicy.NO:
                clone.restart_policy = RestartPolicy.ON_FAILURE
            if clone.start_timeout_ns == 0 and policy.forced_start_timeout_ns:
                clone.start_timeout_ns = policy.forced_start_timeout_ns
            if clone.restart_backoff_factor == 1.0:
                clone.restart_backoff_factor = policy.restart_backoff_factor
            if (handler is not None and name in closure and name != handler
                    and handler not in clone.on_failure):
                clone.on_failure.append(handler)
            registry.replace(clone)
        if handler is not None and handler not in registry:
            registry.add(Unit(
                name=handler,
                description="recovery diagnostic handler",
                service_type=ServiceType.ONESHOT,
                cost=SimCost(fork_ns=usec(100), exec_bytes=16 * 1024,
                             dynamic_link_ns=0, init_cpu_ns=usec(200),
                             stop_ns=0, memory_bytes=256 * 1024)))

    def _closure(self) -> frozenset[str]:
        """Completion-critical strong closure, with install sections applied."""
        if self._closure_cache is None:
            registry = self.workload.fresh_registry()
            registry.apply_install_sections()
            closure = DependencyGraph(registry).strong_closure(
                self.workload.completion_units)
            self._closure_cache = frozenset(closure)
        return self._closure_cache

    def _mask_cascade(self, candidates, protected: set[str]) -> set[str]:
        """Grow a maskable set: requirers of a masked unit get masked too.

        ``protected`` units are never masked; by construction the closure
        is requires-closed, so the cascade can never reach into it.
        """
        registry = self.workload.fresh_registry()
        requirers: dict[str, set[str]] = {}
        for unit in registry:
            for dep in unit.requires:
                requirers.setdefault(dep, set()).add(unit.name)
            for target in unit.required_by:
                requirers.setdefault(unit.name, set()).add(target)
        masked: set[str] = set()
        frontier = [name for name in candidates
                    if name in registry and name not in protected]
        while frontier:
            name = frontier.pop()
            if name in masked:
                continue
            masked.add(name)
            for requirer in requirers.get(name, ()):
                if (requirer in registry and requirer not in masked
                        and requirer not in protected):
                    frontier.append(requirer)
        return masked

    # ------------------------------------------------------------- plumbing

    def _harvest(self, sim: BootSimulation, attempt_offsets: dict[str, int],
                 restart_history: dict[str, dict]) -> None:
        """Fold one boot's attempt counts into the cross-rung ledgers."""
        manager = sim.manager
        if manager is None or manager.transaction is None:
            return
        for job in manager.transaction.jobs.values():
            if not job.attempts:
                continue
            attempt_offsets[job.name] = (attempt_offsets.get(job.name, 0)
                                         + job.attempts)
            entry = restart_history.setdefault(
                job.name, {"attempts": 0, "delays_ns": []})
            entry["attempts"] += job.attempts
            entry["delays_ns"].extend(job.restart_delays_ns)

    @staticmethod
    def _restarted_only(restart_history: dict[str, dict]) -> dict[str, dict]:
        """Keep only units that actually went around the restart loop."""
        return {unit: entry for unit, entry in restart_history.items()
                if entry["delays_ns"]}

    def _converged(self, rung: str, records: list[AttemptRecord],
                   total_ns: int, restart_history: dict[str, dict],
                   masked: set[str], snapshot_section: dict | None,
                   report) -> RecoveryOutcome:
        outcome = RecoveryOutcome(
            policy=self.policy.label, seed=self.policy.seed, converged=True,
            rung=rung, rungs=records, total_recovery_ns=total_ns,
            restart_history=self._restarted_only(restart_history),
            masked_units=sorted(masked), snapshot=snapshot_section,
            report=report, degraded_report=None)
        if report is not None:
            report.recovery = outcome.to_dict()
        return outcome
