"""Parallel sweep runner with deterministic result caching.

Every evaluation artifact re-runs dozens of full :class:`BootSimulation`\\ s,
and every one of those runs is a pure function of its inputs (DESIGN §4.5).
This package exploits that:

* :class:`~repro.runner.jobs.SimJob` — a picklable, declarative description
  of one simulation (workload factory + params, :class:`BBConfig`, cores,
  kernel config) with a stable content :meth:`~repro.runner.jobs.SimJob.fingerprint`,
* :class:`~repro.runner.cache.ResultCache` — an in-memory + optional
  on-disk content-addressed result store keyed by job fingerprint and a
  code-version salt,
* :mod:`~repro.runner.schedule` — the scheduling layer shared with the
  fleet service: :func:`~repro.runner.schedule.plan_batch` (the
  dedup + cache cuts), :class:`~repro.runner.schedule.JobScheduler`
  (priority queue with single-flight dedup, fair-share dispatch and
  per-client ordered delivery) and
  :func:`~repro.runner.schedule.resolve_worker_count` (the one shared
  ``--jobs`` policy),
* :class:`~repro.runner.sweep.SweepRunner` — deduplicates jobs and fans
  them out over a ``ProcessPoolExecutor`` (``jobs=1`` is a strictly
  serial, deterministic fallback),
* :class:`~repro.runner.branch.BranchRunner` — the checkpoint/fork
  engine: jobs sharing a prefix fingerprint run as one recorded prefix
  boot plus cheap copy-on-write suffixes (``SweepRunner(branch=True)``),
* :mod:`~repro.runner.bench` — the engine/cache microbenchmarks, the
  checkpoint benchmark and the serial-vs-parallel sweep benchmark behind
  ``python -m repro bench``.

The experiment drivers under :mod:`repro.experiments` enumerate their
boots as ``SimJob``\\ s and submit them through a shared runner, so
``python -m repro experiment all`` never boots the same
(workload, config, cores) twice.
"""

from repro.runner.branch import (BranchRunner, BranchStats, canonical_bytes,
                                 default_backend)
from repro.runner.cache import CacheStats, ResultCache
from repro.runner.jobs import (CheckpointSpec, SimJob, code_version,
                               execute_job, make_boot_simulation)
from repro.runner.schedule import (BatchPlan, JobScheduler, SchedulerStats,
                                   Ticket, plan_batch, resolve_worker_count)
from repro.runner.sweep import SweepRunner, SweepStats

__all__ = [
    "BatchPlan",
    "BranchRunner",
    "BranchStats",
    "CacheStats",
    "CheckpointSpec",
    "JobScheduler",
    "ResultCache",
    "SchedulerStats",
    "SimJob",
    "SweepRunner",
    "SweepStats",
    "Ticket",
    "canonical_bytes",
    "code_version",
    "default_backend",
    "execute_job",
    "make_boot_simulation",
    "plan_batch",
    "resolve_worker_count",
]
