"""Performance benchmarks behind ``python -m repro bench``.

Two measurements seed the repo's perf trajectory, recorded to
``BENCH_runner.json``:

* **Engine microbenchmark** — events/second through the optimized
  :class:`~repro.sim.events.EventQueue` versus a faithful copy of the
  pre-optimization dataclass-ordered queue, on an identical deterministic
  push/pop workload.  This keeps the hot-path speedup measurable forever,
  not just in the PR that made it.
* **Sweep benchmark** — wall time of the full ``experiment all`` sweep
  executed serially (``jobs=1``) versus fanned out over worker processes,
  plus the dedup/cache statistics, with a byte-identity check between the
  two runs' rendered artifacts.
"""

from __future__ import annotations

import heapq
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.runner.cache import ResultCache
from repro.runner.jobs import code_version
from repro.runner.sweep import SweepRunner
from repro.sim.events import EventQueue


# --------------------------------------------------------------------------
# Legacy event queue (the pre-optimization implementation, kept verbatim as
# the microbenchmark baseline).


@dataclass(order=True, slots=True)
class _LegacyScheduledEvent:
    time_ns: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    executed: bool = field(default=False, compare=False)


class _LegacyEventQueue:
    """Dataclass-ordered heap, as shipped before the tuple-heap rewrite."""

    def __init__(self) -> None:
        self._heap: list[_LegacyScheduledEvent] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time_ns: int, callback: Callable[[], None]) -> _LegacyScheduledEvent:
        event = _LegacyScheduledEvent(time_ns=time_ns, seq=self._seq,
                                      callback=callback)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> _LegacyScheduledEvent:
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            event.executed = True
            return event
        raise IndexError("pop from empty event queue")


# --------------------------------------------------------------------------
# Engine microbenchmark.


def _drive_queue(queue: Any, events: int) -> int:
    """Push/pop ``events`` through ``queue`` with steady-state heap churn.

    A seeded LCG generates the schedule, so both queue implementations see
    the exact same sequence of operations.  Returns the number of events
    processed (sanity value, always ``events``).
    """
    state = 0x2016_BB
    now = 0
    processed = 0

    def nothing() -> None:
        return None

    # Warm the heap to a realistic depth before measuring steady churn.
    for _ in range(256):
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        queue.push(now + state % 1_000_000, nothing)
    while processed < events:
        event = queue.pop()
        now = event.time_ns
        processed += 1
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        queue.push(now + 1 + state % 1_000_000, nothing)
    return processed


def bench_event_queue(events: int = 200_000, repeats: int = 3) -> dict[str, float]:
    """Events/second for the optimized queue vs the legacy baseline.

    Best-of-``repeats`` wall time for each implementation on an identical
    deterministic workload.
    """
    def best_eps(factory: Callable[[], Any]) -> float:
        best = float("inf")
        for _ in range(repeats):
            queue = factory()
            start = time.perf_counter()
            _drive_queue(queue, events)
            best = min(best, time.perf_counter() - start)
        return events / best

    optimized = best_eps(EventQueue)
    legacy = best_eps(_LegacyEventQueue)
    return {
        "events": float(events),
        "optimized_events_per_sec": optimized,
        "legacy_events_per_sec": legacy,
        "speedup": optimized / legacy,
    }


# --------------------------------------------------------------------------
# Sweep benchmark.


def _run_all_experiments(runner: SweepRunner | None) -> dict[str, str]:
    """Render every experiment artifact, routing boots through ``runner``."""
    import inspect

    from repro.cli import _experiments

    rendered: dict[str, str] = {}
    for exp_id, (run, render) in _experiments().items():
        kwargs: dict[str, Any] = {}
        if runner is not None and "runner" in inspect.signature(run).parameters:
            kwargs["runner"] = runner
        rendered[exp_id] = render(run(**kwargs))
    return rendered


def bench_sweep(jobs: int, cache_dir: str | None = None) -> dict[str, Any]:
    """Wall time of ``experiment all``: serial vs ``jobs`` workers.

    Each leg gets a fresh cache (optionally disk-backed under
    ``cache_dir``) so neither run is subsidized by the other; the dedup
    and cache statistics reported are the parallel leg's.
    """
    start = time.perf_counter()
    serial_rendered = _run_all_experiments(SweepRunner(jobs=1))
    serial_s = time.perf_counter() - start

    with SweepRunner(jobs=jobs, cache=ResultCache(cache_dir)) as runner:
        start = time.perf_counter()
        parallel_rendered = _run_all_experiments(runner)
        parallel_s = time.perf_counter() - start
        stats = runner.stats
        cache_stats = runner.cache.stats

    return {
        "jobs": jobs,
        "serial_wall_s": serial_s,
        "parallel_wall_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s else 0.0,
        "outputs_identical": serial_rendered == parallel_rendered,
        "runner": {
            "submitted": stats.submitted,
            "deduplicated": stats.deduplicated,
            "cache_hits": stats.cache_hits,
            "executed": stats.executed,
            "savings_rate": stats.savings_rate,
        },
        "cache": {
            "memory_hits": cache_stats.memory_hits,
            "disk_hits": cache_stats.disk_hits,
            "misses": cache_stats.misses,
            "hit_rate": cache_stats.hit_rate,
        },
    }


def build_record(jobs: int, events: int = 200_000,
                 skip_sweep: bool = False,
                 cache_dir: str | None = None) -> dict[str, Any]:
    """The full ``BENCH_runner.json`` payload."""
    record: dict[str, Any] = {
        "code_version": code_version(),
        "event_queue": bench_event_queue(events=events),
    }
    if not skip_sweep:
        record["experiment_all"] = bench_sweep(jobs, cache_dir=cache_dir)
    return record


def write_record(record: dict[str, Any], path: str) -> None:
    """Serialize a benchmark record as pretty JSON."""
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
