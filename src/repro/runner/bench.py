"""Performance benchmarks behind ``python -m repro bench``.

Six measurements seed the repo's perf trajectory, recorded to
``BENCH_runner.json``:

* **Engine microbenchmark** — events/second through the optimized
  :class:`~repro.sim.events.EventQueue` versus a faithful copy of the
  pre-optimization dataclass-ordered queue, on an identical deterministic
  push/pop workload.  This keeps the hot-path speedup measurable forever,
  not just in the PR that made it.
* **Cache microbenchmark** — put+get round-trips of a real boot report
  through the pickle-bytes :class:`~repro.runner.cache.ResultCache`
  versus a faithful copy of the pre-optimization deepcopy-on-both-ends
  cache.
* **Checkpoint benchmark** — cold-cache wall time of a 100+-cell
  late-phase fault matrix executed from scratch versus through the
  checkpoint/fork engine (:mod:`repro.runner.branch`), with a canonical
  byte-identity check between the two runs' results.  The matrix is
  derived from a prefix probe: deferred-task faults (post-completion
  divergence), transient flakes of the latest-queried services, and
  settle jitter — cells whose shared prefix is long by construction,
  which is exactly the sweep shape branching exists for.
* **Design-space benchmark** — wall time of the analytically pre-filtered
  design-space sweep (:mod:`repro.experiments.design_space`: the
  closed-form boot predictor ranks 640 feature/core cells and only the
  per-workload frontier reaches the DES) versus a brute-force DES of
  every cell, with a frontier-identity check between the two.
* **Sweep benchmark** — wall time of the full ``experiment all`` sweep
  executed serially (``jobs=1``) versus fanned out over worker processes,
  plus the dedup/cache statistics, with a byte-identity check between the
  two runs' rendered artifacts.
* **Fleet benchmark** — sustained jobs/minute of a 10k+-job campaign
  streamed through the async boot service (:mod:`repro.fleet`), with the
  fleet-vs-serial byte-identity verdict and the single-flight /
  cache-hit breakdown.
"""

from __future__ import annotations

import copy
import heapq
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.runner.cache import ResultCache
from repro.runner.jobs import code_version
from repro.runner.sweep import SweepRunner
from repro.sim.events import EventQueue


# --------------------------------------------------------------------------
# Legacy event queue (the pre-optimization implementation, kept verbatim as
# the microbenchmark baseline).


@dataclass(order=True, slots=True)
class _LegacyScheduledEvent:
    time_ns: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    executed: bool = field(default=False, compare=False)


class _LegacyEventQueue:
    """Dataclass-ordered heap, as shipped before the tuple-heap rewrite."""

    def __init__(self) -> None:
        self._heap: list[_LegacyScheduledEvent] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time_ns: int, callback: Callable[[], None]) -> _LegacyScheduledEvent:
        event = _LegacyScheduledEvent(time_ns=time_ns, seq=self._seq,
                                      callback=callback)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> _LegacyScheduledEvent:
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            event.executed = True
            return event
        raise IndexError("pop from empty event queue")


# --------------------------------------------------------------------------
# Engine microbenchmark.


def _drive_queue(queue: Any, events: int) -> int:
    """Push/pop ``events`` through ``queue`` with steady-state heap churn.

    A seeded LCG generates the schedule, so both queue implementations see
    the exact same sequence of operations.  Returns the number of events
    processed (sanity value, always ``events``).
    """
    state = 0x2016_BB
    now = 0
    processed = 0

    def nothing() -> None:
        return None

    # Warm the heap to a realistic depth before measuring steady churn.
    for _ in range(256):
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        queue.push(now + state % 1_000_000, nothing)
    while processed < events:
        event = queue.pop()
        now = event.time_ns
        processed += 1
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        queue.push(now + 1 + state % 1_000_000, nothing)
    return processed


def bench_event_queue(events: int = 200_000, repeats: int = 3) -> dict[str, float]:
    """Events/second for the optimized queue vs the legacy baseline.

    Best-of-``repeats`` wall time for each implementation on an identical
    deterministic workload.
    """
    def best_eps(factory: Callable[[], Any]) -> float:
        best = float("inf")
        for _ in range(repeats):
            queue = factory()
            start = time.perf_counter()
            _drive_queue(queue, events)
            best = min(best, time.perf_counter() - start)
        return events / best

    optimized = best_eps(EventQueue)
    legacy = best_eps(_LegacyEventQueue)
    return {
        "events": float(events),
        "optimized_events_per_sec": optimized,
        "legacy_events_per_sec": legacy,
        "speedup": optimized / legacy,
    }


# --------------------------------------------------------------------------
# Cache microbenchmark.


class _LegacyDeepcopyCache:
    """Deepcopy-on-both-ends in-memory cache, as shipped before the
    pickle-bytes rewrite (kept verbatim as the baseline)."""

    def __init__(self) -> None:
        self._memory: dict[str, Any] = {}

    def get(self, key: str) -> tuple[bool, Any]:
        if key in self._memory:
            return True, copy.deepcopy(self._memory[key])
        return False, None

    def put(self, key: str, value: Any) -> None:
        self._memory[key] = copy.deepcopy(value)


def _reference_report() -> Any:
    """A real full-size boot report to push through the caches."""
    from repro.core.config import BBConfig
    from repro.runner.jobs import SimJob, execute_job
    from repro.workloads import opensource_tv_workload

    return execute_job(SimJob.boot(opensource_tv_workload,
                                   bb=BBConfig.full()))


def bench_cache(rounds: int = 300, repeats: int = 3) -> dict[str, float]:
    """Round-trips/second through the bytes cache vs the deepcopy cache.

    One round is a ``put`` of a real TV boot report under a fresh key
    followed by a ``get`` of it — the exact hot path a cold sweep pays
    per unique job.  Best-of-``repeats`` wall time per implementation.
    """
    report = _reference_report()

    def best_rps(factory: Callable[[], Any]) -> float:
        best = float("inf")
        for _ in range(repeats):
            cache = factory()
            start = time.perf_counter()
            for index in range(rounds):
                key = f"bench-{index}"
                cache.put(key, report)
                hit, _ = cache.get(key)
                assert hit
            best = min(best, time.perf_counter() - start)
        return rounds / best

    optimized = best_rps(ResultCache)
    legacy = best_rps(_LegacyDeepcopyCache)
    return {
        "rounds": float(rounds),
        "optimized_roundtrips_per_sec": optimized,
        "legacy_roundtrips_per_sec": legacy,
        "speedup": optimized / legacy,
    }


# --------------------------------------------------------------------------
# Checkpoint benchmark.


def checkpoint_matrix(cells: int = 120) -> list[Any]:
    """A late-phase what-if matrix of ``cells`` jobs sharing one prefix.

    Composition is probe-derived so it adapts to the workload: mostly
    per-task deferred faults (§2.5.2 post-completion work — the faults
    diverge after ~95% of the boot), plus transient flakes of the
    latest-queried services and settle jitter on the settle-capable
    units.  Speedup under branching is by construction bounded by how
    late the cells diverge; this matrix is the "what breaks *late* in
    the boot" sweep that motivates checkpointing.
    """
    from repro.core.config import BBConfig
    from repro.faults import (DeferredFault, FaultPlan, ServiceFault,
                              SettleFault)
    from repro.runner.jobs import SimJob, make_boot_simulation
    from repro.sim.checkpoint import DEFERRED, SERVICE, SETTLE, InjectorSlot
    from repro.workloads import opensource_tv_workload

    def boot(plan: Any) -> Any:
        return SimJob.boot(opensource_tv_workload, bb=BBConfig.full(),
                           fault_plan=plan)

    slot = InjectorSlot(record=True)
    probe = make_boot_simulation(boot(None), injector_slot=slot)
    probe.start()
    probe.complete()

    service_first: dict[str, int] = {}
    for record in slot.records:
        if record[0] == SERVICE and record[1] not in service_first:
            service_first[record[1]] = record[3]
    late_units = sorted(service_first, key=service_first.get)
    settle_units = sorted({r[1] for r in slot.records if r[0] == SETTLE})
    tasks = sorted({r[1] for r in slot.records if r[0] == DEFERRED})

    n_settle = min(2 * len(settle_units), max(2, cells // 16))
    n_service = min(len(late_units), max(4, cells // 8))
    n_deferred = max(0, cells - n_settle - n_service)

    jobs: list[Any] = []
    for index in range(n_deferred):
        task = tasks[index % len(tasks)]
        jobs.append(boot(FaultPlan(seed=1000 + index, deferred=(
            DeferredFault(task=task, fail_attempts=1),))))
    for index in range(n_service):
        unit = late_units[-1 - index]
        jobs.append(boot(FaultPlan(seed=2000 + index, services=(
            ServiceFault(unit=unit, fail_attempts=1),))))
    for index in range(n_settle):
        unit = settle_units[index % len(settle_units)]
        jobs.append(boot(FaultPlan(seed=3000 + index, settles=(
            SettleFault(unit=unit, jitter=0.5),))))
    return jobs


def bench_checkpoint(cells: int = 120,
                     backend: str | None = None) -> dict[str, Any]:
    """Cold-cache wall time of the matrix: from-scratch vs branched.

    Both legs run serially (``jobs=1``) on fresh caches, so the measured
    ratio is purely the checkpoint/fork engine's doing — no process pool,
    no warm cache on either side.  Results are compared cell-by-cell via
    :func:`~repro.runner.branch.canonical_bytes`.
    """
    from repro.runner.branch import canonical_bytes, default_backend

    backend = backend or default_backend()
    jobs = checkpoint_matrix(cells)

    start = time.perf_counter()
    with SweepRunner(jobs=1, branch=False) as runner:
        scratch = runner.run(jobs)
    scratch_s = time.perf_counter() - start

    start = time.perf_counter()
    with SweepRunner(jobs=1, branch=True, branch_backend=backend) as runner:
        branched = runner.run(jobs)
        stats = runner.stats
    branched_s = time.perf_counter() - start

    identical = all(canonical_bytes(a) == canonical_bytes(b)
                    for a, b in zip(scratch, branched))
    return {
        "cells": len(jobs),
        "backend": backend,
        "scratch_wall_s": scratch_s,
        "branched_wall_s": branched_s,
        "speedup": scratch_s / branched_s if branched_s else 0.0,
        "outputs_identical": identical,
        "runner": {
            "branched": stats.branched,
            "executed": stats.executed,
            "prefix_boots": stats.prefix_boots,
        },
    }


# --------------------------------------------------------------------------
# Design-space (analytic pre-filter) benchmark.


def bench_design_space(smoke: bool = False) -> dict[str, Any]:
    """Pre-filtered design-space sweep vs brute-force DES of every cell.

    Runs :mod:`repro.experiments.design_space` with the exhaustive check
    on: the closed-form predictor ranks every cell and only the
    per-workload frontier reaches the DES, then a second fresh runner
    boots *all* cells to confirm the frontier is identical and measure
    the wall time the pre-filter saved.  Both legs run serially on fresh
    caches.
    """
    from repro.experiments import design_space

    result = design_space.run(smoke=smoke, exhaustive=True)
    return {
        "cells": result.cells,
        "des_boots": result.des_boots,
        "prefilter_wall_s": result.prefilter_wall_s,
        "exhaustive_wall_s": result.exhaustive_wall_s,
        "speedup": result.speedup,
        "frontier_identical": result.frontier_identical,
    }


# --------------------------------------------------------------------------
# Sweep benchmark.


def _run_all_experiments(runner: SweepRunner | None) -> dict[str, str]:
    """Render every experiment artifact, routing boots through ``runner``."""
    import inspect

    from repro.cli import _experiments

    rendered: dict[str, str] = {}
    for exp_id, (run, render) in _experiments().items():
        kwargs: dict[str, Any] = {}
        if runner is not None and "runner" in inspect.signature(run).parameters:
            kwargs["runner"] = runner
        rendered[exp_id] = render(run(**kwargs))
    return rendered


def bench_sweep(jobs: int, cache_dir: str | None = None) -> dict[str, Any]:
    """Wall time of ``experiment all``: serial vs ``jobs`` workers.

    Each leg gets a fresh cache (optionally disk-backed under
    ``cache_dir``) so neither run is subsidized by the other; the dedup
    and cache statistics reported are the parallel leg's.
    """
    start = time.perf_counter()
    serial_rendered = _run_all_experiments(SweepRunner(jobs=1))
    serial_s = time.perf_counter() - start

    with SweepRunner(jobs=jobs, cache=ResultCache(cache_dir)) as runner:
        start = time.perf_counter()
        parallel_rendered = _run_all_experiments(runner)
        parallel_s = time.perf_counter() - start
        stats = runner.stats
        cache_stats = runner.cache.stats

    return {
        "jobs": jobs,
        "serial_wall_s": serial_s,
        "parallel_wall_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s else 0.0,
        "outputs_identical": serial_rendered == parallel_rendered,
        "runner": {
            "submitted": stats.submitted,
            "deduplicated": stats.deduplicated,
            "cache_hits": stats.cache_hits,
            "executed": stats.executed,
            "savings_rate": stats.savings_rate,
        },
        "cache": {
            "memory_hits": cache_stats.memory_hits,
            "disk_hits": cache_stats.disk_hits,
            "misses": cache_stats.misses,
            "hit_rate": cache_stats.hit_rate,
        },
    }


# --------------------------------------------------------------------------
# Fleet benchmark.


def bench_fleet(smoke: bool = False,
                total_jobs: int | None = None) -> dict[str, Any]:
    """Campaign throughput through the fleet service, identity-checked.

    Runs :func:`repro.fleet.campaign.run`: an in-process asyncio service
    on an ephemeral port, the device-matrix campaign submitted over TCP,
    every unique fingerprint replayed through a fresh serial runner and
    byte-compared against the streamed payloads.
    """
    from repro.fleet import campaign

    result = campaign.run(smoke=smoke, total_jobs=total_jobs)
    return {
        "total_jobs": result.total_jobs,
        "unique_jobs": result.unique_jobs,
        "executed": result.executed,
        "cache_hits": result.cache_hits,
        "coalesced": result.coalesced,
        "wall_s": result.wall_s,
        "jobs_per_min": result.jobs_per_min,
        "serial_wall_s": result.serial_wall_s,
        "peak_workers": result.peak_workers,
        "scaled_up": result.scaled_up,
        "scaled_down": result.scaled_down,
        "outputs_identical": result.identical,
    }


def build_record(jobs: int, events: int = 200_000,
                 skip_sweep: bool = False,
                 cache_dir: str | None = None,
                 skip_checkpoint: bool = False,
                 checkpoint_cells: int = 120,
                 checkpoint_backend: str | None = None,
                 skip_predict: bool = False,
                 skip_fleet: bool = False) -> dict[str, Any]:
    """The full ``BENCH_runner.json`` payload."""
    record: dict[str, Any] = {
        "code_version": code_version(),
        "event_queue": bench_event_queue(events=events),
        "cache": bench_cache(),
    }
    if not skip_checkpoint:
        record["checkpoint"] = bench_checkpoint(cells=checkpoint_cells,
                                                backend=checkpoint_backend)
    if not skip_predict:
        record["design_space"] = bench_design_space()
    if not skip_sweep:
        record["experiment_all"] = bench_sweep(jobs, cache_dir=cache_dir)
    if not skip_fleet:
        record["fleet"] = bench_fleet()
    return record


def write_record(record: dict[str, Any], path: str) -> None:
    """Serialize a benchmark record as pretty JSON."""
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
