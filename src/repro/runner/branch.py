"""Checkpoint/fork branch execution: one shared prefix, many suffixes.

:class:`BranchRunner` executes a group of boot jobs that share a prefix
fingerprint (same workload/config, different fault plans) as **one**
recorded null boot plus cheap divergent suffixes, instead of ``N`` full
boots.  The pipeline (see :mod:`repro.sim.checkpoint` for why this is
byte-exact):

1. **Probe** — boot the group's null prefix job once with a recording
   :class:`~repro.sim.checkpoint.InjectorSlot`, capturing every fault
   query with its sim time plus the completed master report.  The probe
   is cached under ``probe:<prefix_fingerprint>`` in the shared
   :class:`~repro.runner.cache.ResultCache`, so later sweeps over the
   same prefix skip it entirely.
2. **Divergence** — replay the recorded queries through each cell's
   compiled injector (:func:`~repro.sim.checkpoint.first_divergence`);
   the first perturbed answer's timestamp is where the cell's run stops
   being the null run.  Cells that never diverge are answered from the
   master report directly (their runs *are* the null run, modulo the
   all-zero fault tally); the null cell gets the master report itself.
3. **Branch** — boot the null prefix a second time, pausing the event
   loop just before each distinct divergence time (ascending).  At each
   pause the ``fork`` backend ``os.fork()``\\ s one copy-on-write child
   per cell due there; the child swaps the cell's injector into the
   slot, runs the suffix to quiescence, and pipes the pickled report
   back.  The ``replay`` backend does the same swap in-process on a
   per-cell prefix replay — no speedup, same code path, for platforms
   without ``fork`` and for byte-identity cross-checks.

A child that dies or errors falls back to a from-scratch
:func:`~repro.runner.jobs.execute_job`, so branching can degrade but
never lose a cell.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import selectors
import traceback
from dataclasses import dataclass
from dataclasses import replace as dataclass_replace
from typing import Any, Callable

from repro.errors import SimulationError
from repro.runner.cache import ResultCache
from repro.runner.jobs import SimJob, execute_job, make_boot_simulation
from repro.sim.checkpoint import InjectorSlot, first_divergence

#: Branch backends.  ``fork`` is the fast path (copy-on-write children);
#: ``replay`` re-runs the prefix per cell in-process and exists for
#: non-forkable platforms and identity cross-checks.
BACKEND_FORK = "fork"
BACKEND_REPLAY = "replay"

#: Cache-key namespace for prefix probes.  Job fingerprints are bare hex
#: digests, so the ``probe:`` prefix can never collide with a result key.
PROBE_KEY = "probe:"


def canonical_bytes(value: Any) -> bytes:
    """Canonical byte encoding of a result, for identity comparisons.

    ``pickle.dumps`` alone is *not* canonical for values containing sets:
    a frozenset's iteration order depends on its insertion history, so an
    otherwise equal report that crossed a process boundary (fork pipe,
    worker pool, disk cache) can re-pickle with its set elements permuted.
    This helper rewrites sets as sorted tuples (recursively, through
    dataclasses and containers) before pickling, making equal values
    encode to equal bytes regardless of how many round-trips they took.
    Dict order is preserved — it reflects deterministic event order and
    *should* participate in the comparison.
    """
    return pickle.dumps(_canonical(value), protocol=pickle.HIGHEST_PROTOCOL)


def _canonical(value: Any) -> Any:
    if isinstance(value, (set, frozenset)):
        return ("__set__", tuple(sorted((_canonical(v) for v in value),
                                        key=repr)))
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (type(value).__qualname__,
                tuple((f.name, _canonical(getattr(value, f.name)))
                      for f in dataclasses.fields(value)))
    if isinstance(value, dict):
        return ("__dict__", tuple((_canonical(k), _canonical(v))
                                  for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return (type(value).__name__, tuple(_canonical(v) for v in value))
    return value


def default_backend() -> str:
    """``fork`` where POSIX fork exists, ``replay`` elsewhere."""
    return BACKEND_FORK if hasattr(os, "fork") else BACKEND_REPLAY


@dataclass(slots=True)
class BranchStats:
    """What one :class:`BranchRunner` did across its lifetime.

    Attributes:
        groups: Prefix groups executed via branching.
        probe_boots: Full null boots run to record prefix queries.
        probe_cache_hits: Probes served from the result cache instead.
        prefix_boots: Partial null boots driven to pause points (one per
            group under ``fork``; one per cell under ``replay``).
        branched: Cells resolved by branching (forked + replayed +
            no-divergence).
        forked: Cells executed in copy-on-write fork children.
        replayed: Cells executed via in-process prefix replay.
        no_divergence: Cells answered from the master report because
            their plan never perturbs a prefix query.
        fallbacks: Cells that fell back to a from-scratch run (probe
            degraded, or a fork child failed).
    """

    groups: int = 0
    probe_boots: int = 0
    probe_cache_hits: int = 0
    prefix_boots: int = 0
    branched: int = 0
    forked: int = 0
    replayed: int = 0
    no_divergence: int = 0
    fallbacks: int = 0


class _ForkPool:
    """At most ``max_children`` concurrent forked branch children.

    Children write one pickle to a pipe and ``_exit``; the parent drains
    all pipes with a selector *while* children run, because a pickled
    boot report can exceed the kernel pipe buffer — a child blocked on a
    full pipe that the parent only reads after ``waitpid`` would deadlock.
    """

    def __init__(self, max_children: int):
        self.max_children = max(1, max_children)
        self._selector = selectors.DefaultSelector()
        self._buffers: dict[int, bytearray] = {}
        self._cells: dict[int, tuple[str, int]] = {}  # read fd -> (fp, pid)
        self.outcomes: dict[str, tuple[str, Any]] = {}

    def __len__(self) -> int:
        return len(self._cells)

    def submit(self, fingerprint: str, suffix_fn: Callable[[], Any]) -> None:
        """Fork a child running ``suffix_fn``, waiting for a slot first."""
        while len(self._cells) >= self.max_children:
            self._drain(block=True)
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            # Child: never touch parent state, never run atexit handlers.
            os.close(read_fd)
            try:
                payload = pickle.dumps(("ok", suffix_fn()),
                                       protocol=pickle.HIGHEST_PROTOCOL)
            except BaseException:  # noqa: BLE001 - marshalled to the parent
                payload = pickle.dumps(("err", traceback.format_exc()),
                                       protocol=pickle.HIGHEST_PROTOCOL)
            try:
                with os.fdopen(write_fd, "wb") as sink:
                    sink.write(payload)
            finally:
                os._exit(0)
        os.close(write_fd)
        os.set_blocking(read_fd, False)
        self._selector.register(read_fd, selectors.EVENT_READ)
        self._buffers[read_fd] = bytearray()
        self._cells[read_fd] = (fingerprint, pid)

    def drain(self) -> dict[str, tuple[str, Any]]:
        """Wait for every outstanding child; returns fp -> (status, value)."""
        while self._cells:
            self._drain(block=True)
        self._selector.close()
        return self.outcomes

    def _drain(self, block: bool) -> None:
        timeout = None if block else 0
        for key, _events in self._selector.select(timeout=timeout):
            fd = key.fd
            while True:
                try:
                    chunk = os.read(fd, 1 << 16)
                except BlockingIOError:
                    break
                if not chunk:
                    self._finish(fd)
                    break
                self._buffers[fd].extend(chunk)

    def _finish(self, fd: int) -> None:
        fingerprint, pid = self._cells.pop(fd)
        payload = bytes(self._buffers.pop(fd))
        self._selector.unregister(fd)
        os.close(fd)
        os.waitpid(pid, 0)
        try:
            self.outcomes[fingerprint] = pickle.loads(payload)
        except Exception:  # noqa: BLE001 - truncated pipe = child died hard
            self.outcomes[fingerprint] = (
                "err", f"branch child for {fingerprint[:12]} returned "
                       f"{len(payload)} undecodable bytes")


def _run_suffix(prefix, fault_plan) -> Any:
    """Swap ``fault_plan`` into a paused prefix and run it to the end."""
    from repro.core.degraded import DegradedBootError

    prefix.install_plan(fault_plan)
    try:
        return prefix.complete()
    except DegradedBootError as exc:
        return exc.report


class BranchRunner:
    """Executes prefix-sharing job groups as one prefix + many branches.

    Args:
        cache: Shared result cache; prefix probes are stored under
            ``probe:<prefix_fingerprint>`` so they hit across sweeps.
            ``None`` disables probe caching.
        backend: ``"fork"`` or ``"replay"``; ``None`` picks
            :func:`default_backend`.
        jobs: Maximum concurrent fork children (the replay backend is
            always serial).
        min_group: Smallest group worth branching.  A branched group
            costs roughly one full probe boot plus a partial prefix boot
            before any cell is saved, so groups below this threshold run
            from scratch.
    """

    def __init__(self, cache: ResultCache | None = None,
                 backend: str | None = None, jobs: int = 1,
                 min_group: int = 3):
        backend = backend if backend is not None else default_backend()
        if backend not in (BACKEND_FORK, BACKEND_REPLAY):
            raise SimulationError(f"unknown branch backend {backend!r}")
        if backend == BACKEND_FORK and not hasattr(os, "fork"):
            raise SimulationError("fork backend unavailable on this platform")
        self.cache = cache
        self.backend = backend
        self.jobs = max(1, int(jobs))
        self.min_group = max(2, int(min_group))
        self.stats = BranchStats()

    # ------------------------------------------------------------ grouping

    def partition(self, entries: list[tuple[str, SimJob]],
                  ) -> tuple[list[list[tuple[str, SimJob]]],
                             list[tuple[str, SimJob]]]:
        """Split ``(fingerprint, job)`` pairs into branchable groups + rest.

        Jobs are grouped by :meth:`SimJob.prefix_fingerprint`; groups
        smaller than ``min_group``, and jobs that cannot branch at all
        (recovery/kernel kinds, path-fault plans, opted-out checkpoints),
        land in ``rest`` for ordinary from-scratch execution.
        """
        by_prefix: dict[str, list[tuple[str, SimJob]]] = {}
        rest: list[tuple[str, SimJob]] = []
        for fingerprint, job in entries:
            if job.branchable():
                by_prefix.setdefault(job.prefix_fingerprint(), []).append(
                    (fingerprint, job))
            else:
                rest.append((fingerprint, job))
        groups: list[list[tuple[str, SimJob]]] = []
        for cells in by_prefix.values():
            if len(cells) >= self.min_group:
                groups.append(cells)
            else:
                rest.extend(cells)
        return groups, rest

    # ----------------------------------------------------------- execution

    def run_group(self, group: list[tuple[str, SimJob]]) -> dict[str, Any]:
        """Execute one prefix-sharing group; returns fingerprint -> result."""
        if not group:
            return {}
        self.stats.groups += 1
        template = group[0][1]
        prefix_job = template.prefix_job()
        probe = self._probe(prefix_job)
        if probe is None:
            # The null prefix itself cannot complete (degraded without any
            # injected fault) — branching has no healthy trunk to share.
            self.stats.fallbacks += len(group)
            return {fp: execute_job(job) for fp, job in group}
        records, master_report = probe

        results: dict[str, Any] = {}
        pending: list[tuple[str, SimJob, int]] = []  # (fp, job, pause time)
        for fingerprint, job in group:
            plan = job.fault_plan
            divergence = (first_divergence(records, plan.compile())
                          if plan is not None else None)
            spec = job.checkpoint
            if spec is not None and spec.divergence_ns is not None:
                # An explicit spec can only tighten the bound: forking
                # earlier than needed is sound, later is not.
                divergence = (spec.divergence_ns if divergence is None
                              else min(divergence, spec.divergence_ns))
            if plan is None:
                results[fingerprint] = master_report
                self.stats.no_divergence += 1
                self.stats.branched += 1
            elif divergence is None:
                # The plan perturbs nothing this boot asks: the cell's run
                # is the master run with its own (all-zero) fault tally.
                results[fingerprint] = dataclass_replace(
                    master_report,
                    injected_faults=plan.compile().stats.as_dict())
                self.stats.no_divergence += 1
                self.stats.branched += 1
            else:
                # Pause strictly before the first event at the divergence
                # time: every same-time event then runs inside the branch,
                # in the same seq order as from scratch.
                pending.append((fingerprint, job, divergence - 1))

        if pending:
            if self.backend == BACKEND_FORK:
                self._run_forked(prefix_job, pending, results)
            else:
                self._run_replayed(prefix_job, pending, results)
        return results

    def _run_forked(self, prefix_job: SimJob,
                    pending: list[tuple[str, SimJob, int]],
                    results: dict[str, Any]) -> None:
        """One rolling prefix boot; fork a CoW child per cell at its pause."""
        by_target: dict[int, list[tuple[str, SimJob]]] = {}
        for fingerprint, job, target in pending:
            by_target.setdefault(target, []).append((fingerprint, job))
        jobs_by_fp = {fp: job for fp, job, _ in pending}

        prefix = make_boot_simulation(prefix_job, injector_slot=InjectorSlot())
        prefix.start()
        self.stats.prefix_boots += 1
        pool = _ForkPool(self.jobs)
        for target in sorted(by_target):
            if target >= 0:
                assert prefix.sim is not None
                prefix.sim.run(until_ns=target)
            for fingerprint, job in by_target[target]:
                plan = job.fault_plan
                pool.submit(fingerprint,
                            lambda plan=plan: _run_suffix(prefix, plan))
        for fingerprint, (status, value) in pool.drain().items():
            if status == "ok":
                results[fingerprint] = value
                self.stats.forked += 1
                self.stats.branched += 1
            else:
                # A lost child costs one from-scratch run, never a cell.
                self.stats.fallbacks += 1
                results[fingerprint] = execute_job(jobs_by_fp[fingerprint])

    def _run_replayed(self, prefix_job: SimJob,
                      pending: list[tuple[str, SimJob, int]],
                      results: dict[str, Any]) -> None:
        """Per-cell prefix replay + in-process swap (the fallback backend)."""
        for fingerprint, job, target in pending:
            prefix = make_boot_simulation(prefix_job,
                                          injector_slot=InjectorSlot())
            prefix.start()
            self.stats.prefix_boots += 1
            if target >= 0:
                assert prefix.sim is not None
                prefix.sim.run(until_ns=target)
            assert job.fault_plan is not None
            results[fingerprint] = _run_suffix(prefix, job.fault_plan)
            self.stats.replayed += 1
            self.stats.branched += 1

    # --------------------------------------------------------------- probe

    def _probe(self, prefix_job: SimJob) -> tuple[list, Any] | None:
        """Record the group's null prefix; ``None`` = degraded prefix.

        Returns ``(records, master_report)``, served from the cache when a
        previous sweep already probed this prefix fingerprint.
        """
        from repro.core.degraded import DegradedBootError

        key = PROBE_KEY + prefix_job.prefix_fingerprint()
        if self.cache is not None:
            hit, value = self.cache.get(key)
            if hit:
                self.stats.probe_cache_hits += 1
                return value
        slot = InjectorSlot(record=True)
        simulation = make_boot_simulation(prefix_job, injector_slot=slot)
        self.stats.probe_boots += 1
        try:
            report = simulation.run()
        except DegradedBootError:
            value = None
        else:
            assert slot.records is not None
            value = (slot.records, report)
        if self.cache is not None:
            self.cache.put(key, value)
        return value
