"""Content-addressed result cache for simulation jobs.

Keys are :meth:`SimJob.fingerprint` hashes, which already include the
code-version salt, so the invalidation rule is simply "a key either means
exactly one result, forever, or it means nothing" — the same property
content-addressed stores like git rely on.  The in-memory layer makes
repeats within one ``experiment all`` free; the optional on-disk layer
(one pickle per fingerprint, written atomically) makes them free across
process runs.

Both layers store the same canonical pickle bytes: a ``put`` pickles the
value exactly once (the disk layer writes those bytes verbatim) and every
``get`` unpickles a fresh object.  That keeps the mutation-safety of the
old deepcopy-on-both-ends design — callers can never alias the cached
master — while being markedly cheaper for large boot reports, and it
makes memory hits byte-equivalent to disk hits by construction (the
``repro bench`` ``cache`` section tracks the speedup).
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

#: Exceptions that mean "this pickle is junk": a torn write, bit rot, or
#: a pickle referencing a class that no longer exists.
_LOAD_ERRORS = (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, MemoryError, UnicodeDecodeError)


@dataclass(slots=True)
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache`.

    Attributes:
        memory_hits: Results served from the in-process byte store.
        disk_hits: Results loaded (and re-memoized) from the disk layer.
        misses: Lookups that found nothing anywhere.
        stores: Results written into the cache.
        disk_errors: On-disk entries that existed but could not be
            loaded (corrupt/torn pickle, stale class); each is unlinked
            so it cannot fail again, and the lookup counts as a miss.
        evictions: On-disk entries removed by the ``max_bytes`` LRU cap.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    disk_errors: int = 0
    evictions: int = 0

    @property
    def hits(self) -> int:
        """Total lookups served without running a simulation."""
        return self.memory_hits + self.disk_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """In-memory (always) + on-disk (optional) result store.

    Args:
        disk_dir: Directory for the persistent layer; created on first
            write.  ``None`` keeps the cache purely in-memory.
        max_bytes: Optional cap on the disk layer's total size.  When a
            write pushes the store past the cap, the least-recently-used
            entries (by mtime — every hit refreshes it) are unlinked
            until the store fits again, and ``stats.evictions`` counts
            them.  A long-running fleet service can therefore keep a
            bounded warm set instead of growing the directory forever.
            ``None`` (the default) never evicts.
    """

    def __init__(self, disk_dir: str | os.PathLike[str] | None = None,
                 max_bytes: int | None = None):
        self._memory: dict[str, bytes] = {}
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.max_bytes = max_bytes
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._memory)

    def _disk_path(self, key: str) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / f"{key}.pkl"

    def get(self, key: str) -> tuple[bool, Any]:
        """Look up ``key``; returns ``(hit, value)``.

        Every hit returns a fresh unpickle of the canonical bytes, so
        callers can never mutate the cached master.
        """
        blob = self._memory.get(key)
        if blob is not None:
            self.stats.memory_hits += 1
            return True, pickle.loads(blob)
        if self.disk_dir is not None:
            path = self._disk_path(key)
            try:
                handle = open(path, "rb")
            except OSError:
                handle = None  # no entry (or unreadable dir): plain miss
            if handle is not None:
                # The entry exists; if it cannot be read and unpickled it
                # is junk — drop it so it cannot fail again on every run.
                try:
                    with handle:
                        blob = handle.read()
                    value = pickle.loads(blob)
                except _LOAD_ERRORS:
                    self.stats.disk_errors += 1
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
                else:
                    self._memory[key] = blob
                    self.stats.disk_hits += 1
                    try:
                        os.utime(path)  # refresh LRU recency
                    except OSError:
                        pass
                    return True, value
        self.stats.misses += 1
        return False, None

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` in every enabled layer.

        The value is pickled once; the disk layer persists the identical
        bytes (write-then-rename, so a crashed run never leaves a torn
        pickle a later run would try to load).
        """
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        self._memory[key] = blob
        self.stats.stores += 1
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=self.disk_dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_name, self._disk_path(key))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            if self.max_bytes is not None:
                self._evict(keep=self._disk_path(key))

    def _evict(self, keep: Path) -> None:
        """Unlink least-recently-used entries until the store fits.

        The entry just written (``keep``) is exempt, so a single value
        larger than ``max_bytes`` still caches (the cap bounds growth, it
        does not reject work).  Races with concurrent writers are benign:
        a vanished file is simply skipped.
        """
        assert self.disk_dir is not None
        entries = []
        total = 0
        for path in self.disk_dir.glob("*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime_ns, stat.st_size, path))
            total += stat.st_size
        entries.sort()  # oldest mtime first
        for mtime_ns, size, path in entries:
            if total <= self.max_bytes:
                break
            if path == keep:
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            self.stats.evictions += 1
            self._memory.pop(path.stem, None)
