"""Content-addressed result cache for simulation jobs.

Keys are :meth:`SimJob.fingerprint` hashes, which already include the
code-version salt, so the invalidation rule is simply "a key either means
exactly one result, forever, or it means nothing" — the same property
content-addressed stores like git rely on.  The in-memory layer makes
repeats within one ``experiment all`` free; the optional on-disk layer
(one pickle per fingerprint, written atomically) makes them free across
process runs.
"""

from __future__ import annotations

import copy
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

#: Sentinel distinguishing "no entry" from a cached ``None``.
_MISS = object()


@dataclass(slots=True)
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache`.

    Attributes:
        memory_hits: Results served from the in-process dictionary.
        disk_hits: Results loaded (and re-memoized) from the disk layer.
        misses: Lookups that found nothing anywhere.
        stores: Results written into the cache.
        disk_errors: On-disk entries that existed but could not be
            loaded (corrupt/torn pickle, stale class); each is unlinked
            so it cannot fail again, and the lookup counts as a miss.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    disk_errors: int = 0

    @property
    def hits(self) -> int:
        """Total lookups served without running a simulation."""
        return self.memory_hits + self.disk_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """In-memory (always) + on-disk (optional) result store.

    Args:
        disk_dir: Directory for the persistent layer; created on first
            write.  ``None`` keeps the cache purely in-memory.
    """

    def __init__(self, disk_dir: str | os.PathLike[str] | None = None):
        self._memory: dict[str, Any] = {}
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._memory)

    def _disk_path(self, key: str) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / f"{key}.pkl"

    def get(self, key: str) -> tuple[bool, Any]:
        """Look up ``key``; returns ``(hit, value)``.

        Memory hits return a deep copy so callers can never mutate the
        cached master; disk hits are freshly unpickled anyway.
        """
        value = self._memory.get(key, _MISS)
        if value is not _MISS:
            self.stats.memory_hits += 1
            return True, copy.deepcopy(value)
        if self.disk_dir is not None:
            path = self._disk_path(key)
            try:
                handle = open(path, "rb")
            except OSError:
                handle = None  # no entry (or unreadable dir): plain miss
            if handle is not None:
                # The entry exists; if it cannot be unpickled it is junk —
                # a torn write, bit rot, or a pickle referencing a class
                # that no longer exists (AttributeError/ImportError).
                # Drop it so it cannot fail again on every future run.
                try:
                    with handle:
                        value = pickle.load(handle)
                except (OSError, pickle.UnpicklingError, EOFError,
                        AttributeError, ImportError, IndexError,
                        MemoryError, UnicodeDecodeError):
                    self.stats.disk_errors += 1
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
                else:
                    self._memory[key] = value
                    self.stats.disk_hits += 1
                    return True, copy.deepcopy(value)
        self.stats.misses += 1
        return False, None

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` in every enabled layer."""
        self._memory[key] = copy.deepcopy(value)
        self.stats.stores += 1
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            # Write-then-rename so a crashed run never leaves a torn pickle
            # that a later run would try to load.
            fd, tmp_name = tempfile.mkstemp(dir=self.disk_dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_name, self._disk_path(key))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
