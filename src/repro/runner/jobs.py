"""Declarative simulation jobs with stable content fingerprints.

A :class:`SimJob` is everything a worker process needs to reproduce one
simulation: a *reference* to a module-level workload factory plus its
arguments (never a live :class:`~repro.workloads.base.Workload`, whose
factory closures do not pickle), the BB configuration, the core count and
an optional kernel config.  Because a simulation is a pure function of
these inputs, two jobs with equal fingerprints are interchangeable — the
foundation for both deduplication and result caching.

Fingerprints are content hashes over a *canonical* encoding (sets sorted,
enums by name, callables by qualified name) salted with a hash of the
``repro`` source tree, so editing the simulator invalidates every cached
result automatically.
"""

from __future__ import annotations

import enum
import hashlib
import sys
from dataclasses import dataclass, fields, is_dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable

from repro.core.config import BBConfig
from repro.errors import SimulationError
from repro.faults.plan import FaultPlan

#: Job kinds understood by :func:`execute_job`.
KIND_BOOT = "boot"
KIND_KERNEL = "kernel"
KIND_RECOVERY = "recovery"


@lru_cache(maxsize=1)
def code_version() -> str:
    """Hash of every ``repro`` source file — the cache's code-version salt.

    Any edit to the simulator, the workloads, or the experiments changes
    this value and therefore every job fingerprint, so stale on-disk cache
    entries can never be served against new code.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(path.relative_to(package_root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def canonical_repr(obj: Any) -> str:
    """A process-independent textual encoding of ``obj``.

    ``repr`` alone is not stable for sets of enum members (iteration order
    follows identity hashes, which change per process), so containers are
    sorted and enums/callables are encoded by name.
    """
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__qualname__}.{obj.name}"
    if is_dataclass(obj) and not isinstance(obj, type):
        inner = ",".join(
            f"{f.name}={canonical_repr(getattr(obj, f.name))}"
            for f in fields(obj))
        return f"{type(obj).__qualname__}({inner})"
    if isinstance(obj, (frozenset, set)):
        return "{" + ",".join(sorted(canonical_repr(x) for x in obj)) + "}"
    if isinstance(obj, dict):
        items = sorted((canonical_repr(k), canonical_repr(v))
                       for k, v in obj.items())
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(obj, (tuple, list)):
        return "(" + ",".join(canonical_repr(x) for x in obj) + ")"
    if callable(obj):
        return f"{obj.__module__}:{obj.__qualname__}"
    return repr(obj)


@dataclass(frozen=True, slots=True)
class CheckpointSpec:
    """How a boot job may branch off a shared null-boot prefix.

    Attached to a :class:`SimJob` purely as execution *strategy*: the spec
    never enters the fingerprint, because branching is required to be
    result-invariant (the verify oracle enforces byte-identity).

    Attributes:
        divergence_ns: Optional "fork no later than" sim time.  The branch
            runner forks at ``min(divergence_ns, first injected fault)`` —
            forking earlier than necessary is always sound (the suffix
            just replays more shared events), forking later is not, so an
            explicit time can only tighten the automatic probe-derived
            bound.  ``None`` derives the time entirely from the probe.
        enabled: ``False`` opts this job out of branching even inside an
            eligible group (it runs from scratch).
    """

    divergence_ns: int | None = None
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.divergence_ns is not None and self.divergence_ns < 0:
            raise SimulationError(
                f"CheckpointSpec.divergence_ns cannot be negative: "
                f"{self.divergence_ns!r}")


def _require_module_level(factory: Callable[..., Any]) -> None:
    """Jobs cross process boundaries; the factory must pickle by reference."""
    qualname = getattr(factory, "__qualname__", "")
    module = sys.modules.get(getattr(factory, "__module__", ""), None)
    resolved = getattr(module, qualname, None) if module is not None else None
    if resolved is not factory:
        raise SimulationError(
            f"SimJob factory {factory!r} is not a module-level callable; "
            "it cannot be pickled to worker processes")


@dataclass(frozen=True, slots=True)
class SimJob:
    """One simulation, described by value.

    Attributes:
        kind: ``"boot"`` (full :class:`BootSimulation`, result is a
            :class:`~repro.analysis.metrics.BootReport`) or ``"kernel"``
            (kernel stage only, result is the total kernel nanoseconds).
        workload_factory: Module-level callable building the workload
            (``boot`` jobs only).
        workload_args / workload_kwargs: Arguments for the factory;
            kwargs as a sorted tuple of pairs so the job stays hashable.
        bb: Feature flags; ``None`` means :meth:`BBConfig.none`.
        cores: Core-count override (``None`` = the platform's).
        kernel_config: Kernel build override.
        manual_bb_group: Manual BB-Group override for the Isolator.
        platform_preset: Hardware preset name (``kernel`` jobs only),
            resolved against :mod:`repro.hw.presets`.
        fault_plan: Seeded fault plan for the run (``boot`` and
            ``recovery`` jobs); part of the fingerprint, so a faulted run
            caches and deduplicates like any other.  A boot the plan
            keeps from completing yields a
            :class:`~repro.core.degraded.DegradedBootReport` result.
        recovery_policy: Escalation policy (``recovery`` jobs only); the
            job runs a :class:`~repro.recovery.BootSupervisor` ladder and
            the result is a :class:`~repro.recovery.RecoveryOutcome`.
        checkpoint: Optional :class:`CheckpointSpec` tuning checkpoint/fork
            branching; excluded from the fingerprint (branching must be
            result-invariant).
        label: Human-facing tag; excluded from the fingerprint.
    """

    kind: str = KIND_BOOT
    workload_factory: Callable[..., Any] | None = None
    workload_args: tuple[Any, ...] = ()
    workload_kwargs: tuple[tuple[str, Any], ...] = ()
    bb: BBConfig | None = None
    cores: int | None = None
    kernel_config: Any | None = None
    manual_bb_group: tuple[str, ...] | None = None
    platform_preset: str = "ue48h6200"
    fault_plan: FaultPlan | None = None
    recovery_policy: Any | None = None
    checkpoint: CheckpointSpec | None = None
    label: str = ""

    # ------------------------------------------------------------ builders

    @classmethod
    def boot(cls, workload_factory: Callable[..., Any], *args: Any,
             bb: BBConfig | None = None, cores: int | None = None,
             kernel_config: Any | None = None,
             manual_bb_group: tuple[str, ...] | None = None,
             fault_plan: FaultPlan | None = None,
             checkpoint: CheckpointSpec | None = None,
             label: str = "", **kwargs: Any) -> "SimJob":
        """A full cold-boot job: ``workload_factory(*args, **kwargs)``
        booted under ``bb``."""
        _require_module_level(workload_factory)
        return cls(kind=KIND_BOOT, workload_factory=workload_factory,
                   workload_args=tuple(args),
                   workload_kwargs=tuple(sorted(kwargs.items())),
                   bb=bb, cores=cores, kernel_config=kernel_config,
                   manual_bb_group=manual_bb_group, fault_plan=fault_plan,
                   checkpoint=checkpoint, label=label)

    @classmethod
    def recover(cls, workload_factory: Callable[..., Any], *args: Any,
                policy: Any = None, fault_plan: FaultPlan | None = None,
                label: str = "", **kwargs: Any) -> "SimJob":
        """A supervised recovery job: the full escalation ladder of
        :class:`~repro.recovery.BootSupervisor` over the workload."""
        _require_module_level(workload_factory)
        return cls(kind=KIND_RECOVERY, workload_factory=workload_factory,
                   workload_args=tuple(args),
                   workload_kwargs=tuple(sorted(kwargs.items())),
                   fault_plan=fault_plan, recovery_policy=policy, label=label)

    @classmethod
    def kernel(cls, kernel_config: Any, platform_preset: str = "ue48h6200",
               cores: int = 4, label: str = "") -> "SimJob":
        """A kernel-stage-only job on a named hardware preset."""
        return cls(kind=KIND_KERNEL, kernel_config=kernel_config,
                   platform_preset=platform_preset, cores=cores, label=label)

    # --------------------------------------------------------- fingerprint

    def prefix_fingerprint(self) -> str:
        """Content hash of the *shared boot prefix* this job runs.

        Covers everything except the divergent inputs (``fault_plan``,
        ``recovery_policy``): two jobs with equal prefix fingerprints boot
        the identical simulation up to their first injected fault, which
        is what lets the branch runner run that prefix once and fork per
        cell — and lets :class:`~repro.runner.cache.ResultCache` serve a
        recorded prefix probe across sweeps.  Salted with the
        code-version hash like :meth:`fingerprint`.
        """
        payload = canonical_repr((
            self.kind,
            self.workload_factory,
            self.workload_args,
            self.workload_kwargs,
            self.bb,
            self.cores,
            self.kernel_config,
            self.manual_bb_group,
            self.platform_preset if self.kind == KIND_KERNEL else None,
        ))
        digest = hashlib.sha256()
        digest.update(code_version().encode())
        digest.update(b"\0")
        digest.update(payload.encode())
        return digest.hexdigest()

    def divergence_fingerprint(self) -> str:
        """Content hash of the inputs that make this job diverge from its
        prefix (the fault plan and the recovery policy)."""
        payload = canonical_repr((self.fault_plan, self.recovery_policy))
        digest = hashlib.sha256()
        digest.update(payload.encode())
        return digest.hexdigest()

    def fingerprint(self) -> str:
        """Stable content hash identifying this job's result.

        Factored as ``sha256(prefix_fingerprint || divergence_fingerprint)``
        so the prefix component is independently addressable; covers every
        semantically meaningful field plus the code-version salt.
        ``label`` and ``checkpoint`` are presentation/strategy only and
        excluded — branching a job must not change its result.
        """
        digest = hashlib.sha256()
        digest.update(self.prefix_fingerprint().encode())
        digest.update(b"\0")
        digest.update(self.divergence_fingerprint().encode())
        return digest.hexdigest()

    # ----------------------------------------------------------- branching

    def branchable(self) -> bool:
        """True when this job can run as a suffix branched off a shared
        null-boot prefix.

        Only ``boot`` jobs branch (a recovery ladder constructs its boots
        internally), and only under plans without ``paths`` specs: missing
        or late device paths are *structural* — the init manager blocks
        them at construction and schedules their lift events at init
        start, so the prefix itself differs and no late swap can reproduce
        it.  An explicit ``CheckpointSpec(enabled=False)`` also opts out.
        """
        if self.kind != KIND_BOOT:
            return False
        if self.checkpoint is not None and not self.checkpoint.enabled:
            return False
        return self.fault_plan is None or not self.fault_plan.paths

    def prefix_job(self) -> "SimJob":
        """The null (fault-free) job booting this job's shared prefix."""
        from dataclasses import replace

        return replace(self, fault_plan=None, recovery_policy=None,
                       checkpoint=None,
                       label=f"prefix of {self.label}" if self.label
                             else "prefix")


def execute_job(job: SimJob) -> Any:
    """Run one job to completion in this process and return its result.

    Top-level so ``ProcessPoolExecutor`` can import it by reference in
    worker processes.
    """
    if job.kind == KIND_KERNEL:
        return _execute_kernel(job)
    if job.kind == KIND_RECOVERY:
        return _execute_recovery(job)
    if job.kind != KIND_BOOT:
        raise SimulationError(f"unknown SimJob kind {job.kind!r}")
    from repro.core.degraded import DegradedBootError

    simulation = make_boot_simulation(job)
    try:
        return simulation.run()
    except DegradedBootError as exc:
        # A failed boot is a *result* for sweep purposes: cacheable,
        # deterministic, and countable in completion-rate statistics.
        return exc.report


def make_boot_simulation(job: SimJob, injector_slot=None) -> Any:
    """Build (without running) the ``BootSimulation`` a boot job describes.

    With ``injector_slot`` the simulation is wired for checkpoint/fork
    branching instead of compiling ``job.fault_plan`` (the branch runner
    only passes slots for null prefix jobs).
    """
    if job.kind != KIND_BOOT:
        raise SimulationError(f"cannot build a BootSimulation for a "
                              f"{job.kind!r} job")
    if job.workload_factory is None:
        raise SimulationError("boot SimJob has no workload factory")
    from repro.core import BootSimulation

    workload = job.workload_factory(*job.workload_args,
                                    **dict(job.workload_kwargs))
    return BootSimulation(workload, job.bb, cores=job.cores,
                          kernel_config=job.kernel_config,
                          manual_bb_group=job.manual_bb_group,
                          fault_plan=None if injector_slot is not None
                          else job.fault_plan,
                          injector_slot=injector_slot)


def _execute_recovery(job: SimJob) -> Any:
    """Supervised recovery ladder; the result is a ``RecoveryOutcome``.

    The invariant monitor is built inside the worker (it holds live
    simulator references and does not pickle); every rung of every job in
    a sweep is therefore invariant-checked.
    """
    from repro.recovery import BootSupervisor
    from repro.verify import InvariantMonitor

    if job.workload_factory is None:
        raise SimulationError("recovery SimJob has no workload factory")
    workload = job.workload_factory(*job.workload_args,
                                    **dict(job.workload_kwargs))
    supervisor = BootSupervisor(workload, policy=job.recovery_policy,
                                fault_plan=job.fault_plan,
                                monitor=InvariantMonitor())
    return supervisor.run()


def _execute_kernel(job: SimJob) -> int:
    """Kernel-stage boot (the §2.4 sweep): total kernel nanoseconds."""
    from repro.hw import presets
    from repro.kernel.sequence import KernelBootSequence
    from repro.sim import Simulator

    preset = getattr(presets, job.platform_preset, None)
    if preset is None:
        raise SimulationError(f"unknown platform preset {job.platform_preset!r}")
    sim = Simulator(cores=job.cores if job.cores is not None else 4)
    platform = preset().attach(sim)
    sequence = KernelBootSequence(platform, config=job.kernel_config)

    def kernel_boot():
        yield from sequence.run(sim)

    sim.spawn(kernel_boot(), name="kernel")
    sim.run()
    assert sequence.timings is not None
    return sequence.timings.total_ns
