"""The job-queue/scheduler layer shared by sweeps and the fleet service.

Extracted from :class:`~repro.runner.sweep.SweepRunner` so the same
scheduling semantics serve both execution styles:

* :func:`plan_batch` — the batch cuts: fingerprint every submitted job,
  collapse duplicates onto their first occurrence, and serve whatever
  the :class:`~repro.runner.cache.ResultCache` already knows.  This is
  what ``SweepRunner.run`` does before anything executes.
* :class:`JobScheduler` — the long-running form of the same idea for
  :mod:`repro.fleet`: a priority queue with **single-flight dedup**
  (identical in-flight fingerprints execute once, every waiter gets the
  result), **fair-share dispatch** across submitting clients, and
  **per-client submission-order delivery** (a client's results stream
  back in the order it submitted, no matter how completions interleave).

``JobScheduler`` is deliberately synchronous and event-loop-agnostic:
the fleet service drives it from asyncio, the property tests drive it
from hypothesis, and both see the exact same state machine.

This module also owns the worker-count policy shared by every CLI
surface (:func:`resolve_worker_count`): one place to validate ``--jobs``
and to default to the machine's CPU count.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import ConfigurationError
from repro.runner.cache import ResultCache
from repro.runner.jobs import SimJob

#: Ticket lifecycle states.
PENDING = "pending"      # queued or attached to an in-flight fingerprint
RUNNING = "running"      # its fingerprint has been dispatched to a worker
DONE = "done"            # result (or error) available
DELIVERED = "delivered"  # drained by the client stream


def resolve_worker_count(value: int | None) -> int:
    """Validate a ``--jobs``/worker-count option in one shared place.

    ``None`` defaults to :func:`os.cpu_count` (minimum 1); anything below
    1 is rejected with a :class:`~repro.errors.ConfigurationError` rather
    than silently clamped, so a typo like ``--jobs 0`` fails loudly.
    """
    if value is None:
        return os.cpu_count() or 1
    if value < 1:
        raise ConfigurationError(
            f"worker count must be >= 1, got {value!r} "
            f"(omit the option to default to the CPU count)")
    return int(value)


# --------------------------------------------------------------- batch cuts


@dataclass(slots=True)
class BatchPlan:
    """What :func:`plan_batch` decided about one submitted batch.

    Attributes:
        fingerprints: One fingerprint per submitted job, positionally.
        results: Fingerprint -> result for jobs already satisfied (cache).
        missing: ``(fingerprint, job)`` pairs that still need executing,
            first-seen order, duplicates collapsed.
        deduplicated: Submissions collapsed onto an identical job in the
            same batch.
        cache_hits: Unique jobs served from the result cache.
    """

    fingerprints: list[str]
    results: dict[str, Any]
    missing: list[tuple[str, SimJob]]
    deduplicated: int
    cache_hits: int


def plan_batch(jobs: Sequence[SimJob], cache: ResultCache) -> BatchPlan:
    """Fingerprint, dedup, and cache-cut a batch of jobs.

    The execution tier (pool, branch runner, or fleet shard) only ever
    sees ``plan.missing``; everything else is already answered.
    """
    fingerprints = [job.fingerprint() for job in jobs]

    unique: dict[str, SimJob] = {}
    deduplicated = 0
    for fingerprint, job in zip(fingerprints, jobs):
        if fingerprint in unique:
            deduplicated += 1
        else:
            unique[fingerprint] = job

    results: dict[str, Any] = {}
    missing: list[tuple[str, SimJob]] = []
    cache_hits = 0
    for fingerprint, job in unique.items():
        hit, value = cache.get(fingerprint)
        if hit:
            cache_hits += 1
            results[fingerprint] = value
        else:
            missing.append((fingerprint, job))
    return BatchPlan(fingerprints=fingerprints, results=results,
                     missing=missing, deduplicated=deduplicated,
                     cache_hits=cache_hits)


# ------------------------------------------------------------ the scheduler


@dataclass(slots=True)
class Ticket:
    """One submitted job instance, owned by one client.

    Many tickets may share one fingerprint (the fleet's whole point);
    execution is per fingerprint, delivery is per ticket.

    Attributes:
        client: Submitting client id.
        seq: Per-client submission index (0, 1, 2, ...), assigned by the
            scheduler; delivery is strictly in ``seq`` order per client.
        job: The declarative job.
        fingerprint: ``job.fingerprint()``, computed once at submit.
        priority: Larger numbers dispatch first.
        state: ``pending`` -> ``running`` -> ``done`` -> ``delivered``.
        cached: The ticket was answered by the result cache at submit
            time (it never waited on a worker).
        result: The job's result once ``done``.
        error: Stringified execution failure, mutually exclusive with
            ``result``.
    """

    client: str
    seq: int
    job: SimJob
    fingerprint: str
    priority: int = 0
    state: str = PENDING
    cached: bool = False
    result: Any = None
    error: str | None = None


@dataclass(slots=True)
class SchedulerStats:
    """Lifetime accounting for one :class:`JobScheduler`.

    Attributes:
        submitted: Tickets accepted.
        cache_hits: Tickets answered from the cache at submit time.
        coalesced: Tickets attached to an already queued or in-flight
            fingerprint (single-flight dedup).
        dispatched: Unique fingerprints handed to the execution tier.
        completed: Unique fingerprints that finished successfully.
        failed: Unique fingerprints that finished with an error.
        requeued: In-flight fingerprints returned to the queue after
            their worker died (each later re-dispatch counts in
            ``dispatched`` again).
        delivered: Tickets drained by client streams.
    """

    submitted: int = 0
    cache_hits: int = 0
    coalesced: int = 0
    dispatched: int = 0
    completed: int = 0
    failed: int = 0
    requeued: int = 0
    delivered: int = 0


@dataclass(slots=True)
class _PriorityBand:
    """Per-priority dispatch state: FIFO per client + fair-share rotation."""

    queues: dict[str, deque[str]] = field(default_factory=dict)
    rotation: deque[str] = field(default_factory=deque)

    def push(self, client: str, fingerprint: str) -> None:
        queue = self.queues.get(client)
        if queue is None:
            queue = self.queues[client] = deque()
        if client not in self.rotation:
            self.rotation.append(client)
        queue.append(fingerprint)

    def pop(self) -> str | None:
        """Next fingerprint, round-robin across clients (fair share)."""
        while self.rotation:
            client = self.rotation[0]
            queue = self.queues.get(client)
            if not queue:
                self.rotation.popleft()
                self.queues.pop(client, None)
                continue
            fingerprint = queue.popleft()
            # Rotate so this client's next job waits behind everyone
            # else's head-of-line job.
            self.rotation.rotate(-1)
            if not queue:
                self.rotation.remove(client)
                self.queues.pop(client, None)
            return fingerprint
        return None

    def __len__(self) -> int:
        return sum(len(queue) for queue in self.queues.values())


class JobScheduler:
    """Priority queue + single-flight dedup + ordered per-client delivery.

    The contract (enforced by ``tests/property/test_scheduler_properties``
    under arbitrary interleavings of submit/dispatch/complete):

    * a fingerprint is dispatched **at most once**, ever — concurrent
      submissions of the same job attach to the in-flight execution, and
      completed fingerprints are answered by the cache;
    * each client drains its results in exactly its submission order,
      regardless of priorities or completion order;
    * dispatch picks the highest priority band first and round-robins
      across clients inside a band, so one flood submitter cannot starve
      the rest.

    Args:
        cache: Result store consulted at submit time and fed at
            completion; defaults to a fresh in-memory cache.
    """

    def __init__(self, cache: ResultCache | None = None):
        self.cache = cache if cache is not None else ResultCache()
        self.stats = SchedulerStats()
        self._bands: dict[int, _PriorityBand] = {}
        self._waiters: dict[str, list[Ticket]] = {}
        self._queued: set[str] = set()
        self._inflight: dict[str, SimJob] = {}
        self._delivery: dict[str, deque[Ticket]] = {}
        self._next_seq: dict[str, int] = {}

    # -------------------------------------------------------------- submit

    def submit(self, client: str, job: SimJob, priority: int = 0) -> Ticket:
        """Accept one job instance from ``client``; returns its ticket.

        The ticket may already be ``done`` (cache hit); call
        :meth:`drain` to collect whatever became deliverable.
        """
        seq = self._next_seq.get(client, 0)
        self._next_seq[client] = seq + 1
        fingerprint = job.fingerprint()
        ticket = Ticket(client=client, seq=seq, job=job,
                        fingerprint=fingerprint, priority=priority)
        self._delivery.setdefault(client, deque()).append(ticket)
        self.stats.submitted += 1

        waiters = self._waiters.get(fingerprint)
        if waiters is not None:
            # Single-flight: the fingerprint is already queued or
            # executing; this ticket rides along.
            waiters.append(ticket)
            self.stats.coalesced += 1
            return ticket
        hit, value = self.cache.get(fingerprint)
        if hit:
            ticket.state = DONE
            ticket.result = value
            ticket.cached = True
            self.stats.cache_hits += 1
            return ticket
        self._waiters[fingerprint] = [ticket]
        self._queued.add(fingerprint)
        band = self._bands.get(priority)
        if band is None:
            band = self._bands[priority] = _PriorityBand()
        band.push(client, fingerprint)
        return ticket

    # ------------------------------------------------------------ dispatch

    def next_batch(self, limit: int) -> list[tuple[str, SimJob]]:
        """Pop up to ``limit`` unique jobs for execution, marking them
        in-flight.  Highest priority band first, fair-share within."""
        batch: list[tuple[str, SimJob]] = []
        while len(batch) < limit:
            entry = self._pop_ready()
            if entry is None:
                break
            batch.append(entry)
        return batch

    def _pop_ready(self) -> tuple[str, SimJob] | None:
        for priority in sorted(self._bands, reverse=True):
            band = self._bands[priority]
            while True:
                fingerprint = band.pop()
                if fingerprint is None:
                    del self._bands[priority]
                    break
                self._queued.discard(fingerprint)
                waiters = self._waiters.get(fingerprint)
                if not waiters:
                    # Every submitter disconnected while it was queued;
                    # nobody wants the result any more.
                    self._waiters.pop(fingerprint, None)
                    continue
                representative = waiters[0]
                representative.state = RUNNING
                self._inflight[fingerprint] = representative.job
                self.stats.dispatched += 1
                return fingerprint, representative.job
        return None

    # ---------------------------------------------------------- completion

    def complete(self, fingerprint: str, result: Any) -> list[str]:
        """Record a finished execution; returns the clients that may now
        have deliverable results (call :meth:`drain` per client)."""
        self.cache.put(fingerprint, result)
        self.stats.completed += 1
        return self._resolve(fingerprint, result=result)

    def requeue(self, fingerprint: str) -> bool:
        """Return an in-flight fingerprint to the queue (its worker died
        before producing a result).  Waiting tickets keep waiting; the
        representative goes back to ``pending`` and the fingerprint is
        re-queued under its original client and priority.  Returns
        ``False`` — and drops the fingerprint — when it is not in flight
        or no ticket still wants the result.
        """
        if fingerprint not in self._inflight:
            return False
        del self._inflight[fingerprint]
        waiters = self._waiters.get(fingerprint)
        if not waiters:
            self._waiters.pop(fingerprint, None)
            return False
        representative = waiters[0]
        representative.state = PENDING
        self._queued.add(fingerprint)
        band = self._bands.get(representative.priority)
        if band is None:
            band = self._bands[representative.priority] = _PriorityBand()
        band.push(representative.client, fingerprint)
        self.stats.requeued += 1
        return True

    def fail(self, fingerprint: str, error: str) -> list[str]:
        """Record a failed execution; every waiting ticket carries the
        error.  The fingerprint is *not* cached, so a later resubmission
        retries the job."""
        self.stats.failed += 1
        return self._resolve(fingerprint, error=error)

    def _resolve(self, fingerprint: str, result: Any = None,
                 error: str | None = None) -> list[str]:
        tickets = self._waiters.pop(fingerprint, [])
        self._inflight.pop(fingerprint, None)
        self._queued.discard(fingerprint)
        clients: list[str] = []
        for ticket in tickets:
            ticket.state = DONE
            ticket.result = result
            ticket.error = error
            if ticket.client not in clients:
                clients.append(ticket.client)
        return clients

    # ------------------------------------------------------------ delivery

    def drain(self, client: str) -> list[Ticket]:
        """Pop the client's deliverable prefix: every leading ticket whose
        result is ready, in submission order."""
        queue = self._delivery.get(client)
        if not queue:
            return []
        delivered: list[Ticket] = []
        while queue and queue[0].state == DONE:
            ticket = queue.popleft()
            ticket.state = DELIVERED
            delivered.append(ticket)
        if not queue:
            self._delivery.pop(client, None)
        self.stats.delivered += len(delivered)
        return delivered

    def forget_client(self, client: str) -> int:
        """Drop a disconnected client's undelivered tickets (their
        fingerprints keep executing for single-flight peers); returns how
        many tickets were dropped."""
        queue = self._delivery.pop(client, None)
        if not queue:
            return 0
        dropped = {id(ticket) for ticket in queue}
        for waiters in self._waiters.values():
            waiters[:] = [t for t in waiters if id(t) not in dropped]
        return len(dropped)

    # -------------------------------------------------------------- status

    @property
    def queued(self) -> int:
        """Unique fingerprints waiting for a worker."""
        return len(self._queued)

    @property
    def inflight(self) -> int:
        """Unique fingerprints currently executing."""
        return len(self._inflight)

    @property
    def idle(self) -> bool:
        """No work queued or executing (delivery buffers may be nonempty)."""
        return not self._queued and not self._inflight

    def pending_tickets(self, client: str) -> int:
        """Tickets the client has submitted but not yet drained."""
        return len(self._delivery.get(client, ()))
