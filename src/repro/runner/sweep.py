"""The sweep runner: dedup, cache, fan out, return results in order.

``SweepRunner.run`` takes any sequence of :class:`SimJob`\\ s and returns
their results *positionally* — submission order, not completion order —
so a parallel run is bit-identical to the serial one.  Between submission
and execution sit two cuts:

1. **Dedup** — jobs with equal fingerprints are executed once and the
   result fanned back to every position (`experiment all` asks for the
   stock TV boot dozens of times).
2. **Cache** — surviving fingerprints are looked up in the
   :class:`~repro.runner.cache.ResultCache` before any simulation runs.

What remains executes serially (``jobs=1``) or on a lazily created
``ProcessPoolExecutor``; either way results land by position.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Sequence

from repro.runner.cache import ResultCache
from repro.runner.jobs import SimJob, execute_job


@dataclass(slots=True)
class SweepStats:
    """What one runner did across its lifetime.

    Attributes:
        submitted: Jobs passed to :meth:`SweepRunner.run`.
        deduplicated: Submissions collapsed onto an identical job in the
            same batch.
        cache_hits: Unique jobs served from the result cache.
        executed: Unique jobs actually simulated.
    """

    submitted: int = 0
    deduplicated: int = 0
    cache_hits: int = 0
    executed: int = 0

    @property
    def savings_rate(self) -> float:
        """Fraction of submissions that never reached a simulator."""
        if not self.submitted:
            return 0.0
        return 1.0 - self.executed / self.submitted


class SweepRunner:
    """Deduplicating, caching, optionally parallel job executor.

    Args:
        jobs: Worker processes; ``1`` (the default) executes serially in
            the calling process, in submission order.
        cache: Result store; defaults to a fresh in-memory cache.

    Use as a context manager (or call :meth:`close`) to shut down the
    worker pool; a never-used pool costs nothing.
    """

    def __init__(self, jobs: int = 1, cache: ResultCache | None = None):
        self.jobs = max(1, int(jobs))
        self.cache = cache if cache is not None else ResultCache()
        self.stats = SweepStats()
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Shut down the worker pool, if one was ever created."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------ execution

    def run(self, jobs: Sequence[SimJob]) -> list[Any]:
        """Execute ``jobs`` and return their results in submission order."""
        jobs = list(jobs)
        self.stats.submitted += len(jobs)
        fingerprints = [job.fingerprint() for job in jobs]

        # Dedup within the batch, preserving first-seen order.
        unique: dict[str, SimJob] = {}
        for fingerprint, job in zip(fingerprints, jobs):
            if fingerprint in unique:
                self.stats.deduplicated += 1
            else:
                unique[fingerprint] = job

        # Cache cut.
        results: dict[str, Any] = {}
        missing: list[tuple[str, SimJob]] = []
        for fingerprint, job in unique.items():
            hit, value = self.cache.get(fingerprint)
            if hit:
                self.stats.cache_hits += 1
                results[fingerprint] = value
            else:
                missing.append((fingerprint, job))

        # Execute what is left, serially or fanned out.
        if missing:
            self.stats.executed += len(missing)
            to_run = [job for _, job in missing]
            if self.jobs == 1 or len(to_run) == 1:
                outcomes = [execute_job(job) for job in to_run]
            else:
                outcomes = list(self._get_pool().map(execute_job, to_run))
            for (fingerprint, _), outcome in zip(missing, outcomes):
                self.cache.put(fingerprint, outcome)
                results[fingerprint] = outcome

        return [results[fingerprint] for fingerprint in fingerprints]

    def run_one(self, job: SimJob) -> Any:
        """Convenience wrapper: run a single job through dedup + cache."""
        return self.run([job])[0]

    def _get_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool
