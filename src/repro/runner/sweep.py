"""The sweep runner: dedup, cache, branch, fan out, return results in order.

``SweepRunner.run`` takes any sequence of :class:`SimJob`\\ s and returns
their results *positionally* — submission order, not completion order —
so a parallel run is bit-identical to the serial one.  Between submission
and execution sit three cuts:

1. **Dedup** — jobs with equal fingerprints are executed once and the
   result fanned back to every position (`experiment all` asks for the
   stock TV boot dozens of times).
2. **Cache** — surviving fingerprints are looked up in the
   :class:`~repro.runner.cache.ResultCache` before any simulation runs.
3. **Branch** (opt-in) — jobs sharing a prefix fingerprint are grouped
   and routed through the :class:`~repro.runner.branch.BranchRunner`,
   which boots the shared prefix once and forks a cheap copy-on-write
   suffix per cell instead of re-simulating every boot from t=0.

What remains executes serially (``jobs=1``) or on a lazily created
``ProcessPoolExecutor`` with a computed chunksize (one pickle round-trip
per job at ``chunksize=1`` is measurable on 100+-cell matrices); either
way results land by position.

``SweepRunner.run_prefiltered`` adds a fourth cut *before* all of the
above: every cell of a design-space sweep is solved by the closed-form
boot predictor (:mod:`repro.analysis.predict`), the cells are ranked
analytically, and only the top-``k`` frontier ever reaches the DES.
Because the predictor is exact on unperturbed boots, the analytic
frontier is the DES frontier.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import RunnerError
from repro.runner.cache import ResultCache
from repro.runner.jobs import SimJob, execute_job
from repro.runner.schedule import plan_batch


@dataclass(slots=True)
class SweepStats:
    """What one runner did across its lifetime.

    Attributes:
        submitted: Jobs passed to :meth:`SweepRunner.run`.
        deduplicated: Submissions collapsed onto an identical job in the
            same batch.
        cache_hits: Unique jobs served from the result cache.
        executed: Unique jobs simulated from scratch.
        branched: Unique jobs resolved as branches off a shared prefix
            (checkpoint/fork) instead of from-scratch runs.
        prefix_boots: Full prefix boots (probes + rolling prefixes) the
            branch runner paid to resolve the branched jobs.
        predicted: Jobs solved analytically by the closed-form boot
            predictor during pre-filtered sweeps.
        prefilter_skipped: Predicted jobs that never reached the DES
            because they fell outside the requested frontier.
    """

    submitted: int = 0
    deduplicated: int = 0
    cache_hits: int = 0
    executed: int = 0
    branched: int = 0
    prefix_boots: int = 0
    predicted: int = 0
    prefilter_skipped: int = 0

    @property
    def savings_rate(self) -> float:
        """Fraction of submissions that never ran a from-scratch boot."""
        if not self.submitted:
            return 0.0
        return 1.0 - self.executed / self.submitted


class SweepRunner:
    """Deduplicating, caching, optionally parallel/branching job executor.

    Args:
        jobs: Worker processes; ``1`` (the default) executes serially in
            the calling process, in submission order.  Also bounds the
            concurrent fork children of a branched group.
        cache: Result store; defaults to a fresh in-memory cache.
        branch: Route prefix-sharing job groups through the
            checkpoint/fork :class:`~repro.runner.branch.BranchRunner`
            (byte-identical results, verified by ``repro verify``; off by
            default).
        branch_backend: ``"fork"``/``"replay"``/``None`` (auto) — see
            :mod:`repro.runner.branch`.
        min_branch_group: Smallest prefix group worth branching.

    Use as a context manager (or call :meth:`close`) to shut down the
    worker pool; a never-used pool costs nothing.
    """

    def __init__(self, jobs: int = 1, cache: ResultCache | None = None,
                 branch: bool = False, branch_backend: str | None = None,
                 min_branch_group: int = 3):
        self.jobs = max(1, int(jobs))
        self.cache = cache if cache is not None else ResultCache()
        self.branch = bool(branch)
        self.branch_backend = branch_backend
        self.min_branch_group = min_branch_group
        self.stats = SweepStats()
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Shut down the worker pool, if one was ever created."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------ execution

    def run(self, jobs: Sequence[SimJob]) -> list[Any]:
        """Execute ``jobs`` and return their results in submission order."""
        jobs = list(jobs)
        self.stats.submitted += len(jobs)

        # Dedup + cache cuts, shared with the fleet scheduler layer.
        plan = plan_batch(jobs, self.cache)
        self.stats.deduplicated += plan.deduplicated
        self.stats.cache_hits += plan.cache_hits
        results = plan.results
        missing = plan.missing

        # Branch cut: groups sharing a prefix run as one recorded prefix
        # plus forked suffixes (before the pool sees anything, so fork
        # children are never spawned from a thread-carrying process).
        if missing and self.branch:
            missing = self._run_branched(missing, results)

        # Execute what is left, serially or fanned out.
        if missing:
            self.stats.executed += len(missing)
            to_run = [job for _, job in missing]
            if self.jobs == 1 or len(to_run) == 1:
                outcomes = [execute_job(job) for job in to_run]
            else:
                outcomes = self._run_pooled(to_run)
            for (fingerprint, _), outcome in zip(missing, outcomes):
                self.cache.put(fingerprint, outcome)
                results[fingerprint] = outcome

        return [results[fingerprint] for fingerprint in plan.fingerprints]

    def _run_pooled(self, to_run: list[SimJob]) -> list[Any]:
        """Fan jobs out over the worker pool, cleaning up on disaster.

        A ``KeyboardInterrupt`` or a broken pool (a worker died holding
        work — OOM kill, segfault, ``os._exit``) used to orphan the
        remaining workers and surface as whatever traceback the executor
        happened to be holding.  Both now cancel every pending future,
        shut the pool down, and raise a single clean
        :class:`~repro.errors.RunnerError` with the original cause
        attached.
        """
        # Batch jobs per worker round-trip: chunksize=1 pays one
        # pickle/unpickle cycle per job, which dominates on large
        # matrices of fast simulations.
        chunksize = max(1, len(to_run) // (self.jobs * 4))
        try:
            return list(self._get_pool().map(execute_job, to_run,
                                             chunksize=chunksize))
        except (KeyboardInterrupt, BrokenProcessPool) as exc:
            self._abort_pool()
            reason = ("sweep interrupted" if isinstance(exc, KeyboardInterrupt)
                      else "worker pool broke mid-sweep")
            raise RunnerError(
                f"{reason}; pending jobs cancelled, workers shut down "
                f"({len(to_run)} jobs were in flight)") from exc

    def _abort_pool(self) -> None:
        """Cancel pending futures and reap workers without blocking on
        queued work; the next run lazily builds a fresh pool."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def run_one(self, job: SimJob) -> Any:
        """Convenience wrapper: run a single job through dedup + cache."""
        return self.run([job])[0]

    def run_prefiltered(self, jobs: Sequence[SimJob],
                        top_k: int) -> "PrefilterOutcome":
        """Rank boot jobs analytically; run the DES only on the frontier.

        Every job is first solved by the closed-form boot predictor
        (:mod:`repro.analysis.predict` — exact for unperturbed boots, so
        the analytic ranking and a DES ranking agree).  The ``top_k``
        fastest-predicted jobs then run through the normal
        dedup/cache/branch pipeline; everything else is skipped and
        carries its prediction as the result.

        Jobs sharing a workload factory share one
        :class:`~repro.analysis.predict.SweepPredictor`, so a feature
        sweep pays for a handful of machine solutions, not one per cell.

        Args:
            jobs: Unperturbed ``boot`` jobs (a fault plan or a non-boot
                kind raises :class:`~repro.errors.AnalysisError`).
            top_k: Frontier size to execute through the DES.

        Raises:
            AnalysisError: If any job cannot be predicted.
        """
        from repro.analysis.predict import SweepPredictor, predict_job
        from repro.runner.jobs import KIND_BOOT

        jobs = list(jobs)
        predictors: dict[tuple, SweepPredictor] = {}
        predictions = []
        for job in jobs:
            if (job.kind != KIND_BOOT or job.fault_plan is not None
                    or job.workload_factory is None
                    or job.kernel_config is not None
                    or job.manual_bb_group is not None):
                # Overrides the sweep cache cannot key on, or job shapes
                # the predictor rejects outright (raising AnalysisError).
                predictions.append(predict_job(job))
                continue
            key = (job.workload_factory, job.workload_args,
                   job.workload_kwargs)
            predictor = predictors.get(key)
            if predictor is None:
                factory = job.workload_factory
                args, kwargs = job.workload_args, dict(job.workload_kwargs)
                predictor = SweepPredictor(
                    lambda f=factory, a=args, k=kwargs: f(*a, **k))
                predictors[key] = predictor
            predictions.append(predictor.predict(job.bb, job.cores))
        self.stats.predicted += len(jobs)

        ranked = sorted(range(len(jobs)),
                        key=lambda i: (predictions[i].boot_complete_ns, i))
        selected = ranked[:max(0, top_k)]
        self.stats.prefilter_skipped += len(jobs) - len(selected)
        outcomes = self.run([jobs[index] for index in selected])
        machine_runs = sum(p.machine_runs for p in predictors.values())
        fast_hits = sum(p.fast_hits for p in predictors.values())
        log = [
            f"pre-filter: {len(jobs)} cells ranked analytically "
            f"({machine_runs} machine solutions, {fast_hits} sweep-cache "
            f"hits); DES ran {len(selected)} frontier cells, skipped "
            f"{len(jobs) - len(selected)} "
            f"({(len(jobs) - len(selected)) / max(1, len(jobs)):.1%})",
        ]
        return PrefilterOutcome(
            predictions=predictions, selected=selected,
            results=dict(zip(selected, outcomes)), log=log)

    # ------------------------------------------------------------ internals

    def _run_branched(self, missing: list[tuple[str, SimJob]],
                      results: dict[str, Any]) -> list[tuple[str, SimJob]]:
        """Resolve branchable prefix groups; returns the unbranched rest."""
        from repro.runner.branch import BranchRunner

        runner = BranchRunner(cache=self.cache, backend=self.branch_backend,
                              jobs=self.jobs, min_group=self.min_branch_group)
        groups, rest = runner.partition(missing)
        for group in groups:
            for fingerprint, outcome in runner.run_group(group).items():
                self.cache.put(fingerprint, outcome)
                results[fingerprint] = outcome
        self.stats.branched += runner.stats.branched
        self.stats.executed += runner.stats.fallbacks
        self.stats.prefix_boots += (runner.stats.probe_boots
                                    + runner.stats.prefix_boots)
        return rest

    def _get_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool


@dataclass(slots=True)
class PrefilterOutcome:
    """What :meth:`SweepRunner.run_prefiltered` produced.

    Attributes:
        predictions: One :class:`~repro.analysis.predict.BootPrediction`
            per submitted job, positionally.
        selected: Submission indices of the executed frontier, in
            predicted-rank order (fastest first).
        results: Submission index -> DES boot report, for frontier jobs.
        log: Human-readable skip statistics for sweep logs.
    """

    predictions: list[Any]
    selected: list[int]
    results: dict[int, Any]
    log: list[str]
