"""Deterministic discrete-event simulation engine.

This package is the substrate on which the whole boot stack is modeled.
It provides:

* :class:`~repro.sim.engine.Simulator` — the event loop with an
  integer-nanosecond clock,
* :class:`~repro.sim.process.Process` — generator-coroutine processes that
  ``yield`` request objects (:class:`~repro.sim.process.Timeout`,
  :class:`~repro.sim.process.Compute`, ...),
* :class:`~repro.sim.cpu.CPU` — a multicore processor model with priority
  run queues; ``Compute`` requests occupy a core, so parallelism is bounded
  by the core count exactly as on the paper's quad-core Cortex-A9,
* synchronization primitives in :mod:`repro.sim.sync` whose blocking
  behaviour differs in the way that matters for the paper: a
  :class:`~repro.sim.sync.SpinLock` burns a core while waiting, while a
  :class:`~repro.sim.sync.Mutex` sleeps and releases the core,
* :class:`~repro.sim.tracing.Tracer` — span/instant trace recording used by
  the bootchart renderer,
* :class:`~repro.sim.checkpoint.InjectorSlot` — the checkpoint/fork
  seam: a swappable fault-injector stand-in that records every query the
  boot makes, so a shared prefix can be branched per fault plan
  (:func:`~repro.sim.checkpoint.first_divergence`).

The engine is deterministic: ties are broken by scheduling order, time is
integer nanoseconds, and no wall-clock or OS randomness is consulted.
"""

from repro.sim.checkpoint import InjectorSlot, first_divergence
from repro.sim.clock import SimClock
from repro.sim.cpu import CPU, CpuStats
from repro.sim.engine import Simulator
from repro.sim.process import Compute, Interrupted, Process, Timeout, Wait
from repro.sim.sync import Completion, Mutex, Semaphore, SpinLock
from repro.sim.tracing import Span, TraceInstant, Tracer

__all__ = [
    "CPU",
    "Completion",
    "Compute",
    "CpuStats",
    "InjectorSlot",
    "Interrupted",
    "Mutex",
    "Process",
    "Semaphore",
    "SimClock",
    "Simulator",
    "Span",
    "SpinLock",
    "Timeout",
    "TraceInstant",
    "Tracer",
    "Wait",
    "first_divergence",
]
