"""Checkpoint/fork support: record a null boot prefix, branch per cell.

Matrix sweeps re-simulate the same boot prefix for every cell even though
cells only start to differ at their first injected fault.  This module
provides the simulation-level machinery that lets a sweep run that shared
prefix *once* and branch cheap divergent suffixes off it — the
record-and-replay idea of rr and the reproducible-checkpoint methodology
of gem5, applied to a deterministic DES (see ``docs/performance.md``).

The design exploits two properties the simulator already guarantees:

1. **Pausing is free and exact.**  ``Simulator.run(until_ns=T)`` executes
   every event at time ``<= T`` and stops *without scheduling anything*,
   so a paused run's event stream is byte-identical to an uninterrupted
   one (same events, same seq numbers).  Calling ``run`` again resumes.
2. **Injector answers are pure.**  Every :class:`~repro.faults.injector.
   BootFaultInjector` decision is a function of ``(seed, stream,
   stable identity)`` — never of draw order — so the answer a cell's
   injector *would* give at any query point can be evaluated offline
   against a recording of the queries a null (fault-free) boot makes.

Put together: boot once with a recording :class:`InjectorSlot` (null
answers, so the run equals a no-fault boot byte-for-byte), compute each
cell's **divergence time** — the sim time of the first recorded query its
real injector answers differently from null — with
:func:`first_divergence`, then replay the null prefix up to just before
each divergence and swap the cell's real injector into the slot.  From
that point the branched run asks the same questions and gets the same
answers as a from-scratch run of the cell, so the two are byte-identical
by construction.  The :class:`~repro.runner.branch.BranchRunner` drives
this with copy-on-write ``os.fork`` (or an in-process replay fallback).

Plans with ``paths`` specs are *structural*: missing/late device paths
are blocked at init-manager construction and their lift events are
scheduled at init start, which changes the prefix itself.  Such cells
cannot branch and must run from scratch (see ``SimJob.branchable``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import SimulationError
from repro.faults.injector import InjectedStats, ServiceDecision

if TYPE_CHECKING:
    from repro.faults.injector import BootFaultInjector
    from repro.sim.engine import Simulator

#: Record kinds emitted by a recording :class:`InjectorSlot`.  Each record
#: is a plain tuple — picklable, so a probe's recording caches like any
#: other result — whose last element is the sim time of the query.
STORAGE = "storage"      # (STORAGE, index, nbytes, is_write, time_ns)
SERVICE = "service"      # (SERVICE, unit, attempt, time_ns)
MODULE = "module"        # (MODULE, module, time_ns)
SETTLE = "settle"        # (SETTLE, unit, attempt, base_ns, time_ns)
DEFERRED = "deferred"    # (DEFERRED, task, attempt, time_ns)

_NULL_DECISION = ServiceDecision(fail=False, hang_ns=0)


class InjectorSlot:
    """A swappable fault-injector seam for checkpoint/fork branching.

    Installed wherever a boot would wire a real injector (storage fault
    hook, module-loader hook, init manager, job executor).  Until
    :meth:`swap` is called it answers every query with the *null* answer —
    no extra latency, no failure, base settle time — which is control-flow
    and event-stream identical to running with no injector at all.  After
    ``swap`` every query (and the ``stats`` tally the manager writes into)
    forwards to the real injector, so the run continues exactly as if that
    injector had been present from the start.

    The one piece of per-run injector state that is *not* a pure function
    of the query identity is the storage request counter; the slot counts
    every storage query from t=0 and seeds the real injector's counter at
    swap time, so post-swap draws are addressed by the same request
    indices a from-scratch run would use.

    Args:
        record: Also append a query record (see the record-kind constants)
            for every question asked while un-swapped — the probe mode
            that feeds :func:`first_divergence`.
    """

    def __init__(self, record: bool = False):
        self.delegate: "BootFaultInjector | None" = None
        self.records: list[tuple[Any, ...]] | None = [] if record else None
        self._sim: "Simulator | None" = None
        self._storage_requests = 0
        self._null_stats = InjectedStats()

    # ------------------------------------------------------------ lifecycle

    def attach(self, sim: "Simulator") -> None:
        """Bind the simulator whose clock timestamps recorded queries."""
        self._sim = sim

    def swap(self, injector: "BootFaultInjector") -> None:
        """Install the real injector; all later queries forward to it."""
        if self.delegate is not None:
            raise SimulationError("InjectorSlot.swap() called twice")
        injector._storage_requests = self._storage_requests
        self.delegate = injector

    @property
    def swapped(self) -> bool:
        """True once a real injector has been installed."""
        return self.delegate is not None

    def _now(self) -> int:
        assert self._sim is not None, "InjectorSlot used before attach()"
        return self._sim.now

    # ----------------------------------------------- the injector surface

    @property
    def stats(self) -> InjectedStats:
        """Tally the manager/executor write into (forwards after swap)."""
        return (self.delegate.stats if self.delegate is not None
                else self._null_stats)

    @property
    def blocked_paths(self) -> frozenset[str]:
        # Branchable plans never block paths; pre-swap the answer is the
        # null one and the manager reads this exactly once, at construction.
        return (self.delegate.blocked_paths if self.delegate is not None
                else frozenset())

    def late_paths(self) -> tuple[tuple[str, int], ...]:
        return (self.delegate.late_paths() if self.delegate is not None
                else ())

    def path_blocked(self, path: str) -> bool:
        return (self.delegate.path_blocked(path)
                if self.delegate is not None else False)

    def storage_extra_ns(self, nbytes: int, is_write: bool) -> int:
        if self.delegate is not None:
            return self.delegate.storage_extra_ns(nbytes, is_write)
        index = self._storage_requests
        self._storage_requests += 1
        if self.records is not None:
            self.records.append((STORAGE, index, nbytes, is_write,
                                 self._now()))
        return 0

    def service_decision(self, unit: str, attempt: int) -> ServiceDecision:
        if self.delegate is not None:
            return self.delegate.service_decision(unit, attempt)
        if self.records is not None:
            self.records.append((SERVICE, unit, attempt, self._now()))
        return _NULL_DECISION

    def module_decision(self, module: str) -> tuple[bool, int]:
        if self.delegate is not None:
            return self.delegate.module_decision(module)
        if self.records is not None:
            self.records.append((MODULE, module, self._now()))
        return False, 0

    def settle_ns(self, unit: str, attempt: int, base_ns: int) -> int:
        if self.delegate is not None:
            return self.delegate.settle_ns(unit, attempt, base_ns)
        if self.records is not None:
            self.records.append((SETTLE, unit, attempt, base_ns,
                                 self._now()))
        return base_ns

    def deferred_fails(self, task: str, attempt: int) -> bool:
        if self.delegate is not None:
            return self.delegate.deferred_fails(task, attempt)
        if self.records is not None:
            self.records.append((DEFERRED, task, attempt, self._now()))
        return False

    def __repr__(self) -> str:
        state = (f"swapped:{self.delegate!r}" if self.delegate is not None
                 else ("recording" if self.records is not None else "null"))
        return f"InjectorSlot({state}, storage_requests={self._storage_requests})"


def first_divergence(records: list[tuple[Any, ...]],
                     injector: "BootFaultInjector") -> int | None:
    """Sim time of the first recorded query ``injector`` perturbs.

    Evaluates a throwaway compiled injector over a null boot's query
    recording, in query order, and returns the timestamp of the first
    query whose answer differs from the null answer — the cell's
    divergence time.  ``None`` means the injector never perturbs any
    query the null boot makes: the cell's run *is* the null run (modulo
    the all-zero fault tally in its report).

    This is sound because injector answers are pure functions of
    ``(seed, stream, identity)``: a from-scratch run of the cell asks the
    exact same questions in the exact same order up to its first
    perturbing answer, so the recording covers everything that can
    diverge.  The injector's storage counter is force-aligned to each
    record's request index, and the per-query ``stats`` writes land on
    this throwaway instance, so evaluation has no side effects on the
    caller.

    Args:
        records: The recording of a null boot of the cell's prefix job
            (an :class:`InjectorSlot` created with ``record=True``).
        injector: A freshly compiled injector for the cell's plan.  Do
            not reuse it for a live run afterwards.
    """
    for record in records:
        kind = record[0]
        if kind == STORAGE:
            _, index, nbytes, is_write, time_ns = record
            injector._storage_requests = index
            if injector.storage_extra_ns(nbytes, is_write):
                return time_ns
        elif kind == SERVICE:
            _, unit, attempt, time_ns = record
            decision = injector.service_decision(unit, attempt)
            if decision.fail or decision.hang_ns:
                return time_ns
        elif kind == MODULE:
            _, module, time_ns = record
            fail, extra_ns = injector.module_decision(module)
            if fail or extra_ns:
                return time_ns
        elif kind == SETTLE:
            _, unit, attempt, base_ns, time_ns = record
            if injector.settle_ns(unit, attempt, base_ns) != base_ns:
                return time_ns
        elif kind == DEFERRED:
            _, task, attempt, time_ns = record
            if injector.deferred_fails(task, attempt):
                return time_ns
        else:
            raise SimulationError(f"unknown query record kind {kind!r}")
    return None
