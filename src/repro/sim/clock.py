"""The simulated clock.

Simulated time is a single non-decreasing integer nanosecond counter.  The
clock object exists (rather than a bare int on the engine) so that hardware
and kernel models can hold a reference to it without depending on the whole
engine, and so tests can drive time directly.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.quantities import format_ns


class SimClock:
    """Monotonic integer-nanosecond simulation clock.

    The engine is the only writer; models read :attr:`now` freely.
    """

    __slots__ = ("_now",)

    def __init__(self, start_ns: int = 0):
        if start_ns < 0:
            raise SimulationError(f"clock cannot start negative: {start_ns}")
        self._now = start_ns

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    def advance_to(self, t_ns: int) -> None:
        """Move the clock forward to ``t_ns``.

        Raises:
            SimulationError: If ``t_ns`` is in the past — a scheduling bug.
        """
        if t_ns < self._now:
            raise SimulationError(
                f"attempt to move clock backwards: {t_ns} < {self._now}"
            )
        self._now = t_ns

    def __repr__(self) -> str:
        return f"SimClock(now={format_ns(self._now)})"
