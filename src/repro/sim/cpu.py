"""Multicore CPU model with a priority run queue.

Every :class:`~repro.sim.process.Compute` request goes through this model,
so at most ``cores`` simulated activities make CPU progress at any instant —
the fundamental constraint that makes boot parallelism (and the damage done
by spinning RCU waiters) come out of the simulation rather than being
asserted.

Scheduling is priority-based (lower number first, FIFO within a priority)
and time-sliced: a long computation is split into ``quantum_ns`` slices, and
between slices the process goes back through the run queue.  A priority
change therefore takes effect within one quantum — this is the hook the
Booting Booster Manager uses to push BB-Group services ahead of everything
else.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:
    from repro.sim.engine import Simulator
    from repro.sim.process import Process

#: Default scheduler quantum: 1 ms, the granularity of priority decisions.
DEFAULT_QUANTUM_NS = 1_000_000

#: Default dispatch (context-switch) cost charged per scheduling decision.
DEFAULT_SWITCH_COST_NS = 2_000


@dataclass(order=True, slots=True)
class _RunQueueEntry:
    priority: int
    seq: int
    process: "Process" = field(compare=False)
    remaining_ns: int = field(compare=False)


@dataclass(slots=True)
class CpuStats:
    """Aggregate CPU accounting for a finished (or running) simulation.

    Attributes:
        busy_ns: Total core-nanoseconds spent executing process slices.
        switch_ns: Total core-nanoseconds spent on dispatch overhead.
        dispatches: Number of scheduling decisions taken.
        peak_runnable: Maximum length of the run queue observed (queued,
            not counting processes already on cores).
    """

    busy_ns: int = 0
    switch_ns: int = 0
    dispatches: int = 0
    peak_runnable: int = 0

    def utilization(self, cores: int, elapsed_ns: int) -> float:
        """Fraction of total core capacity used over ``elapsed_ns``."""
        if elapsed_ns <= 0:
            return 0.0
        return (self.busy_ns + self.switch_ns) / (cores * elapsed_ns)


class CPU:
    """An N-core processor shared by all simulated processes.

    Args:
        engine: Owning simulator.
        cores: Number of cores (the UE48H6200 preset uses 4).
        quantum_ns: Maximum slice per scheduling decision.
        switch_cost_ns: Overhead charged to the core per dispatch.
    """

    def __init__(self, engine: "Simulator", cores: int,
                 quantum_ns: int = DEFAULT_QUANTUM_NS,
                 switch_cost_ns: int = DEFAULT_SWITCH_COST_NS):
        if cores < 1:
            raise SimulationError(f"CPU needs at least one core, got {cores}")
        if quantum_ns <= 0:
            raise SimulationError(f"quantum must be positive, got {quantum_ns}")
        if switch_cost_ns < 0:
            raise SimulationError(f"switch cost cannot be negative: {switch_cost_ns}")
        self._engine = engine
        self.cores = cores
        self.quantum_ns = quantum_ns
        self.switch_cost_ns = switch_cost_ns
        self.stats = CpuStats()
        self._idle_cores = cores
        self._run_queue: list[_RunQueueEntry] = []
        self._seq = 0

    @property
    def idle_cores(self) -> int:
        """Number of cores currently not executing a slice."""
        return self._idle_cores

    @property
    def runnable(self) -> int:
        """Number of processes queued for a core (excluding those on cores)."""
        return len(self._run_queue)

    def submit(self, process: "Process", ns: int) -> None:
        """Enqueue ``ns`` nanoseconds of work for ``process`` (engine internal).

        The process is resumed via the engine once the full amount has been
        executed.  Zero-length computations resume immediately without a
        scheduling round-trip.
        """
        if ns == 0:
            self._engine._resume(process, None)
            return
        self._enqueue(process, ns)
        self._dispatch()

    def _enqueue(self, process: "Process", remaining_ns: int) -> None:
        entry = _RunQueueEntry(priority=process.priority, seq=self._seq,
                               process=process, remaining_ns=remaining_ns)
        self._seq += 1
        heapq.heappush(self._run_queue, entry)
        if len(self._run_queue) > self.stats.peak_runnable:
            self.stats.peak_runnable = len(self._run_queue)

    def _dispatch(self) -> None:
        """Hand idle cores to the highest-priority queued work."""
        while self._idle_cores > 0 and self._run_queue:
            entry = heapq.heappop(self._run_queue)
            if entry.process._pending_interrupt is not None:
                # Interrupted while queued: deliver instead of running.
                self._engine._resume(entry.process, None)
                continue
            self._idle_cores -= 1
            slice_ns = min(self.quantum_ns, entry.remaining_ns)
            self.stats.dispatches += 1
            self.stats.switch_ns += self.switch_cost_ns
            done_at = self._engine.now + self.switch_cost_ns + slice_ns
            self._engine._schedule_at(done_at, self._slice_done, entry, slice_ns)
        monitor = self._engine.monitor
        if monitor is not None:
            monitor.on_cpu(self)

    def _slice_done(self, entry: _RunQueueEntry, slice_ns: int) -> None:
        self._idle_cores += 1
        self.stats.busy_ns += slice_ns
        entry.process.cpu_time_ns += slice_ns
        entry.remaining_ns -= slice_ns
        if entry.remaining_ns > 0 and entry.process._pending_interrupt is None:
            # Re-read the priority: BB Manager may have boosted the process
            # while it was running, and it must take effect promptly.
            self._enqueue(entry.process, entry.remaining_ns)
        else:
            # Finished — or interrupted, in which case the remaining work
            # is abandoned and the interrupt is delivered by the resume.
            self._engine._resume(entry.process, None)
        self._dispatch()

    def __repr__(self) -> str:
        return (f"CPU(cores={self.cores}, idle={self._idle_cores}, "
                f"runnable={len(self._run_queue)})")
