"""The simulation engine: event loop, process lifecycle, dispatch.

:class:`Simulator` owns the clock, the event queue, the CPU model, and the
tracer, and is the only object user code needs to create::

    sim = Simulator(cores=4)

    def worker():
        yield Compute(msec(5))      # occupy a core for 5 ms of CPU time
        yield Timeout(msec(10))     # sleep 10 ms without a core

    p = sim.spawn(worker(), name="worker")
    sim.run()
    assert p.result is None and not p.alive

Processes advance synchronously inside event callbacks; all same-time
activity is ordered by scheduling sequence, so a run is a pure function of
its inputs.
"""

from __future__ import annotations

from typing import Any

from repro.errors import DeadlockError, SimulationError
from repro.sim.clock import SimClock
from repro.sim.cpu import CPU, DEFAULT_QUANTUM_NS, DEFAULT_SWITCH_COST_NS
from repro.sim.events import EventQueue, ScheduledEvent
from repro.sim.process import (DEFAULT_PRIORITY, Compute, Process,
                               ProcessGenerator, ProcessState, Timeout, Wait)
from repro.sim.sync import Completion
from repro.sim.tracing import Tracer


class Simulator:
    """A deterministic discrete-event simulator with a multicore CPU.

    Args:
        cores: Number of CPU cores available to ``Compute`` requests.
        quantum_ns: Scheduler time slice (see :class:`~repro.sim.cpu.CPU`).
        switch_cost_ns: Dispatch overhead per scheduling decision.
        event_queue: Queue to drive the loop with; defaults to a fresh
            FIFO-tie-break :class:`EventQueue`.  The verification harness
            injects a :class:`~repro.verify.PerturbedEventQueue` here to
            fuzz equal-timestamp scheduling order.
    """

    def __init__(self, cores: int = 4, quantum_ns: int = DEFAULT_QUANTUM_NS,
                 switch_cost_ns: int = DEFAULT_SWITCH_COST_NS,
                 event_queue: EventQueue | None = None):
        self.clock = SimClock()
        self.events = event_queue if event_queue is not None else EventQueue()
        #: Optional runtime invariant monitor (see ``repro.verify``); when
        #: set, the event loop and the CPU scheduler report to it.  Kept as
        #: a plain attribute so the healthy hot path pays one ``None`` test.
        self.monitor = None
        self.cpu = CPU(self, cores=cores, quantum_ns=quantum_ns,
                       switch_cost_ns=switch_cost_ns)
        self.tracer = Tracer(self.clock)
        self.processes: list[Process] = []
        self._current_stack: list[Process] = []
        self._pending_failure: tuple[Process, BaseException] | None = None

    # ------------------------------------------------------------------ API

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self.clock.now

    @property
    def current_process(self) -> Process | None:
        """The process being stepped right now, if any."""
        return self._current_stack[-1] if self._current_stack else None

    def spawn(self, gen: ProcessGenerator, name: str,
              priority: int = DEFAULT_PRIORITY, daemon: bool = False) -> Process:
        """Create a process from a generator and schedule its first step.

        Args:
            gen: The generator to run (already called, not the function).
            name: Identifier used in traces and error reports.
            priority: Scheduling priority; lower runs first.
            daemon: Daemon processes (long-running services) are allowed to
                outlive the event queue without tripping deadlock detection.

        Returns:
            The new :class:`~repro.sim.process.Process`; wait for it with
            ``yield Wait(p.done)`` or check ``p.result`` after :meth:`run`.
        """
        process = Process(self, gen, name=name, priority=priority)
        process.daemon = daemon
        self.processes.append(process)
        self._schedule_at(self.now, self._first_step, process)
        return process

    def completion(self, name: str = "completion") -> Completion:
        """Create a :class:`~repro.sim.sync.Completion` bound to this engine."""
        return Completion(self, name=name)

    def call_at(self, time_ns: int, callback, *args) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time_ns < self.now:
            raise SimulationError(f"call_at in the past: {time_ns} < {self.now}")
        return self.events.push(time_ns, callback, *args)

    def call_after(self, delay_ns: int, callback, *args) -> ScheduledEvent:
        """Schedule ``callback(*args)`` ``delay_ns`` from now."""
        return self.call_at(self.now + delay_ns, callback, *args)

    def run(self, until_ns: int | None = None, check_deadlock: bool = False) -> int:
        """Run the event loop.

        Args:
            until_ns: Stop (without executing later events) once the next
                event lies strictly beyond this time; ``None`` runs to
                quiescence.
            check_deadlock: If True and the queue drains while non-daemon
                processes are still blocked, raise
                :class:`~repro.errors.DeadlockError`.

        Returns:
            The simulation time when the loop stopped.

        Raises:
            Exception: The first exception raised inside any process is
                re-raised here, at the simulated moment it occurred.
        """
        events = self.events
        advance_to = self.clock.advance_to
        monitor = self.monitor
        while len(events) > 0:
            next_time = events.peek_time()
            assert next_time is not None
            if until_ns is not None and next_time > until_ns:
                advance_to(until_ns)
                return self.now
            event = events.pop()
            if monitor is not None:
                # Before advance_to: a time-disordered pop must be reported
                # as the scheduling bug it is, not as a clock error.
                monitor.on_event(self, event)
            advance_to(event.time_ns)
            event.callback(*event.args)
            if self._pending_failure is not None:
                _failed, exc = self._pending_failure
                self._pending_failure = None
                raise exc
        if check_deadlock:
            blocked = [p.name for p in self.processes
                       if p.alive and not getattr(p, "daemon", False)]
            if blocked:
                raise DeadlockError(blocked)
        if until_ns is not None and until_ns > self.now:
            self.clock.advance_to(until_ns)
        return self.now

    # ------------------------------------------------- engine internals

    def _schedule_at(self, time_ns: int, callback, *args) -> ScheduledEvent:
        return self.events.push(time_ns, callback, *args)

    def _dispatch(self, process: Process, request: Any) -> None:
        """Route a process's yielded request to the right subsystem."""
        if isinstance(request, Compute):
            process.state = ProcessState.RUNNABLE
            self.cpu.submit(process, request.ns)
        elif isinstance(request, Timeout):
            process.state = ProcessState.WAITING
            process._timeout_event = self._schedule_at(
                self.now + request.ns, self._resume, process, None)
        elif isinstance(request, Wait):
            completion = request.completion
            if completion._add_waiter(process):
                process.state = ProcessState.WAITING
                process._waiting_on = completion
            else:
                # Already fired: resume on a fresh event to keep FIFO order.
                self._schedule_at(self.now,
                                  self._resume, process, completion.value)
        else:
            raise SimulationError(
                f"process {process.name!r} yielded unknown request {request!r}")

    def _first_step(self, process: Process) -> None:
        """Run the first step of a freshly spawned process."""
        process.started_at_ns = self.now
        self._current_stack.append(process)
        try:
            process._step(None)
        finally:
            self._current_stack.pop()

    def interrupt(self, process: Process, exc: BaseException | None = None) -> None:
        """Deliver an :class:`~repro.sim.process.Interrupted` to a process.

        Takes effect at the process's next resume point: immediately for a
        process blocked on a ``Timeout`` or ``Wait`` (the pending wakeup is
        cancelled), at the end of its current slice for one on the CPU.
        ``finally`` blocks inside the generator run, so sim locks held
        across a ``yield`` are released.  Interrupting a finished process
        is a no-op.
        """
        from repro.sim.process import Interrupted

        if not process.alive:
            return
        process._pending_interrupt = exc if exc is not None else Interrupted()
        if process._timeout_event is not None:
            self.events.cancel(process._timeout_event)
            process._timeout_event = None
            self._schedule_at(self.now, self._resume, process, None)
        elif process._waiting_on is not None:
            completion = process._waiting_on
            if process in completion._waiters:
                completion._waiters.remove(process)
            process._waiting_on = None
            self._schedule_at(self.now, self._resume, process, None)
        # Else: on the CPU (queued or mid-slice); the pending interrupt is
        # delivered when the slice completes (see CPU._slice_done).

    def _resume(self, process: Process, value: Any) -> None:
        """Step ``process`` with ``value`` (engine/CPU/sync internal)."""
        if not process.alive:
            raise SimulationError(f"resume of finished process {process.name!r}")
        process._timeout_event = None
        process._waiting_on = None
        self._current_stack.append(process)
        try:
            process._step(value)
        finally:
            self._current_stack.pop()

    def _process_finished(self, process: Process) -> None:
        """Hook called when a process's generator returns."""

    def _process_failed(self, process: Process, exc: BaseException) -> None:
        """Hook called when a process raises; aborts the run loop."""
        if self._pending_failure is None:
            self._pending_failure = (process, exc)
