"""The time-ordered event queue.

Events are ``(time, sequence, callback)`` triples kept in a binary heap.
The monotonically increasing sequence number makes ordering of same-time
events deterministic (FIFO in scheduling order), which is what makes whole
simulations bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError


@dataclass(order=True, slots=True)
class ScheduledEvent:
    """A callback scheduled at an absolute simulation time.

    Comparison order is ``(time_ns, seq)`` so the heap pops events in time
    order with FIFO tie-breaking.  ``cancelled`` events stay in the heap and
    are skipped when popped (lazy deletion).
    """

    time_ns: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    executed: bool = field(default=False, compare=False)


class EventQueue:
    """Deterministic min-heap of :class:`ScheduledEvent` objects."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of non-cancelled events still queued."""
        return self._live

    def push(self, time_ns: int, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` at absolute time ``time_ns``."""
        if time_ns < 0:
            raise SimulationError(f"cannot schedule event at negative time {time_ns}")
        event = ScheduledEvent(time_ns=time_ns, seq=self._seq, callback=callback)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> ScheduledEvent:
        """Remove and return the earliest non-cancelled event.

        Raises:
            SimulationError: If the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            event.executed = True
            return event
        raise SimulationError("pop from empty event queue")

    def peek_time(self) -> int | None:
        """Time of the earliest live event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time_ns

    def cancel(self, event: ScheduledEvent) -> None:
        """Cancel a scheduled event (lazy deletion; idempotent; cancelling
        an event that already ran is a harmless no-op)."""
        if not event.cancelled and not event.executed:
            event.cancelled = True
            self._live -= 1
