"""The time-ordered event queue.

Events are kept in a binary heap of plain ``(time_ns, seq, event)``
tuples.  The monotonically increasing sequence number makes ordering of
same-time events deterministic (FIFO in scheduling order), which is what
makes whole simulations bit-for-bit reproducible — and, because ``seq`` is
unique, tuple comparison never falls through to the event object itself,
so every heap comparison is a C-level ``(int, int)`` compare instead of a
generated dataclass ``__lt__``.  Callbacks carry their arguments in the
event (``push(t, fn, *args)``), so hot paths schedule bound methods
directly instead of allocating a closure per event.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError


class ScheduledEvent:
    """A callback scheduled at an absolute simulation time.

    The heap orders ``(time_ns, seq)`` tuples, so events pop in time order
    with FIFO tie-breaking.  ``cancelled`` events stay in the heap and are
    skipped when popped (lazy deletion).  Run one with :meth:`fire` (or
    ``event.callback(*event.args)``).
    """

    __slots__ = ("time_ns", "seq", "callback", "args", "cancelled", "executed")

    def __init__(self, time_ns: int, seq: int,
                 callback: Callable[..., None], args: tuple[Any, ...] = ()):
        self.time_ns = time_ns
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.executed = False

    def fire(self) -> None:
        """Invoke the callback with its stored arguments."""
        self.callback(*self.args)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else (
            "executed" if self.executed else "pending")
        return (f"ScheduledEvent(time_ns={self.time_ns}, seq={self.seq}, "
                f"{state})")


class EventQueue:
    """Deterministic min-heap of :class:`ScheduledEvent` objects."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, ScheduledEvent]] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of non-cancelled events still queued."""
        return self._live

    def push(self, time_ns: int, callback: Callable[..., None],
             *args: Any) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute time ``time_ns``."""
        if time_ns < 0:
            raise SimulationError(f"cannot schedule event at negative time {time_ns}")
        seq = self._seq
        event = ScheduledEvent(time_ns, seq, callback, args)
        self._seq = seq + 1
        self._live += 1
        heapq.heappush(self._heap, (time_ns, seq, event))
        return event

    def pop(self) -> ScheduledEvent:
        """Remove and return the earliest non-cancelled event.

        Raises:
            SimulationError: If the queue holds no live events.
        """
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if event.cancelled:
                continue
            self._live -= 1
            event.executed = True
            return event
        raise SimulationError("pop from empty event queue")

    def peek_time(self) -> int | None:
        """Time of the earliest live event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def cancel(self, event: ScheduledEvent) -> None:
        """Cancel a scheduled event (lazy deletion; idempotent; cancelling
        an event that already ran is a harmless no-op)."""
        if not event.cancelled and not event.executed:
            event.cancelled = True
            self._live -= 1
