"""Generator-coroutine processes and their request vocabulary.

A simulated activity (a kernel phase, a service start-up, an application
launch) is written as a Python generator that ``yield``\\ s request objects:

* :class:`Timeout` — let simulated time pass without occupying a CPU core
  (device latency, pure sleeps),
* :class:`Compute` — consume CPU time; the process occupies one core of the
  :class:`~repro.sim.cpu.CPU` while it runs and competes with every other
  runnable process through the priority run queue,
* :class:`Wait` — block until a :class:`~repro.sim.sync.Completion` fires.

Generators compose with ``yield from``, so models build freely on each
other (a service start ``yield from``\\ s a storage read, which internally
yields ``Timeout`` for the transfer and ``Compute`` for syscall overhead).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator

from repro.errors import SimulationError

if TYPE_CHECKING:
    from repro.sim.engine import Simulator
    from repro.sim.sync import Completion

#: Type alias for the generators the engine can run.
ProcessGenerator = Generator[Any, Any, Any]

#: Default scheduling priority; lower numbers run first (like ``nice``).
DEFAULT_PRIORITY = 100


@dataclass(frozen=True, slots=True)
class Timeout:
    """Suspend the process for ``ns`` nanoseconds without using a core."""

    ns: int

    def __post_init__(self) -> None:
        if self.ns < 0:
            raise SimulationError(f"negative timeout: {self.ns}")


@dataclass(frozen=True, slots=True)
class Compute:
    """Consume ``ns`` nanoseconds of CPU time on one core.

    The process is enqueued on the CPU run queue at its current priority,
    may be time-sliced (the engine splits long computations into scheduler
    quanta), and resumes once the full amount has been executed.
    """

    ns: int

    def __post_init__(self) -> None:
        if self.ns < 0:
            raise SimulationError(f"negative compute time: {self.ns}")


@dataclass(frozen=True, slots=True)
class Wait:
    """Block until ``completion`` fires; resumes with the fired value."""

    completion: "Completion"


class Interrupted(Exception):
    """Raised *inside* a process generator when it is interrupted.

    Delivered at the process's next resume point: immediately for a
    process blocked on a ``Timeout`` or ``Wait``, at the end of the
    current scheduler slice for one computing on a core.  Generators may
    catch it (``finally`` blocks run, so locks held across ``yield`` are
    released) and either re-raise, return, or continue.
    """


class ProcessState(enum.Enum):
    """Lifecycle states of a simulated process."""

    CREATED = "created"
    RUNNABLE = "runnable"  # waiting for or holding a CPU core
    WAITING = "waiting"  # blocked on a Timeout / Wait
    FINISHED = "finished"
    FAILED = "failed"


class Process:
    """A running simulated activity.

    Created through :meth:`repro.sim.engine.Simulator.spawn`; user code never
    instantiates this class directly.

    Attributes:
        name: Human-readable identifier used in traces and deadlock reports.
        priority: Scheduling priority; lower runs first.  May be changed at
            any time (takes effect at the next scheduler decision), which is
            how the BB Manager boosts BB-Group services.
        done: Fires (with :attr:`result`) when the process finishes.
        result: Return value of the generator once finished.
        cpu_time_ns: Total CPU time this process has consumed so far.
    """

    def __init__(self, engine: "Simulator", gen: ProcessGenerator, name: str,
                 priority: int = DEFAULT_PRIORITY):
        from repro.sim.sync import Completion  # cycle: sync needs engine

        self._engine = engine
        self._gen = gen
        self.name = name
        self.priority = priority
        self.daemon = False
        self.state = ProcessState.CREATED
        self.done: Completion = Completion(engine, name=f"{name}.done")
        self.result: Any = None
        self.exception: BaseException | None = None
        self.cpu_time_ns = 0
        self.started_at_ns: int | None = None
        self.finished_at_ns: int | None = None
        # Interrupt plumbing (see Simulator.interrupt / Interrupted).
        self._pending_interrupt: BaseException | None = None
        self._timeout_event = None  # ScheduledEvent while blocked on Timeout
        self._waiting_on = None  # Completion while blocked on Wait

    @property
    def alive(self) -> bool:
        """True while the process has not finished or failed."""
        return self.state not in (ProcessState.FINISHED, ProcessState.FAILED)

    def _step(self, value: Any) -> None:
        """Advance the generator with ``value`` and dispatch its request."""
        self.state = ProcessState.RUNNABLE
        try:
            if self._pending_interrupt is not None:
                exc, self._pending_interrupt = self._pending_interrupt, None
                request = self._gen.throw(exc)
            else:
                request = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupted:
            # Uncaught interrupt: the process dies quietly (its done
            # completion fires with None); the simulation continues.
            self._finish(None)
            return
        except BaseException as exc:  # model bug: fail fast, keep context
            self.state = ProcessState.FAILED
            self.exception = exc
            self.finished_at_ns = self._engine.now
            self._engine._process_failed(self, exc)
            return
        self._engine._dispatch(self, request)

    def _finish(self, result: Any) -> None:
        self.state = ProcessState.FINISHED
        self.result = result
        self.finished_at_ns = self._engine.now
        self._engine._process_finished(self)
        self.done.fire(result)

    def __repr__(self) -> str:
        return f"Process({self.name!r}, state={self.state.value}, prio={self.priority})"
