"""Simulation-time synchronization primitives.

The two lock flavours here embody the paper's Algorithm 1 vs Algorithm 2
distinction:

* :class:`SpinLock` — the ticket spinlock of conventional
  ``synchronize_rcu`` (Algorithm 1).  A waiter **burns a CPU core**: it
  repeatedly issues :class:`~repro.sim.process.Compute` slices and re-tries,
  so while it waits other runnable boot tasks cannot use that core.
* :class:`Mutex` — the blocking lock of the boosted RCU (Algorithm 2).  A
  waiter **sleeps**: it is parked on a wait queue and frees its core, at the
  price of a context-switch cost when it is woken.

:class:`Completion` is the waitable event used for process joins, service
readiness, path conditions, and the wait queues of the locks themselves.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from repro.errors import SimulationError
from repro.sim.process import Compute, Wait

if TYPE_CHECKING:
    from repro.sim.engine import Simulator
    from repro.sim.process import Process, ProcessGenerator


class Completion:
    """A one-shot waitable event carrying an optional value.

    Waiters created after the event has fired resume immediately — there is
    no lost-wakeup race in simulated time.
    """

    def __init__(self, engine: "Simulator", name: str = "completion"):
        self._engine = engine
        self.name = name
        self.fired = False
        self.value: Any = None
        self._waiters: list["Process"] = []

    def fire(self, value: Any = None) -> None:
        """Fire the event, waking every waiter with ``value``.

        Raises:
            SimulationError: If fired twice.
        """
        if self.fired:
            raise SimulationError(f"completion {self.name!r} fired twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._engine._resume(process, value)

    def wait(self) -> "ProcessGenerator":
        """Generator helper: ``result = yield from completion.wait()``."""
        value = yield Wait(self)
        return value

    def _add_waiter(self, process: "Process") -> bool:
        """Register ``process``; returns False if already fired (no block)."""
        if self.fired:
            return False
        self._waiters.append(process)
        return True

    def __repr__(self) -> str:
        state = "fired" if self.fired else f"{len(self._waiters)} waiters"
        return f"Completion({self.name!r}, {state})"


def wait_all(engine: "Simulator", completions: Iterable[Completion]) -> "ProcessGenerator":
    """Generator helper: wait until every completion has fired."""
    for completion in completions:
        if not completion.fired:
            yield Wait(completion)
    return None


class Mutex:
    """A sleeping lock: blocked acquirers release their CPU core.

    Waiters are queued FIFO.  ``wake_cost_ns`` models the scheduler /
    context-switch overhead paid by a woken waiter — the "greater CPU
    utilization due to process context switch and scheduling cost" that
    Algorithm 2 trades for not spinning.
    """

    def __init__(self, engine: "Simulator", name: str = "mutex",
                 wake_cost_ns: int = 3_000):
        self._engine = engine
        self.name = name
        self.wake_cost_ns = wake_cost_ns
        self.owner: "Process | None" = None
        self._wait_queue: list[Completion] = []
        self.contended_acquires = 0
        self.total_acquires = 0

    @property
    def locked(self) -> bool:
        """True while some process owns the lock."""
        return self.owner is not None

    def acquire(self) -> "ProcessGenerator":
        """Generator helper: ``yield from mutex.acquire()``.

        The caller sleeps (core released) until the lock is granted.
        """
        process = self._engine.current_process
        if process is None:
            raise SimulationError(f"mutex {self.name!r} acquired outside a process")
        self.total_acquires += 1
        if self.owner is None:
            self.owner = process
            return None
        self.contended_acquires += 1
        ticket = Completion(self._engine, name=f"{self.name}.ticket")
        self._wait_queue.append(ticket)
        yield Wait(ticket)
        # Ownership was transferred to us by release(); pay the wake cost.
        # An interrupt landing here must hand the lock on, not leak it.
        if self.wake_cost_ns:
            try:
                yield Compute(self.wake_cost_ns)
            except BaseException:
                self.release()
                raise
        return None

    def release(self) -> None:
        """Release the lock, handing it to the first *live* queued waiter.

        Tickets whose waiter was interrupted while queued are skipped.
        """
        if self.owner is None:
            raise SimulationError(f"release of unlocked mutex {self.name!r}")
        self.owner = None
        while self._wait_queue:
            ticket = self._wait_queue.pop(0)
            if ticket._waiters:
                # Direct handoff: the woken waiter owns the lock before it
                # runs, keeping the queue strictly FIFO with no barging.
                self.owner = ticket._waiters[0]
                ticket.fire(None)
                return

    def __repr__(self) -> str:
        holder = self.owner.name if self.owner else None
        return f"Mutex({self.name!r}, owner={holder!r}, queued={len(self._wait_queue)})"


class PriorityMutex:
    """A sleeping lock whose release picks the highest-priority waiter.

    Models priority-aware resource queues such as I/O scheduling classes
    (``ioprio_set``): when the lock is released, the queued process with
    the numerically lowest priority is granted ownership; FIFO breaks ties.
    The waiter's priority is sampled at release time, so a priority boost
    applied while a process waits still takes effect.
    """

    def __init__(self, engine: "Simulator", name: str = "priority-mutex",
                 wake_cost_ns: int = 3_000):
        self._engine = engine
        self.name = name
        self.wake_cost_ns = wake_cost_ns
        self.owner: "Process | None" = None
        self._wait_queue: list[tuple[int, Completion, "Process"]] = []
        self._seq = 0
        self.total_acquires = 0
        self.contended_acquires = 0

    @property
    def locked(self) -> bool:
        """True while some process owns the lock."""
        return self.owner is not None

    def acquire(self) -> "ProcessGenerator":
        """Generator helper: ``yield from lock.acquire()`` (sleeps if held)."""
        process = self._engine.current_process
        if process is None:
            raise SimulationError(f"lock {self.name!r} acquired outside a process")
        self.total_acquires += 1
        if self.owner is None:
            self.owner = process
            return None
        self.contended_acquires += 1
        ticket = Completion(self._engine, name=f"{self.name}.ticket")
        self._wait_queue.append((self._seq, ticket, process))
        self._seq += 1
        yield Wait(ticket)
        # An interrupt landing on the wake cost must hand the lock on.
        if self.wake_cost_ns:
            try:
                yield Compute(self.wake_cost_ns)
            except BaseException:
                self.release()
                raise
        return None

    def release(self) -> None:
        """Release; ownership passes to the best *live* queued waiter."""
        if self.owner is None:
            raise SimulationError(f"release of unlocked lock {self.name!r}")
        self.owner = None
        # Drop tickets whose waiter was interrupted while queued.
        self._wait_queue = [entry for entry in self._wait_queue
                            if entry[1]._waiters]
        if self._wait_queue:
            best_index = min(range(len(self._wait_queue)),
                             key=lambda i: (self._wait_queue[i][2].priority,
                                            self._wait_queue[i][0]))
            _, ticket, process = self._wait_queue.pop(best_index)
            self.owner = process
            ticket.fire(None)

    def __repr__(self) -> str:
        holder = self.owner.name if self.owner else None
        return (f"PriorityMutex({self.name!r}, owner={holder!r}, "
                f"queued={len(self._wait_queue)})")


class SpinLock:
    """A spinning lock: blocked acquirers burn CPU while waiting.

    ``spin_slice_ns`` is the CPU time consumed per failed attempt before
    re-trying.  A long critical section under contention therefore occupies
    one core per spinner — exactly the pathology the RCU Booster removes at
    boot time.
    """

    def __init__(self, engine: "Simulator", name: str = "spinlock",
                 spin_slice_ns: int = 500_000, acquire_cost_ns: int = 200):
        if spin_slice_ns <= 0:
            raise SimulationError("spin_slice_ns must be positive")
        self._engine = engine
        self.name = name
        self.spin_slice_ns = spin_slice_ns
        self.acquire_cost_ns = acquire_cost_ns
        self._held = False
        self.owner: "Process | None" = None
        self.total_acquires = 0
        self.contended_acquires = 0
        self.spin_time_ns = 0
        # Ticket numbers give the FIFO fairness of Linux ticket spinlocks.
        self._next_ticket = 0
        self._tickets: dict[int, "Process"] = {}

    @property
    def locked(self) -> bool:
        """True while the lock is held."""
        return self._held

    def try_acquire(self) -> bool:
        """Non-blocking attempt; True on success (no ticket taken)."""
        if not self._held and not self._tickets:
            self._held = True
            self.owner = self._engine.current_process
            self.total_acquires += 1
            return True
        return False

    def acquire(self) -> "ProcessGenerator":
        """Generator helper: spin (burning CPU) until the lock is granted."""
        process = self._engine.current_process
        if process is None:
            raise SimulationError(f"spinlock {self.name!r} acquired outside a process")
        self.total_acquires += 1
        if self.acquire_cost_ns:
            yield Compute(self.acquire_cost_ns)
        ticket = self._next_ticket
        self._next_ticket += 1
        self._tickets[ticket] = process
        if min(self._tickets) != ticket or self._held:
            self.contended_acquires += 1
        claimed = False
        try:
            # FIFO by lowest *outstanding* ticket: an abandoned (interrupted)
            # ticket disappears from the dict, so it never wedges the queue.
            while min(self._tickets) != ticket or self._held:
                # Busy-wait: each slice is real CPU consumption on a core.
                yield Compute(self.spin_slice_ns)
                self.spin_time_ns += self.spin_slice_ns
            del self._tickets[ticket]
            self._held = True
            self.owner = process
            claimed = True
        finally:
            if not claimed:
                self._tickets.pop(ticket, None)
        return None

    def release(self) -> None:
        """Release the lock; the next ticket holder's spin will succeed."""
        if not self._held:
            raise SimulationError(f"release of unlocked spinlock {self.name!r}")
        self._held = False
        self.owner = None

    def __repr__(self) -> str:
        holder = self.owner.name if self.owner else None
        return f"SpinLock({self.name!r}, owner={holder!r}, spinners={len(self._tickets)})"


class Semaphore:
    """A counting semaphore with sleeping waiters (FIFO)."""

    def __init__(self, engine: "Simulator", count: int, name: str = "semaphore"):
        if count < 0:
            raise SimulationError(f"semaphore count cannot be negative: {count}")
        self._engine = engine
        self.name = name
        self.count = count
        self._wait_queue: list[Completion] = []

    def acquire(self) -> "ProcessGenerator":
        """Generator helper: take one permit, sleeping if none available."""
        if self.count > 0:
            self.count -= 1
            return None
        ticket = Completion(self._engine, name=f"{self.name}.ticket")
        self._wait_queue.append(ticket)
        yield Wait(ticket)
        return None

    def release(self) -> None:
        """Return one permit, waking the first *live* queued waiter if any."""
        while self._wait_queue:
            ticket = self._wait_queue.pop(0)
            if ticket._waiters:
                ticket.fire(None)
                return
        self.count += 1

    def __repr__(self) -> str:
        return f"Semaphore({self.name!r}, count={self.count}, queued={len(self._wait_queue)})"
